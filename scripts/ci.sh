#!/usr/bin/env bash
# Hermetic CI: everything here must pass offline, with an empty cargo
# registry — the workspace has no crates.io dependencies by policy
# (DESIGN.md §7). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt check =="
cargo fmt --all --check

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== bench smoke (--quick) =="
out_dir="$(mktemp -d)"
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_all -- --quick
report="$out_dir/BENCH_seed.json"
test -s "$report" || { echo "missing bench report $report" >&2; exit 1; }
grep -q '"median_ns"' "$report" || { echo "malformed bench report" >&2; exit 1; }
echo "bench report OK: $report"

echo "== join_scale smoke + hash-join plan gate =="
# The suite itself asserts that an uncorrelated equi-join plans a
# `hash join` (and that a correlated one does not), that its probe count
# stays linear, and that the right side is never rescanned — so running
# it IS the regression gate. The grep below additionally checks the new
# join counters flow into the JSON report.
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_join_scale -- --quick --name join_smoke
join_report="$out_dir/BENCH_join_smoke.json"
test -s "$join_report" || { echo "missing join bench report $join_report" >&2; exit 1; }
grep -q '"join_probes"' "$join_report" || { echo "join counters missing from $join_report" >&2; exit 1; }
echo "join_scale OK: $join_report"

echo "== limit_stream smoke + streaming early-exit gate =="
# B12's own asserts ARE the regression gate: `LIMIT k` must pull O(k)
# rows (`rows_scanned`), `LIMIT 0` must pull none, the hash-join probe
# side must early-exit under LIMIT, and only pipeline breakers may move
# the `peak_live_bindings` gauge. The greps additionally check both
# counters flow into the JSON report.
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_limit_stream -- --quick --name limit_stream
limit_report="$out_dir/BENCH_limit_stream.json"
test -s "$limit_report" || { echo "missing limit bench report $limit_report" >&2; exit 1; }
grep -q '"rows_scanned"' "$limit_report" || { echo "rows_scanned missing from $limit_report" >&2; exit 1; }
grep -q '"peak_live_bindings"' "$limit_report" || { echo "peak_live_bindings missing from $limit_report" >&2; exit 1; }
echo "limit_stream OK: $limit_report"

echo "== compat-kit regression gate =="
# The corpus pass count is checked in here; a drop means an engine
# regression, a rise means this number needs bumping alongside the fix.
expected_compat_passes=89
compat_out="$(cargo run --release -q -p sqlpp-compat-kit --bin compat_report)"
summary="$(printf '%s\n' "$compat_out" | grep -E '[0-9]+ passed, [0-9]+ failed, [0-9]+ total' | tail -n 1)"
passed="$(printf '%s\n' "$summary" | sed -E 's/^([0-9]+) passed.*/\1/')"
failed="$(printf '%s\n' "$summary" | sed -E 's/.* ([0-9]+) failed.*/\1/')"
if [ -z "$passed" ] || [ "$failed" != "0" ] || [ "$passed" -lt "$expected_compat_passes" ]; then
  printf '%s\n' "$compat_out" >&2
  echo "compat regression: want >= $expected_compat_passes passed / 0 failed, got '$summary'" >&2
  exit 1
fi
echo "compat OK: $summary"

echo "== explain analyze smoke =="
cargo run --release -q --example explain_analyze

echo "== ci green =="
