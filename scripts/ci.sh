#!/usr/bin/env bash
# Hermetic CI: everything here must pass offline, with an empty cargo
# registry — the workspace has no crates.io dependencies by policy
# (DESIGN.md §7). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt check =="
cargo fmt --all --check

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== bench smoke (--quick) =="
out_dir="$(mktemp -d)"
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_all -- --quick
report="$out_dir/BENCH_seed.json"
test -s "$report" || { echo "missing bench report $report" >&2; exit 1; }
grep -q '"median_ns"' "$report" || { echo "malformed bench report" >&2; exit 1; }
echo "bench report OK: $report"

echo "== join_scale smoke + hash-join plan gate =="
# The suite itself asserts that an uncorrelated equi-join plans a
# `hash join` (and that a correlated one does not), that its probe count
# stays linear, and that the right side is never rescanned — so running
# it IS the regression gate. The grep below additionally checks the new
# join counters flow into the JSON report.
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_join_scale -- --quick --name join_smoke
join_report="$out_dir/BENCH_join_smoke.json"
test -s "$join_report" || { echo "missing join bench report $join_report" >&2; exit 1; }
grep -q '"join_probes"' "$join_report" || { echo "join counters missing from $join_report" >&2; exit 1; }
echo "join_scale OK: $join_report"

echo "== limit_stream smoke + streaming early-exit gate =="
# B12's own asserts ARE the regression gate: `LIMIT k` must pull O(k)
# rows (`rows_scanned`), `LIMIT 0` must pull none, the hash-join probe
# side must early-exit under LIMIT, and only pipeline breakers may move
# the `peak_live_bindings` gauge. The greps additionally check both
# counters flow into the JSON report.
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_limit_stream -- --quick --name limit_stream
limit_report="$out_dir/BENCH_limit_stream.json"
test -s "$limit_report" || { echo "missing limit bench report $limit_report" >&2; exit 1; }
grep -q '"rows_scanned"' "$limit_report" || { echo "rows_scanned missing from $limit_report" >&2; exit 1; }
grep -q '"peak_live_bindings"' "$limit_report" || { echo "peak_live_bindings missing from $limit_report" >&2; exit 1; }
echo "limit_stream OK: $limit_report"

echo "== governor smoke + fail-fast gate =="
# B13's own asserts ARE the gate: a budgeted ORDER BY must die with the
# structured ResourceExhausted while the governor's peak gauge stays at
# or under the budget (admit-before-store), an expired deadline must
# cancel on the first pull, and a governed run must not be
# catastrophically slower than the ungoverned one. The greps check the
# governor counters flow into the JSON report.
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_governor -- --quick --name governor
governor_report="$out_dir/BENCH_governor.json"
test -s "$governor_report" || { echo "missing governor bench report $governor_report" >&2; exit 1; }
grep -q '"peak_budget_used"' "$governor_report" || { echo "peak_budget_used missing from $governor_report" >&2; exit 1; }
grep -q '"budget_denials"' "$governor_report" || { echo "budget_denials missing from $governor_report" >&2; exit 1; }
echo "governor OK: $governor_report"

echo "== vectorized smoke + speedup gate (B17) =="
# B17's own asserts ARE the gate: at the cache-resident gate size the
# batched+bytecode engine must be ≥5× the row-at-a-time tree-walking
# path on scan/filter/aggregate shapes, an instrumented run must prove
# the batch protocol and compiler actually engaged (batches_produced,
# exprs_compiled > 0), and governed scans must amortize real deadline
# checks to ≤ rows/512 while still checking at least once. The greps
# check the vectorization counters flow into the JSON report.
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_vectorized -- --quick --name vectorized
vectorized_report="$out_dir/BENCH_vectorized.json"
test -s "$vectorized_report" || { echo "missing vectorized bench report $vectorized_report" >&2; exit 1; }
grep -q '"speedup_pct"' "$vectorized_report" || { echo "speedup_pct missing from $vectorized_report" >&2; exit 1; }
grep -q '"batches_produced"' "$vectorized_report" || { echo "batches_produced missing from $vectorized_report" >&2; exit 1; }
grep -q '"exprs_compiled"' "$vectorized_report" || { echo "exprs_compiled missing from $vectorized_report" >&2; exit 1; }
echo "vectorized OK: $vectorized_report"

echo "== out-of-core smoke + bounded-memory gate (B15) =="
# B15's own asserts ARE the gate: at a byte budget a tenth of the
# measured working set, ORDER BY / GROUP BY / hash join must complete
# with answers identical to the in-memory paths while peak tracked
# bytes stay at or under the budget and the spill counters prove disk
# was actually used; the fused ORDER BY + LIMIT k heap must hold O(k)
# rows with zero spill files and not lose to the unfused sort. The
# greps check the spill counters flow into the JSON report.
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_out_of_core -- --quick --name out_of_core
ooc_report="$out_dir/BENCH_out_of_core.json"
test -s "$ooc_report" || { echo "missing out-of-core bench report $ooc_report" >&2; exit 1; }
grep -q '"spill_partitions"' "$ooc_report" || { echo "spill_partitions missing from $ooc_report" >&2; exit 1; }
grep -q '"spill_bytes_written"' "$ooc_report" || { echo "spill_bytes_written missing from $ooc_report" >&2; exit 1; }
grep -q '"topk_peak_rows"' "$ooc_report" || { echo "topk_peak_rows missing from $ooc_report" >&2; exit 1; }
echo "out_of_core OK: $ooc_report"

echo "== out-of-core differential gate =="
# Spill-on vs spill-off twins: external sort ≡ in-memory sort ≡ a Rust
# oracle (exact order, both typing modes), Grace join/GROUP BY ≡ their
# in-memory paths as multisets, top-k ≡ ORDER BY + LIMIT across offsets
# and edge limits, a budget sweep straddling partition boundaries, no
# leaked temp files, and bytecode-compiled sort keys.
cargo test -q --release --test out_of_core
echo "out-of-core differential OK"

echo "== durability smoke (B18) =="
# B18's own asserts ARE the correctness side of the gate: snapshot
# recovery must replay zero records, WAL replay must reproduce every
# row of every shard, and checkpoints must leave a parseable snapshot.
# Timings (per-commit WAL overhead at each sync mode, checkpoint write,
# cold-start recovery) are reported, not gated — fsync latency belongs
# to the storage stack. The greps check the durability counters flow
# into the JSON report.
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_durability -- --quick --name durability
durability_report="$out_dir/BENCH_durability.json"
test -s "$durability_report" || { echo "missing durability bench report $durability_report" >&2; exit 1; }
grep -q '"wal_bytes_per_commit_always"' "$durability_report" || { echo "wal counters missing from $durability_report" >&2; exit 1; }
grep -q '"fsyncs_always"' "$durability_report" || { echo "fsync counters missing from $durability_report" >&2; exit 1; }
echo "durability OK: $durability_report"

echo "== crash-recovery gate =="
# Deterministic crash-point sweep: the engine is killed at every
# injectable point in the WAL append / fsync / snapshot write / rename
# paths during a seeded DML workload, then recovered. Every crash point
# must recover to exactly the pre- or post-commit state of the
# interrupted statement, every acknowledged commit must survive, no
# temp files may leak, and zero panics — plus torn-tail truncation,
# mid-log corruption reporting, and the WAL prefix-differential.
cargo test -q --release --test crash_recovery
echo "crash recovery OK"

echo "== serving smoke (B16) =="
# B16's own asserts ARE the gate: an 8-client mixed read/DML workload
# must complete with zero errors and a fairness floor, the cached
# request median must beat the cold one, every client's parameter echo
# must return its own session id (zero cross-session result bleed), and
# both admission and budget refusals must arrive as structured
# Overloaded frames. The greps check the serving counters flow into the
# JSON report.
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_serving -- --quick --name serving
serving_report="$out_dir/BENCH_serving.json"
test -s "$serving_report" || { echo "missing serving bench report $serving_report" >&2; exit 1; }
grep -q '"cache_hits"' "$serving_report" || { echo "cache_hits missing from $serving_report" >&2; exit 1; }
grep -q '"qps"' "$serving_report" || { echo "qps missing from $serving_report" >&2; exit 1; }
cache_hits="$(sed -E 's/.*"cache_hits": ([0-9]+).*/\1/;t;d' "$serving_report" | head -n 1)"
if [ -z "$cache_hits" ] || [ "$cache_hits" -eq 0 ]; then
  echo "serving gate: plan cache never hit (cache_hits=$cache_hits)" >&2
  exit 1
fi
echo "serving OK: $serving_report (cache_hits=$cache_hits)"

echo "== serving chaos gate (threaded) =="
# Real TCP clients hammering one engine from many threads: concurrent
# reads, schema-violating DML (refused atomically — guarded collection
# byte-identical after the storm), succeeding DML (exact count), and
# budget-tripped queries (shed, never errors), with zero caught panics.
cargo test -q --release --test serving
echo "serving chaos OK"

echo "== frontend fuzz smoke (seeded) =="
# Fixed-seed fuzz of the error-recovering front end: byte soup, token
# soup, and mutation-corrupted corpus queries — 500 cases per property
# (~2000 inputs total) must produce zero panics, only well-formed
# spanned diagnostics, and bit-identical ASTs for valid input in strict
# vs recovering mode. Regression seeds persist under
# tests/regression-seeds/ and are replayed first on every run.
SQLPP_PROP_PERSIST_DIR=tests/regression-seeds SQLPP_PROP_CASES=500 \
  cargo test -q --release --test fuzz_frontend
echo "frontend fuzz OK"

echo "== diagnostics golden gate =="
# Caret-underlined multi-error reports are pinned byte-for-byte under
# tests/golden/diagnostics/; regenerate intentionally with
# SQLPP_UPDATE_GOLDEN=1 and review the diff.
cargo test -q --release --test diagnostics
echo "diagnostics goldens OK"

echo "== chaos gate (seeded fault injection) =="
# 352 fixed-seed fault-injection runs across SELECT, DML, and the
# out-of-core sites (temp-file create / spill write / spill read): zero
# panics across the API boundary, byte-identical catalog after every
# failed DML, no leaked temp files, engine usable after every failure.
# Deterministic seeds — a failure here reproduces exactly.
cargo test -q --release --test chaos
echo "chaos OK"

echo "== compat-kit regression gate =="
# The corpus pass count is checked in here; a drop means an engine
# regression, a rise means this number needs bumping alongside the fix.
expected_compat_passes=89
compat_out="$(cargo run --release -q -p sqlpp-compat-kit --bin compat_report)"
summary="$(printf '%s\n' "$compat_out" | grep -E '[0-9]+ passed, [0-9]+ failed, [0-9]+ total' | tail -n 1)"
passed="$(printf '%s\n' "$summary" | sed -E 's/^([0-9]+) passed.*/\1/')"
failed="$(printf '%s\n' "$summary" | sed -E 's/.* ([0-9]+) failed.*/\1/')"
if [ -z "$passed" ] || [ "$failed" != "0" ] || [ "$passed" -lt "$expected_compat_passes" ]; then
  printf '%s\n' "$compat_out" >&2
  echo "compat regression: want >= $expected_compat_passes passed / 0 failed, got '$summary'" >&2
  exit 1
fi
echo "compat OK: $summary"

echo "== explain analyze smoke =="
cargo run --release -q --example explain_analyze

echo "== ci green =="
