#!/usr/bin/env bash
# Hermetic CI: everything here must pass offline, with an empty cargo
# registry — the workspace has no crates.io dependencies by policy
# (DESIGN.md §7). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt check =="
cargo fmt --all --check

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== bench smoke (--quick) =="
out_dir="$(mktemp -d)"
SQLPP_BENCH_DIR="$out_dir" cargo run --release -q -p sqlpp-bench --bin bench_all -- --quick
report="$out_dir/BENCH_seed.json"
test -s "$report" || { echo "missing bench report $report" >&2; exit 1; }
grep -q '"median_ns"' "$report" || { echo "malformed bench report" >&2; exit 1; }
echo "bench report OK: $report"

echo "== ci green =="
