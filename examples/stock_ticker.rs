//! Pivoting and unpivoting stock prices — §VI end to end, from the
//! paper's exact data to a scaled sweep.
//!
//! ```text
//! cargo run --example stock_ticker
//! ```

use sqlpp::Engine;
use sqlpp_bench::gen_wide_prices;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();

    // The paper's closing_prices collection (Listing 19): attribute NAMES
    // carry data (ticker symbols).
    engine.load_pnotation(
        "closing_prices",
        r#"{{
            {'date': '4/1/2019', 'amzn': 1900, 'goog': 1120, 'fb': 180},
            {'date': '4/2/2019', 'amzn': 1902, 'goog': 1119, 'fb': 183}
        }}"#,
    )?;

    // UNPIVOT: names → data (Listing 20).
    let tall = engine.query(
        "SELECT c.\"date\" AS \"date\", sym AS symbol, price AS price \
         FROM closing_prices AS c, UNPIVOT c AS price AT sym \
         WHERE NOT sym = 'date'",
    )?;
    println!("Unpivoted ticker/price pairs:\n{}\n", tall.to_pretty());

    // …which makes aggregation by symbol ordinary SQL (Listing 22).
    let avgs = engine.query(
        "SELECT sym AS symbol, AVG(price) AS avg_price \
         FROM closing_prices c, UNPIVOT c AS price AT sym \
         WHERE NOT sym = 'date' GROUP BY sym",
    )?;
    println!("Average prices:\n{}\n", avgs.to_pretty());

    // PIVOT: data → names (Listings 23–25). The result is a single tuple.
    engine.load_pnotation(
        "today_stock_prices",
        r#"{{ {'symbol': 'amzn', 'price': 1900},
             {'symbol': 'goog', 'price': 1120},
             {'symbol': 'fb', 'price': 180} }}"#,
    )?;
    let wide = engine.query("PIVOT sp.price AT sp.symbol FROM today_stock_prices sp")?;
    println!("Pivoted into one tuple:\n{}\n", wide.to_pretty());

    // Grouping + pivoting (Listings 26–28): one price tuple per date.
    engine.load_pnotation(
        "stock_prices",
        r#"{{
            {'date': '4/1/2019', 'symbol': 'amzn', 'price': 1900},
            {'date': '4/1/2019', 'symbol': 'goog', 'price': 1120},
            {'date': '4/1/2019', 'symbol': 'fb', 'price': 180},
            {'date': '4/2/2019', 'symbol': 'amzn', 'price': 1902},
            {'date': '4/2/2019', 'symbol': 'goog', 'price': 1119},
            {'date': '4/2/2019', 'symbol': 'fb', 'price': 183}
        }}"#,
    )?;
    let by_date = engine.query(
        "SELECT sp.\"date\" AS \"date\", \
                (PIVOT dp.sp.price AT dp.sp.symbol \
                 FROM dates_prices AS dp) AS prices \
         FROM stock_prices AS sp \
         GROUP BY sp.\"date\" GROUP AS dates_prices",
    )?;
    println!(
        "Daily price tuples (GROUP AS + PIVOT):\n{}\n",
        by_date.to_pretty()
    );

    // A scaled sweep: 252 trading days × 500 symbols, unpivoted,
    // aggregated, and re-pivoted — names⇄data round trip at scale.
    engine.register("year_prices", gen_wide_prices(252, 500, 1));
    let start = std::time::Instant::now();
    let yearly = engine.query(
        "PIVOT avgrow.avg_price AT avgrow.symbol FROM \
         (SELECT sym AS symbol, AVG(price) AS avg_price \
          FROM year_prices AS c, UNPIVOT c AS price AT sym \
          WHERE NOT sym = 'date' GROUP BY sym) AS avgrow",
    )?;
    println!(
        "Scaled sweep: 252×500 matrix unpivoted, averaged and re-pivoted \
         into a {}-attribute tuple in {:?}.",
        yearly
            .value()
            .as_tuple()
            .map(sqlpp::Tuple::len)
            .unwrap_or(0),
        start.elapsed()
    );
    Ok(())
}
