//! HR analytics over nested documents — the workload the paper's
//! introduction motivates: schema-optional collections queried with SQL
//! skills, no ETL flattening step.
//!
//! ```text
//! cargo run --example hr_analytics
//! ```

use sqlpp::Engine;
use sqlpp_bench::gen_emp_nested;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();
    // 2,000 employees with nested project assignments (deterministic).
    engine.register("hr.employees", gen_emp_nested(2_000, 5, 2024));

    // 1. Department salary profile — classic SQL over document data.
    let profile = engine.query(
        "SELECT e.deptno, COUNT(*) AS headcount, \
                AVG(e.salary) AS avg_salary, MAX(e.salary) AS top_salary \
         FROM hr.employees AS e \
         GROUP BY e.deptno \
         HAVING COUNT(*) > 50 \
         ORDER BY avg_salary DESC \
         LIMIT 5",
    )?;
    println!(
        "Top departments by average salary:\n{}\n",
        profile.to_pretty()
    );

    // 2. Invert the hierarchy with GROUP AS (§V-B): who staffs each
    //    project? The nesting of the output does NOT follow the nesting
    //    of the input, which is exactly when GROUP AS shines.
    let staffing = engine.query(
        "FROM hr.employees AS e, e.projects AS p \
         GROUP BY p.name AS project GROUP AS g \
         SELECT project, \
                COLL_COUNT(FROM g AS v SELECT VALUE v.e.id) AS team_size, \
                (FROM g AS v SELECT VALUE v.e.name LIMIT 3) AS sample_members \
         ORDER BY team_size DESC",
    )?;
    println!(
        "Project staffing (hierarchy inverted):\n{}\n",
        staffing.to_pretty()
    );

    // 3. Per-employee nested summary: output nesting follows input
    //    nesting, so a correlated SELECT VALUE is the natural tool (§V-A).
    let summary = engine.query(
        "SELECT e.name AS name, \
                (SELECT VALUE p.name FROM e.projects AS p \
                 WHERE p.name LIKE '%Security%') AS security_work \
         FROM hr.employees AS e \
         WHERE e.title = 'Director' \
         LIMIT 3",
    )?;
    println!("Directors' security work:\n{}\n", summary.to_pretty());

    // 4. A prepared, parameterized query, run for several titles.
    let by_title = engine.prepare(
        "SELECT VALUE COLL_COUNT(FROM g AS v SELECT VALUE v.e) \
         FROM hr.employees AS e WHERE e.title = ? \
         GROUP BY e.title GROUP AS g",
    )?;
    for title in ["Engineer", "Manager", "Analyst", "Director"] {
        let n = by_title.execute_with_params(&engine, vec![title.into()])?;
        println!("{title:>9}: {}", n.value());
    }
    Ok(())
}
