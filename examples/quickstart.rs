//! Quickstart: load the paper's Listing 1, run its queries, and see the
//! two mode dials in action.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sqlpp::{CompatMode, Engine, SessionConfig, TypingMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();

    // --- 1. Load a collection of documents (Listing 1) -----------------
    engine.load_pnotation(
        "hr.emp_nest_tuples",
        r#"{{
            {'id': 3, 'name': 'Bob Smith', 'title': null,
             'projects': [{'name': 'Serverless Query'},
                          {'name': 'OLAP Security'},
                          {'name': 'OLTP Security'}]},
            {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
            {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
             'projects': [{'name': 'OLTP Security'}]}
        }}"#,
    )?;

    // --- 2. Query nested data with plain SQL syntax (Listing 2) --------
    // Left-correlation lets the second FROM item range over e.projects.
    let result = engine.query(
        "SELECT e.name AS emp_name, p.name AS proj_name \
         FROM hr.emp_nest_tuples AS e, e.projects AS p \
         WHERE p.name LIKE '%Security%'",
    )?;
    println!("Security project assignments:\n{}\n", result.to_pretty());

    // --- 3. MISSING vs NULL --------------------------------------------
    // JSON (like many formats) can express absence two ways; SQL++ keeps
    // them distinguishable.
    engine.load_json(
        "hr.emp_missing",
        r#"[{"id": 3, "name": "Bob Smith"},
            {"id": 4, "name": "Susan Smith", "title": "Manager"}]"#,
    )?;
    let absent = engine.query(
        "SELECT VALUE {'name': e.name, \
                       'has_title_attr': e.title IS NOT MISSING} \
         FROM hr.emp_missing AS e",
    )?;
    println!("Absence is first-class:\n{}\n", absent.to_pretty());

    // --- 4. The SELECT clause is sugar over SELECT VALUE ----------------
    println!(
        "EXPLAIN shows the SQL++ Core rewriting of an aggregate:\n{}",
        engine.explain("SELECT AVG(e.id) AS avg_id FROM hr.emp_missing AS e")?
    );

    // --- 5. The two dials ------------------------------------------------
    // Stop-on-error mode aborts on type errors instead of excluding data.
    let strict = engine.with_config(SessionConfig {
        typing: TypingMode::StrictError,
        ..SessionConfig::default()
    });
    engine.load_pnotation("dirty", "{{ {'x': 1}, {'x': 'oops'} }}")?;
    println!(
        "permissive: {}",
        engine
            .query("SELECT VALUE d.x * 2 FROM dirty AS d")?
            .value()
    );
    println!(
        "strict:     {:?}",
        strict
            .query("SELECT VALUE d.x * 2 FROM dirty AS d")
            .err()
            .map(|e| e.to_string())
    );

    // Composability mode: subqueries always denote their bag.
    let composable = engine.with_config(SessionConfig {
        compat: CompatMode::Composable,
        ..SessionConfig::default()
    });
    let bag = composable.eval_expr("{'one_to_three': (SELECT VALUE x FROM [1, 2, 3] AS x)}")?;
    println!("composability: {bag}");
    Ok(())
}
