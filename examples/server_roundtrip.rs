//! The serving layer end to end: start a multi-threaded session server
//! over an engine, then drive it with raw TCP clients — queries,
//! positional parameters, DML, an error with spanned diagnostics, and a
//! budget-tripped request arriving as a structured `Overloaded` frame.
//!
//! Run: `cargo run --example server_roundtrip`

use std::time::Duration;

use sqlpp::{Engine, Limits, SessionConfig};
use sqlpp_server::{wire::Response, Client, Server, ServerConfig};
use sqlpp_value::Value;

fn main() -> std::io::Result<()> {
    let engine = Engine::new();
    engine
        .load_pnotation(
            "hr.emp",
            "{{ {'id': 1, 'name': 'Ann', 'sal': 90, 'dept': 'eng'},
                {'id': 2, 'name': 'Bo',  'sal': 70, 'dept': 'eng'},
                {'id': 3, 'name': 'Cy',  'sal': 40, 'dept': 'ops'} }}",
        )
        .expect("load");

    // A worker pool over the engine's catalog. The governor limits are
    // the second admission tier: any request that exceeds them is shed
    // with a structured response, and the session keeps working.
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            workers: 4,
            session: SessionConfig {
                limits: Limits::none()
                    .with_memory_rows(100_000)
                    .with_time(Duration::from_secs(5)),
                ..SessionConfig::default()
            },
            ..ServerConfig::default()
        },
    )?;
    println!("server listening on {}", server.addr());

    let mut client = Client::connect(server.addr())?;

    // A query; the server parses, lowers, optimizes, caches, executes.
    let resp = client.query(
        "SELECT e.dept AS dept, COUNT(*) AS n, SUM(e.sal) AS payroll \
         FROM hr.emp AS e GROUP BY e.dept ORDER BY payroll DESC",
    )?;
    println!("group-by over the wire  -> {resp:?}");

    // The same query shape with different parameters is a plan-cache
    // hit: parse/lower/optimize are skipped, only execution runs.
    let resp = client.query_with_params(
        "SELECT VALUE e.name FROM hr.emp AS e WHERE e.sal > ?",
        vec![Value::Int(50)],
    )?;
    println!("parameterized           -> {resp:?}");
    let resp = client.query_with_params(
        "SELECT VALUE e.name FROM hr.emp AS e WHERE e.sal > ?",
        vec![Value::Int(80)],
    )?;
    println!("same plan, new param    -> {resp:?}");

    // DML goes through the same connection and is immediately visible
    // to every session (one catalog underneath).
    let resp = client
        .query("INSERT INTO hr.emp VALUE {'id': 9, 'name': 'Di', 'sal': 55, 'dept': 'ops'}")?;
    println!("insert                  -> {resp:?}");

    // Errors arrive structured: a machine code plus full spanned
    // diagnostics, enough for a thin client to render caret reports.
    match client.query("SELECT VALUE FROM WHERE")? {
        Response::Error {
            code,
            message,
            diagnostics,
        } => {
            println!(
                "broken query            -> code={code} ({} diagnostic(s))",
                diagnostics.len()
            );
            println!("                           {message}");
        }
        other => println!("unexpected: {other:?}"),
    }

    // A request that trips the session budget is *shed*, not errored —
    // and the very next request on the same connection is served.
    let tight = Server::start(
        engine,
        ServerConfig {
            session: SessionConfig {
                limits: Limits::none().with_memory_rows(2),
                ..SessionConfig::default()
            },
            ..ServerConfig::default()
        },
    )?;
    let mut c2 = Client::connect(tight.addr())?;
    match c2.query("SELECT VALUE e.sal FROM hr.emp AS e ORDER BY e.sal")? {
        Response::Overloaded { message } => println!("over budget             -> shed: {message}"),
        other => println!("unexpected: {other:?}"),
    }
    let resp = c2.query("SELECT VALUE e.name FROM hr.emp AS e WHERE e.id = 1")?;
    println!("same session, next req  -> {resp:?}");
    tight.shutdown();

    println!(
        "cache: {:?}\nstats: {:?}",
        server.cache_stats(),
        server.stats()
    );
    server.shutdown();
    Ok(())
}
