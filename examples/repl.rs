//! An interactive SQL++ shell.
//!
//! ```text
//! cargo run --example repl
//! sql++> SELECT VALUE x FROM [1,2,3] AS x WHERE x > 1
//! {{2, 3}}
//! ```
//!
//! Dot-commands:
//!
//! * `.load <name> <file>` — load a collection (format by extension:
//!   `.json`, `.csv`, `.ion`, anything else is paper notation);
//! * `.explain <query>` — show the lowered SQL++ Core plan;
//! * `.names` — list catalog names;
//! * `.mode compat|composable` / `.typing permissive|strict` — the dials;
//! * `.stats on|off` — print the phase/counter summary after every
//!   statement, DML included;
//! * `.limit mem <n>` / `.limit bytes <n>` / `.limit time <ms>` /
//!   `.limit spill <n>` / `.limit off` — per-query resource budgets
//!   (materialized rows, tracked buffer bytes, wall-clock deadline,
//!   spill-file bytes);
//! * `.spill on|off` — let pipeline breakers overflow the memory budget
//!   to temp files instead of refusing the query; with `.stats on`,
//!   spilling queries report partitions/bytes/merge passes;
//! * `.check <query>` — static analysis only: every syntax error,
//!   name-resolution failure, and schema-derived type warning in one
//!   caret-underlined report, nothing evaluated;
//! * `.save <path>` / `.open <path>` — export the whole catalog as a
//!   checksummed snapshot file, or import one (values *and* attached
//!   schemas survive the round trip);
//! * `.wal status` — durability counters when the REPL was started on a
//!   durable engine (`SQLPP_DATA_DIR=<dir> cargo run --example repl`
//!   opens a write-ahead-logged catalog that survives restarts);
//! * `.quit`.
//!
//! Broken input gets a multi-error report rather than just the first
//! failure — the recovering parser resynchronizes at clause boundaries:
//!
//! ```text
//! sql++> SELECT 1 + FROM demo.emps AS e WHERE ORDER BY
//! error[E_EXPECTED]: unexpected token FROM in expression at line 1, column 12
//!   | SELECT 1 + FROM demo.emps AS e WHERE ORDER BY
//!   |            ^^^^
//!   = hint: while parsing the SELECT clause
//! …
//! 3 errors found
//! ```

use std::io::{BufRead, Write};
use std::time::Duration;

use sqlpp::{CompatMode, Engine, Limits, SessionConfig, SpillConfig, TypingMode};

fn main() {
    let mut config = SessionConfig::default();
    let mut stats_on = false;
    // `SQLPP_DATA_DIR=<dir>` starts the shell durable: catalog recovered
    // from the directory on startup, every commit write-ahead logged.
    let base = match std::env::var("SQLPP_DATA_DIR") {
        Ok(dir) => match Engine::open_durable(&dir) {
            Ok(engine) => {
                println!(
                    "durable catalog at {dir} ({} names recovered)",
                    engine.catalog().names().len()
                );
                engine
            }
            Err(e) => {
                eprintln!("cannot open durable catalog at {dir}: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => Engine::new(),
    };
    if !base.catalog().contains(&sqlpp::Name::parse("demo.emps")) {
        // Something to play with out of the box.
        base.load_pnotation(
            "demo.emps",
            "{{ {'name': 'Ann', 'dept': 'eng', 'salary': 100},
                {'name': 'Bo', 'dept': 'eng', 'salary': 80},
                {'name': 'Cy', 'dept': 'ops'} }}",
        )
        .expect("demo data");
    }

    println!("sqlpp REPL — try: SELECT VALUE e.name FROM demo.emps AS e");
    println!(
        "dot-commands: .load .save .open .wal .explain .check .names .mode .typing \
         .stats .limit .spill .quit"
    );
    let stdin = std::io::stdin();
    loop {
        print!("sql++> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let engine = base.with_config(config.clone());
        if let Some(rest) = line.strip_prefix('.') {
            let mut words = rest.split_whitespace();
            match words.next() {
                Some("quit") | Some("exit") => break,
                Some("names") => {
                    for n in engine.catalog().names() {
                        println!("  {n}");
                    }
                }
                Some("mode") => match words.next() {
                    Some("compat") => config.compat = CompatMode::SqlCompat,
                    Some("composable") => config.compat = CompatMode::Composable,
                    _ => println!("usage: .mode compat|composable"),
                },
                Some("typing") => match words.next() {
                    Some("permissive") => config.typing = TypingMode::Permissive,
                    Some("strict") => config.typing = TypingMode::StrictError,
                    _ => println!("usage: .typing permissive|strict"),
                },
                Some("stats") => match words.next() {
                    Some("on") => stats_on = true,
                    Some("off") => stats_on = false,
                    _ => println!("usage: .stats on|off"),
                },
                Some("limit") => match (words.next(), words.next().map(str::parse::<u64>)) {
                    (Some("mem"), Some(Ok(rows))) => {
                        config.limits = config.limits.clone().with_memory_rows(rows);
                        println!("memory budget: {rows} rows");
                    }
                    (Some("bytes"), Some(Ok(bytes))) => {
                        config.limits = config.limits.clone().with_memory_bytes(bytes);
                        println!("memory budget: {bytes} bytes of tracked buffers");
                    }
                    (Some("time"), Some(Ok(ms))) => {
                        config.limits = config.limits.clone().with_time(Duration::from_millis(ms));
                        println!("deadline: {ms}ms per query");
                    }
                    (Some("spill"), Some(Ok(bytes))) => {
                        config.limits = config.limits.clone().with_spill_bytes(bytes);
                        println!("spill budget: {bytes} bytes of temp files per query");
                    }
                    (Some("off"), _) => {
                        config.limits = Limits::none();
                        println!("limits cleared");
                    }
                    _ => println!(
                        "usage: .limit mem <rows> | .limit bytes <n> | .limit time <ms> \
                         | .limit spill <n> | .limit off"
                    ),
                },
                Some("spill") => match words.next() {
                    Some("on") => {
                        config.spill = Some(SpillConfig::default());
                        println!("spill: on (pipeline breakers overflow to temp files)");
                    }
                    Some("off") => {
                        config.spill = None;
                        println!("spill: off (over-budget queries are refused)");
                    }
                    _ => println!("usage: .spill on|off"),
                },
                Some("check") => {
                    let q = rest.trim_start_matches("check").trim();
                    let diags = engine.check(q);
                    if diags.is_empty() {
                        println!("ok: no diagnostics");
                    } else {
                        print!("{}", sqlpp::render_report(q, &diags));
                    }
                }
                Some("explain") => {
                    let q = rest.trim_start_matches("explain").trim();
                    match engine.explain(q) {
                        Ok(plan) => print!("{plan}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Some("load") => {
                    let (name, path) = (words.next(), words.next());
                    match (name, path) {
                        (Some(name), Some(path)) => match load(&engine, name, path) {
                            Ok(n) => println!("loaded {n} into {name}"),
                            Err(e) => println!("error: {e}"),
                        },
                        _ => println!("usage: .load <name> <file>"),
                    }
                }
                Some("save") => match words.next() {
                    Some(path) => match engine.save_snapshot(std::path::Path::new(path)) {
                        Ok(()) => println!("catalog saved to {path}"),
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("usage: .save <path>"),
                },
                Some("open") => match words.next() {
                    Some(path) => match engine.load_snapshot(std::path::Path::new(path)) {
                        Ok(n) => println!("imported {n} binding(s) from {path}"),
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("usage: .open <path>"),
                },
                Some("wal") => match words.next() {
                    Some("status") => match engine.wal_status() {
                        Some(st) => {
                            println!(
                                "wal: {} (sync {})\n  last lsn {} | snapshot lsn {} | \
                                 {} record(s) since checkpoint | {} wal byte(s)\n  \
                                 lifetime: {} append(s), {} fsync(s), {} checkpoint(s), \
                                 {} replayed on open{}",
                                st.dir.display(),
                                st.sync,
                                st.last_lsn,
                                st.snapshot_lsn
                                    .map_or_else(|| "-".to_string(), |l| l.to_string()),
                                st.records_since_checkpoint,
                                st.wal_bytes,
                                st.appends,
                                st.syncs,
                                st.checkpoints,
                                st.replayed,
                                if st.poisoned { " | POISONED" } else { "" },
                            );
                        }
                        None => println!(
                            "in-memory engine (start with SQLPP_DATA_DIR=<dir> for durability)"
                        ),
                    },
                    Some("checkpoint") => match engine.checkpoint() {
                        Ok(Some(lsn)) => println!("checkpoint written at lsn {lsn}"),
                        Ok(None) => println!("in-memory engine: nothing to checkpoint"),
                        Err(e) => println!("error: {e}"),
                    },
                    _ => println!("usage: .wal status|checkpoint"),
                },
                other => println!("unknown command {other:?}"),
            }
            continue;
        }
        // Statements first (INSERT/DELETE/UPDATE/CREATE/queries), then
        // bare expressions. With `.stats on`, every statement — DML
        // included — also prints its phase/counter summary.
        let outcome = if stats_on {
            engine.execute_with_stats(line).map(|(outcome, stats)| {
                if let Some(stats) = &stats {
                    print!("{}", stats.render_summary());
                }
                outcome
            })
        } else {
            engine.execute(line)
        };
        match outcome {
            Ok(sqlpp::ExecOutcome::Rows(r)) => println!("{}", r.to_pretty()),
            Ok(sqlpp::ExecOutcome::Created { name, row_type }) => {
                println!("created {name}: {row_type}");
            }
            Ok(sqlpp::ExecOutcome::Inserted { count }) => println!("inserted {count}"),
            Ok(sqlpp::ExecOutcome::Deleted { count }) => println!("deleted {count}"),
            Ok(sqlpp::ExecOutcome::Updated { count }) => println!("updated {count}"),
            Ok(sqlpp::ExecOutcome::Explained { text }) => print!("{text}"),
            Err(_) => match engine.run_str(line) {
                Ok(v) => println!("{}", sqlpp::value::to_pretty(&v)),
                // Caret-underlined multi-error report where the error
                // has source attribution; plain one-liner otherwise.
                Err(e) => print!("{}", sqlpp::render_error_report(line, &e)),
            },
        }
    }
    // Graceful exit on a durable engine: checkpoint so the next start
    // recovers from a snapshot instead of replaying the whole log.
    if base.is_durable() {
        match base.checkpoint() {
            Ok(Some(lsn)) => println!("checkpointed at lsn {lsn}"),
            Ok(None) => {}
            Err(e) => eprintln!("checkpoint failed: {e}"),
        }
    }
}

fn load(engine: &Engine, name: &str, path: &str) -> Result<String, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    if path.ends_with(".ion") {
        engine.load_ion_lite(name, &bytes)?;
    } else {
        let text = String::from_utf8(bytes)?;
        if path.ends_with(".json") {
            engine.load_json(name, &text)?;
        } else if path.ends_with(".csv") {
            engine.load_csv(name, &text)?;
        } else {
            engine.load_pnotation(name, &text)?;
        }
    }
    let v = engine.catalog().get_str(name)?;
    Ok(format!(
        "{} ({} rows)",
        v.kind().name(),
        v.as_elements()
            .map(<[sqlpp::value::Value]>::len)
            .unwrap_or(1)
    ))
}
