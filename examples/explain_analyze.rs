//! EXPLAIN ANALYZE smoke: run a GROUP AS + UNNEST paper query with
//! statistics collection and verify the rendered plan carries non-zero
//! row and timing counters. `scripts/ci.sh` runs this on every build.
//!
//! ```text
//! cargo run --example explain_analyze
//! ```

use sqlpp::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();
    engine.load_pnotation(
        "hr.emp_nest_tuples",
        r#"{{
            {'id': 3, 'name': 'Bob Smith', 'title': null,
             'projects': [{'name': 'Serverless Query'},
                          {'name': 'OLAP Security'},
                          {'name': 'OLTP Security'}]},
            {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
            {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
             'projects': [{'name': 'OLTP Security'}]}
        }}"#,
    )?;

    // A GROUP AS query over an UNNESTed (left-correlated) FROM: per
    // project, collect who works on it — Listing 14 territory.
    let query = "SELECT p.name AS proj, COUNT(*) AS headcount \
                 FROM hr.emp_nest_tuples AS e, e.projects AS p \
                 GROUP BY p.name GROUP AS g";

    // The statement form, as a client would type it.
    let sqlpp::ExecOutcome::Explained { text } =
        engine.execute(&format!("EXPLAIN ANALYZE {query}"))?
    else {
        return Err("EXPLAIN ANALYZE did not produce a plan".into());
    };
    println!("{text}");

    // The plan must be annotated: per-operator pipeline class, calls,
    // rows, and time, plus the phase/counter summary with non-zero scan
    // and binding counts.
    assert!(
        text.contains("[streaming calls="),
        "no streaming-operator annotations:\n{text}"
    );
    assert!(
        text.contains("[materializing calls="),
        "no materializing-operator annotations:\n{text}"
    );
    assert!(text.contains("group by"), "no group operator:\n{text}");
    assert!(text.contains("phases: parse"), "no phase summary:\n{text}");

    let result = engine.query_with_stats(query)?;
    let stats = result.stats().expect("stats collection was on");
    assert!(stats.rows_scanned > 0, "rows_scanned = 0");
    assert!(stats.bindings_produced > 0, "bindings_produced = 0");
    assert!(stats.groups_built > 0, "groups_built = 0");
    assert!(stats.eval_ns > 0, "eval_ns = 0");
    println!(
        "ok: scanned {} rows, produced {} bindings, built {} groups",
        stats.rows_scanned, stats.bindings_produced, stats.groups_built
    );
    Ok(())
}
