//! Heterogeneous sensor logs: schema-optional data with evolving shapes —
//! the §IV story. Readings arrive as scalars, then as calibrated tuples,
//! then as batched arrays; old records lack attributes newer ones have.
//! One query processes all generations; strict mode, schema inference and
//! the binary format round-trip are shown along the way.
//!
//! ```text
//! cargo run --example sensor_logs
//! ```

use sqlpp::{Engine, SessionConfig, TypingMode};
use sqlpp_formats::{DataFormat, IonLiteFormat};
use sqlpp_schema::infer_collection;

const LOGS: &str = r#"{{
    {'device': 'd1', 'ts': 100, 'reading': 21.5},
    {'device': 'd1', 'ts': 160, 'reading': 22.1},
    {'device': 'd2', 'ts': 100,
     'reading': {'celsius': 19.0, 'calibrated': true}},
    {'device': 'd3', 'ts': 100, 'reading': [18.2, 18.4, 18.9]},
    {'device': 'd4', 'ts': 100, 'reading': 'SENSOR_FAULT'},
    {'device': 'd5', 'ts': 100}
}}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();
    engine.load_pnotation("iot.logs", LOGS)?;

    // 1. Normalize every generation with dynamic type tests — no schema,
    //    no failures: the faulty and absent readings fall through every
    //    WHEN and surface as NULL, ready to be filtered (§IV).
    let normalized = engine.query(
        "SELECT r.device AS device, \
                CASE WHEN r.reading IS NUMBER THEN r.reading \
                     WHEN r.reading IS TUPLE THEN r.reading.celsius \
                     WHEN r.reading IS ARRAY THEN \
                          COLL_AVG(SELECT VALUE x FROM r.reading AS x) \
                END AS celsius \
         FROM iot.logs AS r",
    )?;
    println!(
        "Normalized readings (all generations):\n{}\n",
        normalized.to_pretty()
    );

    // 2. The same pipeline in stop-on-error mode refuses the dirty value
    //    the moment arithmetic touches it.
    let strict = engine.with_config(SessionConfig {
        typing: TypingMode::StrictError,
        ..SessionConfig::default()
    });
    let outcome =
        strict.query("SELECT VALUE r.reading * 2 FROM iot.logs AS r WHERE r.device = 'd4'");
    println!(
        "Strict mode on the faulty reading: {}\n",
        outcome.err().map(|e| e.to_string()).unwrap_or_default()
    );

    // 3. Infer the structural schema the data actually has — note the
    //    union-typed reading and the optional attribute, Listing 5's
    //    UNIONTYPE heterogeneity discovered rather than declared.
    let data = engine.catalog().get_str("iot.logs")?;
    let inferred = infer_collection(&data).expect("collection");
    println!("Inferred element type:\n  {inferred}\n");

    // 4. Format independence: round-trip the whole collection through the
    //    binary format and show the identical query gives the identical
    //    answer.
    let fmt = IonLiteFormat;
    let bytes = fmt.write(&data)?;
    engine.load_ion_lite("iot.logs_bin", &bytes)?;
    let q = "SELECT VALUE COLL_COUNT(SELECT VALUE r FROM iot.logs AS r)";
    let q_bin = "SELECT VALUE COLL_COUNT(SELECT VALUE r FROM iot.logs_bin AS r)";
    println!(
        "ion-lite round trip: {} bytes; count over text = {}, over binary = {}",
        bytes.len(),
        engine.query(q)?.value(),
        engine.query(q_bin)?.value(),
    );
    Ok(())
}
