//! The public API surface a downstream user exercises: data loading,
//! prepared statements, parameters, EXPLAIN, CREATE TABLE execution,
//! relational views, error reporting, and session sharing.

use sqlpp::{Engine, Error, ExecOutcome, SessionConfig, TypingMode};
use sqlpp_value::Value;

#[test]
fn loading_all_formats_through_the_engine() {
    let engine = Engine::new();
    engine.load_json("j", r#"[{"a": 1}, {"a": 2}]"#).unwrap();
    engine.load_json("jl", "{\"a\": 3}\n{\"a\": 4}\n").unwrap();
    engine.load_csv("c", "a,b\n5,x\n6,y\n").unwrap();
    engine.load_pnotation("p", "{{ {'a': 7} }}").unwrap();
    let bytes = sqlpp_formats::ion_lite::to_ion_lite(&sqlpp_value::rows![{"a" => 8i64}]);
    engine.load_ion_lite("i", &bytes).unwrap();
    for (name, expected) in [("j", 2), ("jl", 2), ("c", 2), ("p", 1), ("i", 1)] {
        let r = engine
            .query(&format!("SELECT VALUE t.a FROM {name} AS t"))
            .unwrap();
        assert_eq!(r.len(), expected, "{name}");
    }
}

#[test]
fn prepared_statements_are_reusable_and_parameterized() {
    let engine = Engine::new();
    engine
        .load_pnotation("t", "{{ {'x': 1}, {'x': 2}, {'x': 3} }}")
        .unwrap();
    let plan = engine
        .prepare("SELECT VALUE t.x FROM t AS t WHERE t.x >= ? AND t.x <= ?")
        .unwrap();
    let r1 = plan
        .execute_with_params(&engine, vec![Value::Int(2), Value::Int(3)])
        .unwrap();
    assert_eq!(r1.canonical().to_string(), "{{2, 3}}");
    let r2 = plan
        .execute_with_params(&engine, vec![Value::Int(1), Value::Int(1)])
        .unwrap();
    assert_eq!(r2.canonical().to_string(), "{{1}}");
    // Missing parameters are a clear error.
    let err = plan.execute(&engine).unwrap_err();
    assert!(err.to_string().contains("parameter"), "{err}");
}

/// The stale-`Prepared`-plan regression (PR 7's headline bugfix):
/// a plan lowered against one schema snapshot must not run after the
/// catalog's schemas change — prepare → alter schema → execute has to
/// observe the *new* schema's disambiguation, not the old one's.
#[test]
fn prepared_plans_relower_after_schema_changes() {
    use sqlpp_schema::infer_collection;

    let engine = Engine::new();
    let emps = sqlpp_formats::pnotation::from_pnotation("{{ {'name': 'Ann'} }}").unwrap();
    let depts = sqlpp_formats::pnotation::from_pnotation("{{ {'dname': 'Eng'} }}").unwrap();
    let emp_ty = infer_collection(&emps).unwrap();
    let dept_ty = infer_collection(&depts).unwrap();
    engine.register_with_schema("emp", emps, &emp_ty).unwrap();
    engine
        .register_with_schema("dept", depts, &dept_ty)
        .unwrap();

    // With the schemas above, bare `name` statically resolves to `e.name`
    // (§III disambiguation): only `emp` elements carry the attribute.
    let plan = engine
        .prepare("SELECT VALUE name FROM emp AS e, dept AS d")
        .unwrap();
    assert_eq!(
        plan.execute(&engine).unwrap().canonical().to_string(),
        "{{'Ann'}}"
    );

    // Swap the attribute between the collections: now only `dept`
    // elements carry `name`, so a correct lowering resolves bare `name`
    // to `d.name`. The old plan would keep projecting `e.name` (MISSING
    // on every row) — silently wrong results.
    let emps2 = sqlpp_formats::pnotation::from_pnotation("{{ {'ename': 'X'} }}").unwrap();
    let depts2 = sqlpp_formats::pnotation::from_pnotation("{{ {'name': 'Bob'} }}").unwrap();
    let emp_ty2 = infer_collection(&emps2).unwrap();
    let dept_ty2 = infer_collection(&depts2).unwrap();
    engine.register_with_schema("emp", emps2, &emp_ty2).unwrap();
    engine
        .register_with_schema("dept", depts2, &dept_ty2)
        .unwrap();

    assert_eq!(
        plan.execute(&engine).unwrap().canonical().to_string(),
        "{{'Bob'}}",
        "prepared plan executed against a stale schema snapshot"
    );
    // The stamp reflects prepare time; the catalog has moved past it.
    assert!(engine.catalog().schema_epoch() > plan.schema_epoch());

    // Re-lowering can also surface *errors* the new schemas imply — e.g.
    // both collections now claiming the attribute makes bare `name`
    // ambiguous — rather than silently running the stale resolution.
    engine
        .register_with_schema(
            "emp",
            sqlpp_formats::pnotation::from_pnotation("{{ {'name': 'Y'} }}").unwrap(),
            &dept_ty2,
        )
        .unwrap();
    let err = plan.execute(&engine).unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
}

#[test]
fn create_table_registers_an_empty_typed_collection() {
    let engine = Engine::new();
    let outcome = engine
        .execute(
            "CREATE TABLE emp_mixed (id INT, name STRING, \
             projects UNIONTYPE<STRING, ARRAY<STRING>>)",
        )
        .unwrap();
    match outcome {
        ExecOutcome::Created { name, row_type } => {
            assert_eq!(name, "emp_mixed");
            assert!(row_type.to_string().contains("union<"), "{row_type}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The (empty) collection is queryable immediately.
    let r = engine.query("SELECT VALUE e FROM emp_mixed AS e").unwrap();
    assert!(r.is_empty());
}

#[test]
fn explain_shows_the_lowered_pipeline() {
    let engine = Engine::new();
    let plan = engine
        .explain("SELECT AVG(e.x) AS a FROM t AS e GROUP BY e.g")
        .unwrap();
    assert!(plan.contains("COLL_AVG"), "{plan}");
    assert!(plan.contains("group by"), "{plan}");
    assert!(plan.contains("select value"), "{plan}");
}

#[test]
fn unknown_names_are_reported_with_the_dotted_path() {
    let engine = Engine::new();
    let err = engine
        .query("SELECT VALUE x FROM hr.nowhere AS x")
        .unwrap_err();
    assert!(matches!(err, Error::Eval(_)));
    assert!(err.to_string().contains("hr.nowhere"), "{err}");
}

#[test]
fn syntax_errors_carry_positions() {
    let engine = Engine::new();
    let err = engine.query("SELECT FROM WHERE").unwrap_err();
    assert!(matches!(err, Error::Syntax(_)));
    assert!(err.to_string().contains("line 1"), "{err}");
}

#[test]
fn sessions_share_the_catalog_but_not_the_config() {
    let base = Engine::new();
    base.load_pnotation("t", "{{ {'x': 'not a number'} }}")
        .unwrap();
    let strict = base.with_config(SessionConfig {
        typing: TypingMode::StrictError,
        ..SessionConfig::default()
    });
    // Same data visible to both…
    assert_eq!(base.query("SELECT VALUE t FROM t AS t").unwrap().len(), 1);
    // …different behavior per session.
    assert!(base.query("SELECT VALUE t.x + 1 FROM t AS t").is_ok());
    assert!(strict.query("SELECT VALUE t.x + 1 FROM t AS t").is_err());
    // Writes through one session are visible to the other.
    strict.register("u", sqlpp_value::bag![1i64]);
    assert_eq!(base.query("SELECT VALUE u FROM u AS u").unwrap().len(), 1);
}

#[test]
fn concurrent_dml_loses_no_updates() {
    // Every DML statement is snapshot-and-replace; without the catalog's
    // writer serialization two concurrent INSERTs clone the same
    // snapshot and the second commit drops the first's row. Eight
    // threads hammering one collection must land every single insert.
    let engine = Engine::new();
    engine.register("log", sqlpp_value::bag![]);
    const THREADS: usize = 8;
    const PER_THREAD: usize = 50;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let session = engine.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let outcome = session
                        .execute(&format!("INSERT INTO log VALUE {{'t': {t}, 'i': {i}}}"))
                        .unwrap();
                    assert!(matches!(outcome, ExecOutcome::Inserted { count: 1 }));
                }
            });
        }
    });
    let n = engine.query("SELECT VALUE COUNT(*) FROM log AS l").unwrap();
    assert_eq!(
        n.canonical().to_string(),
        format!("{{{{{}}}}}", THREADS * PER_THREAD)
    );
    // Mixed writers too: DELETE and INSERT race, and the final state is
    // exactly the set algebra of what succeeded — deletes remove only
    // their own thread's rows, concurrent inserts survive.
    std::thread::scope(|s| {
        for t in 0..THREADS / 2 {
            let session = engine.clone();
            s.spawn(move || {
                session
                    .execute(&format!("DELETE FROM log AS l WHERE l.t = {t}"))
                    .unwrap();
            });
        }
        for t in THREADS..THREADS + 2 {
            let session = engine.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    session
                        .execute(&format!("INSERT INTO log VALUE {{'t': {t}, 'i': {i}}}"))
                        .unwrap();
                }
            });
        }
    });
    let n = engine.query("SELECT VALUE COUNT(*) FROM log AS l").unwrap();
    let expect = (THREADS / 2) * PER_THREAD + 2 * PER_THREAD;
    assert_eq!(n.canonical().to_string(), format!("{{{{{expect}}}}}"));
}

#[test]
fn relational_view_for_jdbc_style_clients() {
    let engine = Engine::new();
    engine
        .load_pnotation("t", "{{ {'id': 1, 'note': 'hi'}, {'id': 2} }}")
        .unwrap();
    let r = engine
        .query("SELECT t.id, t.note AS note FROM t AS t")
        .unwrap();
    let (cols, rows) = r.as_relational();
    assert_eq!(cols, vec!["id", "note"]);
    assert_eq!(rows[1][1], Value::Null, "MISSING surfaced as NULL (§IV-B)");
}

#[test]
fn pivot_results_are_tuples_not_bags() {
    let engine = Engine::new();
    engine
        .load_pnotation("prices", "{{ {'s': 'a', 'p': 1}, {'s': 'b', 'p': 2} }}")
        .unwrap();
    let r = engine.query("PIVOT x.p AT x.s FROM prices AS x").unwrap();
    assert!(matches!(r.value(), Value::Tuple(_)));
    assert_eq!(r.value().path("b"), Value::Int(2));
}

#[test]
fn run_str_handles_both_queries_and_expressions() {
    let engine = Engine::new();
    assert_eq!(engine.run_str("1 + 2 * 3").unwrap(), Value::Int(7));
    engine.load_pnotation("t", "{{1, 2}}").unwrap();
    assert_eq!(
        engine
            .run_str("SELECT VALUE x FROM t AS x")
            .unwrap()
            .to_string(),
        "{{1, 2}}"
    );
    // Garbage reports the *query* parse error (more useful than the
    // expression one).
    assert!(engine.run_str("SELECT $$$$").is_err());
}

#[test]
fn values_rows_are_queryable() {
    let engine = Engine::new();
    let r = engine.query("VALUES (1, 'a'), (2, 'b')").unwrap();
    assert_eq!(r.len(), 2);
    let r2 = engine
        .query("SELECT VALUE v[1] FROM (VALUES (1, 'a'), (2, 'b')) AS v")
        .unwrap();
    assert_eq!(r2.canonical().to_string(), "{{'a', 'b'}}");
}

#[test]
fn deeply_nested_construction_round_trips() {
    let engine = Engine::new();
    let v = engine
        .eval_expr("{'a': [{'b': <<1, {'c': null}>>}], 'd': [[]]}")
        .unwrap();
    let text = v.to_string();
    let back = sqlpp_formats::pnotation::from_pnotation(&text).unwrap();
    assert!(sqlpp_value::cmp::deep_eq(&v, &back));
}

// ======================================================================
// Resource governance at the API surface (ISSUE 5): structured errors
// for budget/deadline/cancellation, and an engine that remains fully
// usable after every kind of governed failure.
// ======================================================================

mod governance {
    use std::time::Duration;

    use sqlpp::{CancelToken, Engine, Limits, SessionConfig};

    fn fixture() -> Engine {
        let engine = Engine::new();
        let rows: Vec<String> = (0..100)
            .map(|i| format!("{{'id': {i}, 'grp': {}}}", i % 7))
            .collect();
        engine
            .load_pnotation("nums", &format!("{{{{ {} }}}}", rows.join(", ")))
            .unwrap();
        engine
    }

    fn limited(engine: &Engine, limits: Limits) -> Engine {
        engine.with_config(SessionConfig {
            limits,
            ..SessionConfig::default()
        })
    }

    #[test]
    fn budget_denial_is_structured_and_engine_survives() {
        let engine = fixture();
        let session = limited(&engine, Limits::none().with_memory_rows(10));
        // ORDER BY is a pipeline breaker: 100 rows against a 10-row
        // budget must be refused with the structured error, fast.
        let err = session
            .query("SELECT VALUE n.id FROM nums AS n ORDER BY n.id DESC")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("resource exhausted"), "{msg}");
        assert!(msg.contains("memory budget"), "{msg}");
        assert!(msg.contains("limit 10"), "{msg}");
        // The same session still runs streaming queries (no breaker
        // materializes more than the budget)...
        let r = session
            .query("SELECT VALUE n.id FROM nums AS n WHERE n.id < 3")
            .unwrap();
        assert_eq!(r.len(), 3);
        // ...and a breaker that fits the budget works too.
        let r = session
            .query("SELECT VALUE n.id FROM nums AS n WHERE n.id < 5 ORDER BY n.id DESC")
            .unwrap();
        assert_eq!(r.rows()[0].as_int().unwrap(), 4);
    }

    #[test]
    fn governor_counters_reset_between_queries() {
        let engine = fixture();
        let session = limited(&engine, Limits::none().with_memory_rows(50));
        let q = "SELECT VALUE n.id FROM nums AS n WHERE n.id < 20 ORDER BY n.id";
        let first = session.query_with_stats(q).unwrap();
        let second = session.query_with_stats(q).unwrap();
        let (a, b) = (first.stats().unwrap(), second.stats().unwrap());
        assert_eq!(a.peak_budget_used, 20, "{a:?}");
        assert_eq!(
            a.peak_budget_used, b.peak_budget_used,
            "governor state leaked across queries"
        );
        assert_eq!(b.budget_denials, 0);
        assert_eq!(a.mem_budget, Some(50));
    }

    #[test]
    fn deadline_expiry_cancels_and_engine_survives() {
        let engine = fixture();
        // A zero deadline has already expired at the first pull.
        let session = limited(&engine, Limits::none().with_time(Duration::ZERO));
        let err = session
            .query("SELECT VALUE n.id FROM nums AS n")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("query cancelled"), "{msg}");
        assert!(msg.contains("deadline"), "{msg}");
        // The deadline clock is per-query: a generous one succeeds on the
        // same catalog.
        let ok = limited(&engine, Limits::none().with_time(Duration::from_secs(60)));
        assert_eq!(
            ok.query("SELECT VALUE n.id FROM nums AS n").unwrap().len(),
            100
        );
    }

    #[test]
    fn cancellation_token_stops_the_query() {
        let engine = fixture();
        let token = CancelToken::new();
        let session = limited(&engine, Limits::none().with_cancel(token.clone()));
        // Not cancelled: runs normally.
        assert_eq!(
            session
                .query("SELECT VALUE n.id FROM nums AS n")
                .unwrap()
                .len(),
            100
        );
        // Tripped (as a controller thread would): the next query dies
        // with the structured cancellation error.
        token.cancel();
        let err = session
            .query("SELECT VALUE n.id FROM nums AS n")
            .unwrap_err();
        assert!(err.to_string().contains("cancellation requested"), "{err}");
        // A fresh token over the same catalog is unaffected.
        let fresh = limited(&engine, Limits::none().with_cancel(CancelToken::new()));
        assert_eq!(
            fresh
                .query("SELECT VALUE n.id FROM nums AS n")
                .unwrap()
                .len(),
            100
        );
    }

    #[test]
    fn strict_mode_error_leaves_session_usable() {
        let engine = fixture();
        engine
            .load_pnotation("dirty", "{{ {'v': 1}, {'v': 'oops'} }}")
            .unwrap();
        let strict = engine.with_config(SessionConfig {
            typing: sqlpp::TypingMode::StrictError,
            ..SessionConfig::default()
        });
        let err = strict
            .query("SELECT VALUE d.v + 1 FROM dirty AS d")
            .unwrap_err();
        assert!(err.to_string().contains("type error"), "{err}");
        // Same strict session, clean data: works.
        assert_eq!(
            strict
                .query("SELECT VALUE n.id FROM nums AS n")
                .unwrap()
                .len(),
            100
        );
    }

    #[test]
    fn eval_nesting_depth_is_limited() {
        let engine = fixture();
        engine.load_pnotation("one", "{{ {'v': 1} }}").unwrap();
        // Twelve nested scalar subqueries (each level is one evaluator
        // re-entry) against a depth budget of 8: the guard trips with the
        // structured error instead of marching toward stack exhaustion.
        let mut deep = String::from("u0.v");
        for i in 0..12 {
            deep = format!("(SELECT VALUE {deep} FROM one AS u{i})");
        }
        let deep = format!("SELECT VALUE {deep} FROM one AS u0");
        let session = limited(&engine, Limits::none().with_eval_depth(8));
        let err = session.query(&deep).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("resource exhausted"), "{msg}");
        assert!(msg.contains("nesting depth"), "{msg}");
        // The default (generous) allowance evaluates the same query fine.
        assert_eq!(engine.query(&deep).unwrap().len(), 1);
    }

    #[test]
    fn explain_analyze_reports_the_budget_line() {
        let engine = fixture();
        let session = limited(
            &engine,
            Limits::none()
                .with_memory_rows(1000)
                .with_time(Duration::from_secs(30)),
        );
        let report = session
            .explain_analyze("SELECT VALUE n.id FROM nums AS n ORDER BY n.id")
            .unwrap();
        assert!(report.contains("budget: mem"), "{report}");
        assert!(report.contains("/1000 rows"), "{report}");
        assert!(report.contains("deadline 30000ms"), "{report}");
        // Without limits the line is absent.
        let plain = engine
            .explain_analyze("SELECT VALUE n.id FROM nums AS n ORDER BY n.id")
            .unwrap();
        assert!(!plain.contains("budget:"), "{plain}");
    }
}
