//! The public API surface a downstream user exercises: data loading,
//! prepared statements, parameters, EXPLAIN, CREATE TABLE execution,
//! relational views, error reporting, and session sharing.

use sqlpp::{Engine, Error, ExecOutcome, SessionConfig, TypingMode};
use sqlpp_value::Value;

#[test]
fn loading_all_formats_through_the_engine() {
    let engine = Engine::new();
    engine.load_json("j", r#"[{"a": 1}, {"a": 2}]"#).unwrap();
    engine.load_json("jl", "{\"a\": 3}\n{\"a\": 4}\n").unwrap();
    engine.load_csv("c", "a,b\n5,x\n6,y\n").unwrap();
    engine.load_pnotation("p", "{{ {'a': 7} }}").unwrap();
    let bytes = sqlpp_formats::ion_lite::to_ion_lite(&sqlpp_value::rows![{"a" => 8i64}]);
    engine.load_ion_lite("i", &bytes).unwrap();
    for (name, expected) in [("j", 2), ("jl", 2), ("c", 2), ("p", 1), ("i", 1)] {
        let r = engine
            .query(&format!("SELECT VALUE t.a FROM {name} AS t"))
            .unwrap();
        assert_eq!(r.len(), expected, "{name}");
    }
}

#[test]
fn prepared_statements_are_reusable_and_parameterized() {
    let engine = Engine::new();
    engine
        .load_pnotation("t", "{{ {'x': 1}, {'x': 2}, {'x': 3} }}")
        .unwrap();
    let plan = engine
        .prepare("SELECT VALUE t.x FROM t AS t WHERE t.x >= ? AND t.x <= ?")
        .unwrap();
    let r1 = plan
        .execute_with_params(&engine, vec![Value::Int(2), Value::Int(3)])
        .unwrap();
    assert_eq!(r1.canonical().to_string(), "{{2, 3}}");
    let r2 = plan
        .execute_with_params(&engine, vec![Value::Int(1), Value::Int(1)])
        .unwrap();
    assert_eq!(r2.canonical().to_string(), "{{1}}");
    // Missing parameters are a clear error.
    let err = plan.execute(&engine).unwrap_err();
    assert!(err.to_string().contains("parameter"), "{err}");
}

#[test]
fn create_table_registers_an_empty_typed_collection() {
    let engine = Engine::new();
    let outcome = engine
        .execute(
            "CREATE TABLE emp_mixed (id INT, name STRING, \
             projects UNIONTYPE<STRING, ARRAY<STRING>>)",
        )
        .unwrap();
    match outcome {
        ExecOutcome::Created { name, row_type } => {
            assert_eq!(name, "emp_mixed");
            assert!(row_type.to_string().contains("union<"), "{row_type}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The (empty) collection is queryable immediately.
    let r = engine.query("SELECT VALUE e FROM emp_mixed AS e").unwrap();
    assert!(r.is_empty());
}

#[test]
fn explain_shows_the_lowered_pipeline() {
    let engine = Engine::new();
    let plan = engine
        .explain("SELECT AVG(e.x) AS a FROM t AS e GROUP BY e.g")
        .unwrap();
    assert!(plan.contains("COLL_AVG"), "{plan}");
    assert!(plan.contains("group by"), "{plan}");
    assert!(plan.contains("select value"), "{plan}");
}

#[test]
fn unknown_names_are_reported_with_the_dotted_path() {
    let engine = Engine::new();
    let err = engine
        .query("SELECT VALUE x FROM hr.nowhere AS x")
        .unwrap_err();
    assert!(matches!(err, Error::Eval(_)));
    assert!(err.to_string().contains("hr.nowhere"), "{err}");
}

#[test]
fn syntax_errors_carry_positions() {
    let engine = Engine::new();
    let err = engine.query("SELECT FROM WHERE").unwrap_err();
    assert!(matches!(err, Error::Syntax(_)));
    assert!(err.to_string().contains("line 1"), "{err}");
}

#[test]
fn sessions_share_the_catalog_but_not_the_config() {
    let base = Engine::new();
    base.load_pnotation("t", "{{ {'x': 'not a number'} }}")
        .unwrap();
    let strict = base.with_config(SessionConfig {
        typing: TypingMode::StrictError,
        ..SessionConfig::default()
    });
    // Same data visible to both…
    assert_eq!(base.query("SELECT VALUE t FROM t AS t").unwrap().len(), 1);
    // …different behavior per session.
    assert!(base.query("SELECT VALUE t.x + 1 FROM t AS t").is_ok());
    assert!(strict.query("SELECT VALUE t.x + 1 FROM t AS t").is_err());
    // Writes through one session are visible to the other.
    strict.register("u", sqlpp_value::bag![1i64]);
    assert_eq!(base.query("SELECT VALUE u FROM u AS u").unwrap().len(), 1);
}

#[test]
fn relational_view_for_jdbc_style_clients() {
    let engine = Engine::new();
    engine
        .load_pnotation("t", "{{ {'id': 1, 'note': 'hi'}, {'id': 2} }}")
        .unwrap();
    let r = engine
        .query("SELECT t.id, t.note AS note FROM t AS t")
        .unwrap();
    let (cols, rows) = r.as_relational();
    assert_eq!(cols, vec!["id", "note"]);
    assert_eq!(rows[1][1], Value::Null, "MISSING surfaced as NULL (§IV-B)");
}

#[test]
fn pivot_results_are_tuples_not_bags() {
    let engine = Engine::new();
    engine
        .load_pnotation("prices", "{{ {'s': 'a', 'p': 1}, {'s': 'b', 'p': 2} }}")
        .unwrap();
    let r = engine.query("PIVOT x.p AT x.s FROM prices AS x").unwrap();
    assert!(matches!(r.value(), Value::Tuple(_)));
    assert_eq!(r.value().path("b"), Value::Int(2));
}

#[test]
fn run_str_handles_both_queries_and_expressions() {
    let engine = Engine::new();
    assert_eq!(engine.run_str("1 + 2 * 3").unwrap(), Value::Int(7));
    engine.load_pnotation("t", "{{1, 2}}").unwrap();
    assert_eq!(
        engine
            .run_str("SELECT VALUE x FROM t AS x")
            .unwrap()
            .to_string(),
        "{{1, 2}}"
    );
    // Garbage reports the *query* parse error (more useful than the
    // expression one).
    assert!(engine.run_str("SELECT $$$$").is_err());
}

#[test]
fn values_rows_are_queryable() {
    let engine = Engine::new();
    let r = engine.query("VALUES (1, 'a'), (2, 'b')").unwrap();
    assert_eq!(r.len(), 2);
    let r2 = engine
        .query("SELECT VALUE v[1] FROM (VALUES (1, 'a'), (2, 'b')) AS v")
        .unwrap();
    assert_eq!(r2.canonical().to_string(), "{{'a', 'b'}}");
}

#[test]
fn deeply_nested_construction_round_trips() {
    let engine = Engine::new();
    let v = engine
        .eval_expr("{'a': [{'b': <<1, {'c': null}>>}], 'd': [[]]}")
        .unwrap();
    let text = v.to_string();
    let back = sqlpp_formats::pnotation::from_pnotation(&text).unwrap();
    assert!(sqlpp_value::cmp::deep_eq(&v, &back));
}
