//! Window functions (§V-B): "SQL has additional analytical features …
//! as well as window functions (i.e., OVER) for more advanced analytics.
//! These features are wholly compatible with SQL++ and then become able
//! to operate on and produce nested and heterogeneous data."

use sqlpp::Engine;
use sqlpp_formats::pnotation::from_pnotation;
use sqlpp_value::Value;

fn engine() -> Engine {
    let engine = Engine::new();
    engine
        .load_pnotation(
            "emp",
            r#"{{
            {'name': 'Ann', 'dept': 'eng', 'sal': 100},
            {'name': 'Bo',  'dept': 'eng', 'sal': 80},
            {'name': 'Cy',  'dept': 'eng', 'sal': 80},
            {'name': 'Di',  'dept': 'ops', 'sal': 90},
            {'name': 'Ed',  'dept': 'ops', 'sal': 60}
        }}"#,
        )
        .unwrap();
    engine
}

fn check(engine: &Engine, query: &str, expected: &str) {
    let want = from_pnotation(expected).unwrap();
    let got = engine.query(query).unwrap();
    assert!(
        got.matches(&want),
        "query {query}\n expected {want}\n got      {}",
        got.value()
    );
}

#[test]
fn row_number_rank_dense_rank() {
    let engine = engine();
    check(
        &engine,
        "SELECT e.name AS name, \
                ROW_NUMBER() OVER (PARTITION BY e.dept ORDER BY e.sal DESC, e.name) AS rn, \
                RANK() OVER (PARTITION BY e.dept ORDER BY e.sal DESC) AS rk, \
                DENSE_RANK() OVER (PARTITION BY e.dept ORDER BY e.sal DESC) AS dr \
         FROM emp AS e",
        r#"{{
            {'name': 'Ann', 'rn': 1, 'rk': 1, 'dr': 1},
            {'name': 'Bo',  'rn': 2, 'rk': 2, 'dr': 2},
            {'name': 'Cy',  'rn': 3, 'rk': 2, 'dr': 2},
            {'name': 'Di',  'rn': 1, 'rk': 1, 'dr': 1},
            {'name': 'Ed',  'rn': 2, 'rk': 2, 'dr': 2}
        }}"#,
    );
}

#[test]
fn partition_aggregates_without_order() {
    let engine = engine();
    check(
        &engine,
        "SELECT e.name AS name, \
                SUM(e.sal) OVER (PARTITION BY e.dept) AS dept_total, \
                COUNT(*) OVER (PARTITION BY e.dept) AS dept_size, \
                AVG(e.sal) OVER () AS overall_avg \
         FROM emp AS e WHERE e.dept = 'ops'",
        r#"{{
            {'name': 'Di', 'dept_total': 150, 'dept_size': 2, 'overall_avg': 75},
            {'name': 'Ed', 'dept_total': 150, 'dept_size': 2, 'overall_avg': 75}
        }}"#,
    );
}

#[test]
fn running_aggregate_includes_peers() {
    let engine = engine();
    // SQL default frame: RANGE UNBOUNDED PRECEDING..CURRENT ROW — peers
    // (Bo and Cy, both sal 80) see the same running sum.
    check(
        &engine,
        "SELECT e.name AS name, \
                SUM(e.sal) OVER (PARTITION BY e.dept ORDER BY e.sal) AS running \
         FROM emp AS e WHERE e.dept = 'eng'",
        r#"{{
            {'name': 'Bo', 'running': 160},
            {'name': 'Cy', 'running': 160},
            {'name': 'Ann', 'running': 260}
        }}"#,
    );
}

#[test]
fn lag_and_lead() {
    let engine = engine();
    check(
        &engine,
        "SELECT e.name AS name, \
                LAG(e.name) OVER (ORDER BY e.sal DESC, e.name) AS prev, \
                LEAD(e.name, 2) OVER (ORDER BY e.sal DESC, e.name) AS two_ahead, \
                LAG(e.name, 1, 'none') OVER (ORDER BY e.sal DESC, e.name) AS prev_d \
         FROM emp AS e WHERE e.dept = 'eng'",
        r#"{{
            {'name': 'Ann', 'prev': null, 'two_ahead': 'Cy', 'prev_d': 'none'},
            {'name': 'Bo', 'prev': 'Ann', 'two_ahead': null, 'prev_d': 'Ann'},
            {'name': 'Cy', 'prev': 'Bo', 'two_ahead': null, 'prev_d': 'Bo'}
        }}"#,
    );
}

#[test]
fn windows_over_nested_heterogeneous_data() {
    // The paper's point: the same OVER machinery runs on unnested
    // document data and can *produce* nested output.
    let engine = Engine::new();
    engine
        .load_pnotation(
            "orders",
            r#"{{
            {'cust': 'a', 'items': [{'sku': 'x', 'qty': 2}, {'sku': 'y', 'qty': 1}]},
            {'cust': 'b', 'items': [{'sku': 'x', 'qty': 5}]}
        }}"#,
        )
        .unwrap();
    check(
        &engine,
        "SELECT i.sku AS sku, o.cust AS cust, \
                RANK() OVER (PARTITION BY i.sku ORDER BY i.qty DESC) AS qty_rank, \
                [i.qty, SUM(i.qty) OVER (PARTITION BY i.sku)] AS qty_and_total \
         FROM orders AS o, o.items AS i",
        r#"{{
            {'sku': 'x', 'cust': 'b', 'qty_rank': 1, 'qty_and_total': [5, 7]},
            {'sku': 'x', 'cust': 'a', 'qty_rank': 2, 'qty_and_total': [2, 7]},
            {'sku': 'y', 'cust': 'a', 'qty_rank': 1, 'qty_and_total': [1, 1]}
        }}"#,
    );
}

#[test]
fn window_in_order_by_via_alias() {
    let engine = engine();
    let r = engine
        .query(
            "SELECT e.name AS name, \
                    RANK() OVER (ORDER BY e.sal DESC) AS rk \
             FROM emp AS e ORDER BY rk, name LIMIT 3",
        )
        .unwrap();
    let names: Vec<&str> = r
        .rows()
        .iter()
        .map(|t| t.path("name").as_str().unwrap().to_string())
        .map(|s| Box::leak(s.into_boxed_str()) as &str)
        .collect();
    assert_eq!(names, vec!["Ann", "Di", "Bo"]);
}

#[test]
fn identical_windows_are_computed_once() {
    let engine = engine();
    let plan = engine
        .explain(
            "SELECT SUM(e.sal) OVER (PARTITION BY e.dept) AS a, \
                    SUM(e.sal) OVER (PARTITION BY e.dept) AS b \
             FROM emp AS e",
        )
        .unwrap();
    assert_eq!(
        plan.matches("$win").count(),
        3,
        "one def, two refs:\n{plan}"
    );
}

#[test]
fn windows_are_rejected_outside_select_and_order_by() {
    let engine = engine();
    let err = engine
        .query("SELECT VALUE e FROM emp AS e WHERE RANK() OVER (ORDER BY e.sal) = 1")
        .unwrap_err();
    assert!(err.to_string().contains("window"), "{err}");
}

#[test]
fn ranking_functions_require_order() {
    let engine = engine();
    let err = engine
        .query("SELECT ROW_NUMBER() OVER () AS rn FROM emp AS e")
        .unwrap_err();
    assert!(err.to_string().contains("ORDER BY"), "{err}");
}

#[test]
fn windows_over_grouped_queries() {
    // Aggregates feed windows: rank departments by their totals.
    let engine = engine();
    check(
        &engine,
        "SELECT e.dept, SUM(e.sal) AS total, \
                RANK() OVER (ORDER BY SUM(e.sal) DESC) AS rk \
         FROM emp AS e GROUP BY e.dept",
        r#"{{
            {'dept': 'eng', 'total': 260, 'rk': 1},
            {'dept': 'ops', 'total': 150, 'rk': 2}
        }}"#,
    );
}

#[test]
fn absent_values_sort_and_aggregate_consistently_in_windows() {
    let engine = Engine::new();
    engine
        .load_pnotation(
            "t",
            "{{ {'k': 1, 'v': 10}, {'k': 2, 'v': null}, {'k': 3} }}",
        )
        .unwrap();
    let r = engine
        .query(
            "SELECT t.k AS k, COUNT(t.v) OVER () AS present \
             FROM t AS t",
        )
        .unwrap();
    for row in r.rows() {
        assert_eq!(row.path("present"), Value::Int(1), "{row}");
    }
}
