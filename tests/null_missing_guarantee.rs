//! The §IV-B compatibility guarantee, as a property:
//!
//! > "Given a working SQL query q over a collection d that has null values
//! > and a collection d′ where some nulls have been replaced with missing
//! > attributes, the SQL++ query q will deliver the same result q(d′) as
//! > the SQL result q(d), except that some attributes that would have
//! > null values in q(d) will be simply missing in q(d′)."
//!
//! We generate random flat data with NULLs, derive d′ by deleting
//! null-valued attributes, run a family of SQL queries over both, and
//! compare after erasing the null/missing distinction.

use sqlpp::Engine;
use sqlpp_testkit::{gen, prop_assert, sqlpp_prop, Gen};
use sqlpp_value::cmp::deep_eq;
use sqlpp_value::{Tuple, Value};

/// Erases the distinction the guarantee allows: within tuples, drop
/// null-valued attributes (so "null attribute" ≡ "absent attribute"),
/// recursively.
fn erase(v: &Value) -> Value {
    match v {
        Value::Tuple(t) => {
            let mut out = Tuple::new();
            for (name, value) in t.iter() {
                if value.is_absent() {
                    continue;
                }
                out.insert(name, erase(value));
            }
            Value::Tuple(out)
        }
        Value::Bag(items) => Value::Bag(items.iter().map(erase).collect()),
        Value::Array(items) => Value::Array(items.iter().map(erase).collect()),
        other => other.clone(),
    }
}

/// Replaces null-valued attributes by attribute absence: d → d′.
fn nulls_to_missing(v: &Value) -> Value {
    match v {
        Value::Tuple(t) => {
            let mut out = Tuple::new();
            for (name, value) in t.iter() {
                if value.is_null() {
                    continue; // the attribute simply isn't there in d′
                }
                out.insert(name, nulls_to_missing(value));
            }
            Value::Tuple(out)
        }
        Value::Bag(items) => Value::Bag(items.iter().map(nulls_to_missing).collect()),
        Value::Array(items) => Value::Array(items.iter().map(nulls_to_missing).collect()),
        other => other.clone(),
    }
}

fn arb_row() -> Gen<Value> {
    gen::triple(
        gen::i64_range(0..40),
        gen::one_of(vec![
            gen::just(Value::Null),
            gen::i64_range(0..5000).map(Value::Int),
        ]),
        gen::one_of(vec![
            gen::just(Value::Null),
            gen::char_string('A'..='D', 1..=1).map(Value::Str),
        ]),
    )
    .map(|(id, sal, grade)| {
        let mut t = Tuple::new();
        t.insert("id", Value::Int(id));
        t.insert("sal", sal);
        t.insert("grade", grade);
        Value::Tuple(t)
    })
}

/// Working SQL queries over (id, sal, grade).
fn queries() -> Vec<&'static str> {
    vec![
        "SELECT e.id, e.sal AS sal FROM d AS e",
        "SELECT e.id, e.grade AS grade FROM d AS e WHERE e.sal > 1000",
        "SELECT e.id FROM d AS e WHERE e.grade = 'A'",
        "SELECT e.id FROM d AS e WHERE e.sal IS NULL",
        "SELECT e.grade AS grade, COUNT(*) AS n FROM d AS e GROUP BY e.grade",
        "SELECT e.grade AS grade, AVG(e.sal) AS avg_sal FROM d AS e GROUP BY e.grade",
        "SELECT VALUE COALESCE(e.sal, 0) FROM d AS e",
        "SELECT e.id, CASE WHEN e.sal > 2500 THEN 'hi' ELSE 'lo' END AS band \
         FROM d AS e",
        "SELECT COUNT(e.sal) AS n, SUM(e.sal) AS s FROM d AS e",
    ]
}

sqlpp_prop! {
    #![config(cases = 48)]

    fn null_to_missing_substitution_is_invisible_to_sql(
        rows in gen::vec_of(arb_row(), 0..=15)
    ) {
        let d = Value::Bag(rows);
        let d_prime = nulls_to_missing(&d);

        let with_nulls = Engine::new();
        with_nulls.register("d", d);
        let with_missing = Engine::new();
        with_missing.register("d", d_prime);

        for q in queries() {
            let r_null = with_nulls.query(q)
                .unwrap_or_else(|e| panic!("q(d) failed for {q}: {e}"))
                .into_value();
            let r_missing = with_missing.query(q)
                .unwrap_or_else(|e| panic!("q(d') failed for {q}: {e}"))
                .into_value();
            let (a, b) = (erase(&r_null), erase(&r_missing));
            prop_assert!(
                deep_eq(&a, &b),
                "guarantee violated for {q}\n  q(d)  erased: {a}\n  q(d') erased: {b}\n  raw q(d):  {r_null}\n  raw q(d'): {r_missing}"
            );
        }
    }
}

#[test]
fn the_papers_own_example_pair() {
    // emp_null (Listing 6) vs emp_missing (Listing 7), Listing 8's query.
    let with_nulls = Engine::new();
    with_nulls
        .load_pnotation("hr.emps", sqlpp_compat_kit::corpus::EMP_NULL)
        .unwrap();
    let with_missing = Engine::new();
    with_missing
        .load_pnotation("hr.emps", sqlpp_compat_kit::corpus::EMP_MISSING)
        .unwrap();
    let q = "SELECT e.id, e.name AS emp_name, e.title AS title \
             FROM hr.emps AS e WHERE e.title = 'Manager'";
    let a = with_nulls.query(q).unwrap().into_value();
    let b = with_missing.query(q).unwrap().into_value();
    assert!(deep_eq(&erase(&a), &erase(&b)));
}
