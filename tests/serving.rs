//! End-to-end serving tests: real TCP connections against [`Server`],
//! covering the wire round trip, parameters, DML visibility through the
//! shared catalog, the cache/epoch staleness invariant, structured
//! shedding, error diagnostics, and a threaded chaos storm (concurrent
//! readers + failing and succeeding DML + budget-tripped queries) after
//! which the schema-guarded collection must be byte-identical and the
//! server must have caught zero panics.

use std::time::Duration;

use sqlpp::{Engine, Limits, SessionConfig, SpillConfig};
use sqlpp_server::{wire::Response, Client, Server, ServerConfig};
use sqlpp_value::Value;

fn fixture() -> Engine {
    let engine = Engine::new();
    engine
        .load_pnotation(
            "emp",
            "{{ {'id': 1, 'name': 'Ann', 'sal': 90, 'dept': 'eng'},
                {'id': 2, 'name': 'Bo',  'sal': 70, 'dept': 'eng'},
                {'id': 3, 'name': 'Cy',  'sal': 40, 'dept': 'ops'} }}",
        )
        .unwrap();
    engine
}

fn rows(resp: Response) -> Value {
    match resp {
        Response::Rows(v) => v,
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn query_round_trip_over_tcp() {
    let server = Server::start(fixture(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let v = rows(
        client
            .query("SELECT VALUE e.name FROM emp AS e WHERE e.sal > 50 ORDER BY e.name")
            .unwrap(),
    );
    assert_eq!(v.to_string(), "{{'Ann', 'Bo'}}");
    assert_eq!(server.stats().served, 1);
    server.shutdown();
}

#[test]
fn positional_params_round_trip() {
    let server = Server::start(fixture(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let v = rows(
        client
            .query_with_params(
                "SELECT VALUE e.name FROM emp AS e WHERE e.sal > ? AND e.dept = ?",
                vec![Value::Int(50), Value::Str("eng".into())],
            )
            .unwrap(),
    );
    assert_eq!(v.to_string(), "{{'Ann', 'Bo'}}");
    // The same (cached) plan with different parameters.
    let v = rows(
        client
            .query_with_params(
                "SELECT VALUE e.name FROM emp AS e WHERE e.sal > ? AND e.dept = ?",
                vec![Value::Int(0), Value::Str("ops".into())],
            )
            .unwrap(),
    );
    assert_eq!(v.to_string(), "{{'Cy'}}");
    assert!(server.cache_stats().hits >= 1, "second request should hit");
    server.shutdown();
}

#[test]
fn dml_through_the_server_is_visible_to_the_shared_catalog() {
    let engine = fixture();
    let server = Server::start(engine.clone(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let v = rows(
        client
            .query("INSERT INTO emp VALUE {'id': 9, 'name': 'Zed', 'sal': 10, 'dept': 'hr'}")
            .unwrap(),
    );
    assert_eq!(v.to_string(), "{'inserted': 1}");
    // Visible on the caller's engine handle (one catalog, many views)…
    let local = engine.query("SELECT VALUE COUNT(*) FROM emp AS e").unwrap();
    assert_eq!(local.canonical().to_string(), "{{4}}");
    // …and to the next request on the wire.
    let v = rows(client.query("SELECT VALUE COUNT(*) FROM emp AS e").unwrap());
    assert_eq!(v.to_string(), "{{4}}");
    server.shutdown();
}

/// The headline regression writ large: a plan cached by the server must
/// not survive a schema change. The second request re-keys on the new
/// epoch, re-plans, and sees the new disambiguation — stale entries are
/// purged, never served.
#[test]
fn cached_plans_do_not_outlive_schema_changes() {
    let load = |engine: &Engine, name: &str, text: &str| {
        let v = sqlpp_formats::pnotation::from_pnotation(text).unwrap();
        let ty = sqlpp_schema::infer_collection(&v).unwrap();
        engine.register_with_schema(name, v, &ty).unwrap();
    };
    let engine = Engine::new();
    load(&engine, "a", "{{ {'name': 'from_a'} }}");
    load(&engine, "b", "{{ {'bname': 'from_b'} }}");

    let server = Server::start(engine.clone(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // §III schema-based disambiguation: only `a` has `name`, so the
    // unqualified reference resolves to it. Ask twice — the second
    // answer comes off the plan cache.
    let q = "SELECT VALUE name FROM a AS a, b AS b";
    assert_eq!(rows(client.query(q).unwrap()).to_string(), "{{'from_a'}}");
    assert_eq!(rows(client.query(q).unwrap()).to_string(), "{{'from_a'}}");
    assert!(server.cache_stats().hits >= 1);

    // The schema moves underneath the server: `b` renames its attribute
    // to `name`, `a` loses it.
    load(&engine, "a", "{{ {'aname': 'from_a'} }}");
    load(&engine, "b", "{{ {'name': 'from_b'} }}");

    // Same text, same connection: the cached plan is stale now, and the
    // epoch key forbids serving it.
    assert_eq!(rows(client.query(q).unwrap()).to_string(), "{{'from_b'}}");
    server.shutdown();
}

#[test]
fn admission_shedding_is_a_structured_response() {
    let server = Server::start(
        fixture(),
        ServerConfig {
            workers: 1,
            max_pending: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    for _ in 0..3 {
        let mut client = Client::connect(server.addr()).unwrap();
        match client.query("SELECT VALUE e.id FROM emp AS e") {
            Ok(Response::Overloaded { message }) => {
                assert!(message.contains("admission"), "{message}")
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
    }
    assert!(server.stats().shed_connections >= 3);
    server.shutdown();
}

#[test]
fn budget_trips_shed_the_request_but_not_the_session() {
    let server = Server::start(
        fixture(),
        ServerConfig {
            session: SessionConfig {
                limits: Limits::none().with_memory_rows(2),
                ..SessionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query("SELECT VALUE e.sal FROM emp AS e ORDER BY e.sal") {
        Ok(Response::Overloaded { message }) => {
            assert!(message.contains("memory budget"), "{message}")
        }
        other => panic!("expected budget shed, got {other:?}"),
    }
    // Same connection, cheap query: still served.
    let v = rows(
        client
            .query("SELECT VALUE e.id FROM emp AS e WHERE e.id = 1")
            .unwrap(),
    );
    assert_eq!(v.to_string(), "{{1}}");
    let stats = server.stats();
    assert_eq!(stats.shed_requests, 1);
    assert_eq!(stats.errors, 0, "a budget trip is shedding, not an error");
    server.shutdown();
}

/// A session whose byte budget is far too small for the sort still
/// completes when spilling is enabled — the breaker overflows to temp
/// files instead of shedding — and the answer is the same one an
/// unconstrained session gives.
#[test]
fn spilling_sessions_complete_over_budget_queries() {
    let engine = Engine::new();
    let rows_txt: Vec<String> = (0..200)
        .map(|i| format!("{{'id': {}, 'k': {}}}", i, (i * 67) % 200))
        .collect();
    engine
        .load_pnotation("big", &format!("{{{{ {} }}}}", rows_txt.join(", ")))
        .unwrap();
    let q = "SELECT VALUE b.id FROM big AS b ORDER BY b.k, b.id";
    let expected = engine.query(q).unwrap().into_value().to_string();

    let server = Server::start(
        engine,
        ServerConfig {
            session: SessionConfig {
                limits: Limits::none().with_memory_bytes(2_000),
                spill: Some(SpillConfig::default()),
                ..SessionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(rows(client.query(q).unwrap()).to_string(), expected);
    assert_eq!(server.stats().shed_requests, 0);
    server.shutdown();
}

/// The spill-bytes cap is the session's second line of defense: a query
/// that would write more temp-file bytes than the session allows sheds
/// with a structured `Overloaded`, and the connection stays usable.
#[test]
fn spill_budget_trips_shed_like_memory_budgets() {
    let engine = Engine::new();
    let rows_txt: Vec<String> = (0..200)
        .map(|i| format!("{{'id': {}, 'k': {}}}", i, (i * 67) % 200))
        .collect();
    engine
        .load_pnotation("big", &format!("{{{{ {} }}}}", rows_txt.join(", ")))
        .unwrap();
    let server = Server::start(
        engine,
        ServerConfig {
            session: SessionConfig {
                limits: Limits::none().with_memory_bytes(2_000).with_spill_bytes(64),
                spill: Some(SpillConfig::default()),
                ..SessionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query("SELECT VALUE b.id FROM big AS b ORDER BY b.k, b.id") {
        Ok(Response::Overloaded { message }) => {
            assert!(message.contains("spill budget"), "{message}")
        }
        other => panic!("expected spill-budget shed, got {other:?}"),
    }
    // Same connection, cheap query: still served.
    let v = rows(
        client
            .query("SELECT VALUE b.id FROM big AS b WHERE b.id = 1")
            .unwrap(),
    );
    assert_eq!(v.to_string(), "{{1}}");
    assert_eq!(server.stats().errors, 0, "a spill cap trip is shedding");
    server.shutdown();
}

#[test]
fn errors_carry_code_and_diagnostics() {
    let server = Server::start(fixture(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query("SELECT VALUE FROM WHERE").unwrap() {
        Response::Error {
            code, diagnostics, ..
        } => {
            assert_eq!(code, "syntax");
            assert!(!diagnostics.is_empty(), "syntax errors must carry spans");
            assert!(diagnostics[0].end >= diagnostics[0].start);
        }
        other => panic!("expected error, got {other:?}"),
    }
    // An expired deadline surfaces as shedding (the governor refused),
    // not as an error.
    let deadline = Server::start(
        fixture(),
        ServerConfig {
            session: SessionConfig {
                limits: Limits::none().with_time(Duration::ZERO),
                ..SessionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c2 = Client::connect(deadline.addr()).unwrap();
    match c2.query("SELECT VALUE e.id FROM emp AS e").unwrap() {
        Response::Overloaded { .. } => {}
        other => panic!("expected deadline shed, got {other:?}"),
    }
    deadline.shutdown();
    server.shutdown();
}

/// The threaded chaos storm. One engine, two servers over its catalog
/// (one unlimited, one with a 2-row budget), and three kinds of client
/// hammering them concurrently:
///
/// * readers running joins/aggregates (some through the plan cache),
/// * writers — failing DML against a schema-guarded table and three
///   threads of succeeding DML racing on one open collection,
/// * budget clients whose sorts always trip the 2-row budget.
///
/// Afterwards: the guarded table is byte-identical (every bad insert
/// refused atomically, under full concurrency), the open table holds
/// exactly the successful inserts (no lost updates between concurrent
/// writers), zero panics were caught, and both servers still answer.
#[test]
fn threaded_chaos_storm_preserves_catalog_integrity() {
    let engine = fixture();
    engine
        .execute("CREATE TABLE guarded (id INT, label STRING)")
        .unwrap();
    engine
        .execute("INSERT INTO guarded VALUE {'id': 1, 'label': 'seed'}")
        .unwrap();
    engine.register("events", Value::Bag(Vec::new()));
    let guarded_before = engine
        .query("SELECT VALUE g FROM guarded AS g")
        .unwrap()
        .canonical()
        .to_string();

    let main = Server::start(engine.clone(), ServerConfig::default()).unwrap();
    let budgeted = Server::start(
        engine.clone(),
        ServerConfig {
            session: SessionConfig {
                limits: Limits::none().with_memory_rows(2),
                ..SessionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();

    const PER_THREAD: usize = 30;
    let main_addr = main.addr();
    let budget_addr = budgeted.addr();
    let mut handles = Vec::new();

    // Readers: mixed shapes, repeated, so the shared cache is hot while
    // DML churns the data underneath.
    for t in 0..3 {
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(main_addr).unwrap();
            for i in 0..PER_THREAD {
                let q = match (t + i) % 3 {
                    0 => "SELECT e.dept AS dept, COUNT(*) AS n FROM emp AS e GROUP BY e.dept",
                    1 => "SELECT VALUE e.name FROM emp AS e ORDER BY e.sal DESC",
                    _ => "SELECT DISTINCT VALUE e.dept FROM emp AS e",
                };
                match c.query(q).unwrap() {
                    Response::Rows(_) => {}
                    other => panic!("reader {t} failed: {other:?}"),
                }
            }
        }));
    }
    // Failing writers: schema violations, refused atomically every time.
    for t in 0..2 {
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(main_addr).unwrap();
            for i in 0..PER_THREAD {
                let q =
                    format!("INSERT INTO guarded VALUE {{'id': {i}, 'label': 'x', 'oops': {t}}}");
                match c.query(&q).unwrap() {
                    Response::Error { code, .. } => assert_eq!(code, "schema"),
                    other => panic!("bad insert was not refused: {other:?}"),
                }
            }
        }));
    }
    // Succeeding writers: open table, every insert lands. Three of
    // them racing on one collection is the lost-update canary — without
    // the catalog's DML guard, concurrent snapshot-and-replace commits
    // silently drop each other's rows.
    for t in 0..3 {
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(main_addr).unwrap();
            for i in 0..PER_THREAD {
                let q = format!("INSERT INTO events VALUE {{'w': {t}, 'seq': {i}}}");
                match c.query(&q).unwrap() {
                    Response::Rows(_) => {}
                    other => panic!("good insert failed: {other:?}"),
                }
            }
        }));
    }
    // Budget clients: every sort trips the 2-row budget — shed, never an
    // error, and the session keeps being served.
    for _ in 0..2 {
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(budget_addr).unwrap();
            for _ in 0..PER_THREAD {
                match c
                    .query("SELECT VALUE e.sal FROM emp AS e ORDER BY e.sal")
                    .unwrap()
                {
                    Response::Overloaded { .. } => {}
                    other => panic!("budget query was not shed: {other:?}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("chaos client panicked");
    }

    // The guarded table survived every concurrent violation bytewise.
    let guarded_after = engine
        .query("SELECT VALUE g FROM guarded AS g")
        .unwrap()
        .canonical()
        .to_string();
    assert_eq!(guarded_before, guarded_after);
    // The open table holds exactly the successful inserts — none lost
    // to a concurrent writer's commit.
    let n = engine
        .query("SELECT VALUE COUNT(*) FROM events AS e")
        .unwrap();
    assert_eq!(
        n.canonical().to_string(),
        format!("{{{{{}}}}}", 3 * PER_THREAD)
    );
    // Nothing panicked, and refusals were classified as shedding.
    assert_eq!(main.stats().panics, 0);
    assert_eq!(budgeted.stats().panics, 0);
    assert_eq!(budgeted.stats().shed_requests, 2 * PER_THREAD as u64);
    // Both servers still answer.
    let mut c = Client::connect(main.addr()).unwrap();
    rows(
        c.query("SELECT VALUE e.id FROM emp AS e WHERE e.id = 1")
            .unwrap(),
    );
    let mut c = Client::connect(budgeted.addr()).unwrap();
    rows(c.query("SELECT VALUE g.id FROM guarded AS g").unwrap());
    budgeted.shutdown();
    main.shutdown();
}
