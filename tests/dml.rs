//! INSERT / DELETE / UPDATE over named collections, including schema
//! enforcement on writes and SQL++ three-valued predicate semantics.

use sqlpp::{Engine, ExecOutcome};
use sqlpp_value::Value;

fn engine() -> Engine {
    let engine = Engine::new();
    engine
        .load_pnotation(
            "emp",
            "{{ {'id': 1, 'name': 'Ann', 'sal': 90},
                {'id': 2, 'name': 'Bo', 'sal': 70},
                {'id': 3, 'name': 'Cy'} }}",
        )
        .unwrap();
    engine
}

fn count(engine: &Engine, name: &str) -> usize {
    engine
        .query(&format!(
            "SELECT VALUE COLL_COUNT(SELECT VALUE x FROM {name} AS x)"
        ))
        .unwrap()
        .rows()[0]
        .as_int()
        .unwrap() as usize
}

#[test]
fn insert_value_appends_one_element() {
    let engine = engine();
    let outcome = engine
        .execute("INSERT INTO emp VALUE {'id': 4, 'name': 'Di', 'sal': 100}")
        .unwrap();
    assert!(matches!(outcome, ExecOutcome::Inserted { count: 1 }));
    assert_eq!(count(&engine, "emp"), 4);
    let r = engine
        .query("SELECT VALUE e.name FROM emp AS e WHERE e.id = 4")
        .unwrap();
    assert_eq!(r.canonical().to_string(), "{{'Di'}}");
}

#[test]
fn insert_query_appends_many() {
    let engine = engine();
    let outcome = engine
        .execute(
            "INSERT INTO arch SELECT VALUE {'id': e.id, 'was': e.sal} \
             FROM emp AS e WHERE e.sal >= 70",
        )
        .unwrap();
    assert!(matches!(outcome, ExecOutcome::Inserted { count: 2 }));
    // Target did not exist: created as a bag.
    assert_eq!(count(&engine, "arch"), 2);
}

#[test]
fn delete_respects_three_valued_logic() {
    let engine = engine();
    // Cy has no sal: predicate is MISSING → NOT deleted.
    let outcome = engine
        .execute("DELETE FROM emp AS e WHERE e.sal < 80")
        .unwrap();
    assert!(
        matches!(outcome, ExecOutcome::Deleted { count: 1 }),
        "{outcome:?}"
    );
    let left = engine.query("SELECT VALUE e.name FROM emp AS e").unwrap();
    assert_eq!(left.canonical().to_string(), "{{'Ann', 'Cy'}}");
}

#[test]
fn delete_without_where_empties_the_collection() {
    let engine = engine();
    let outcome = engine.execute("DELETE FROM emp").unwrap();
    assert!(matches!(outcome, ExecOutcome::Deleted { count: 3 }));
    assert_eq!(count(&engine, "emp"), 0);
}

#[test]
fn update_sets_and_creates_attributes() {
    let engine = engine();
    let outcome = engine
        .execute(
            "UPDATE emp AS e SET e.sal = e.sal + 10, e.band = 'senior' \
             WHERE e.sal >= 80",
        )
        .unwrap();
    assert!(matches!(outcome, ExecOutcome::Updated { count: 1 }));
    let r = engine
        .query("SELECT e.sal AS sal, e.band AS band FROM emp AS e WHERE e.id = 1")
        .unwrap();
    assert_eq!(
        r.canonical().to_string(),
        "{{{'sal': 100, 'band': 'senior'}}}"
    );
    // Untouched rows keep their shape (Cy still has no sal).
    let cy = engine
        .query("SELECT VALUE e.sal IS MISSING FROM emp AS e WHERE e.id = 3")
        .unwrap();
    assert_eq!(cy.canonical().to_string(), "{{true}}");
}

#[test]
fn update_rhs_sees_the_old_row() {
    let engine = Engine::new();
    engine
        .load_pnotation("t", "{{ {'a': 1, 'b': 10} }}")
        .unwrap();
    // Swap via old values, SQL-style: both RHS evaluate before writes.
    engine.execute("UPDATE t SET t.a = t.b, t.b = t.a").unwrap();
    let r = engine.query("SELECT VALUE t FROM t AS t").unwrap();
    assert_eq!(r.canonical().to_string(), "{{{'a': 10, 'b': 1}}}");
}

#[test]
fn update_missing_removes_the_attribute() {
    let engine = engine();
    engine
        .execute("UPDATE emp AS e SET e.sal = MISSING WHERE e.id = 1")
        .unwrap();
    let r = engine
        .query("SELECT VALUE e.sal IS MISSING FROM emp AS e WHERE e.id = 1")
        .unwrap();
    assert_eq!(r.canonical().to_string(), "{{true}}");
}

#[test]
fn update_nested_path_creates_intermediate_tuples() {
    let engine = engine();
    engine
        .execute("UPDATE emp AS e SET e.contact.city = 'Oslo' WHERE e.id = 2")
        .unwrap();
    let r = engine
        .query("SELECT VALUE e.contact.city FROM emp AS e WHERE e.id = 2")
        .unwrap();
    assert_eq!(r.canonical().to_string(), "{{'Oslo'}}");
}

#[test]
fn schema_is_enforced_on_writes() {
    let engine = Engine::new();
    engine
        .execute("CREATE TABLE typed (id INT, label STRING)")
        .unwrap();
    // Conforming insert works (columns are nullable per SQL).
    engine
        .execute("INSERT INTO typed VALUE {'id': 1, 'label': 'ok'}")
        .unwrap();
    // Extra attribute → closed-tuple violation.
    let err = engine
        .execute("INSERT INTO typed VALUE {'id': 2, 'label': 'x', 'oops': true}")
        .unwrap_err();
    assert!(err.to_string().contains("schema"), "{err}");
    // Wrong type through UPDATE is rejected too, atomically.
    let err = engine
        .execute("UPDATE typed SET typed.id = 'not an int'")
        .unwrap_err();
    assert!(err.to_string().contains("schema"), "{err}");
    // The collection is unchanged after the failed update.
    let r = engine.query("SELECT VALUE t.id FROM typed AS t").unwrap();
    assert_eq!(r.canonical().to_string(), "{{1}}");
}

#[test]
fn dml_errors_are_clear() {
    let engine = engine();
    engine.register("scalar", Value::Int(7));
    assert!(engine
        .execute("INSERT INTO scalar VALUE 1")
        .unwrap_err()
        .to_string()
        .contains("not a collection"));
    assert!(engine
        .execute("DELETE FROM nowhere")
        .unwrap_err()
        .to_string()
        .contains("not bound"));
    assert!(engine
        .execute("UPDATE emp AS e SET e = 1")
        .unwrap_err()
        .to_string()
        .contains("attribute"));
}

#[test]
fn dml_statements_round_trip_through_the_printer() {
    for src in [
        "INSERT INTO hr.emp VALUE {'id': 9}",
        "INSERT INTO hr.emp SELECT VALUE x FROM other AS x",
        "DELETE FROM hr.emp AS e WHERE e.id = 1",
        "UPDATE hr.emp AS e SET e.sal = 0, e.flag = TRUE WHERE e.id = 2",
    ] {
        let s1 = sqlpp_syntax::parse_statement(src).unwrap();
        let printed = sqlpp_syntax::print_statement(&s1);
        let s2 =
            sqlpp_syntax::parse_statement(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(s1, s2, "{printed}");
    }
}

// ======================================================================
// Atomicity under mid-statement failure (ISSUE 5 satellite): every DML
// statement computes its complete replacement value before the single
// `commit_collection` publish point, so a failure part-way through —
// strict-mode type error, governed budget refusal, injected fault —
// must leave the target collection exactly as it was.
// ======================================================================

/// The collection rendered for byte-compare (raw stored order, no
/// canonicalization: atomicity means the *stored* value is untouched).
fn stored(engine: &Engine, name: &str) -> String {
    engine.catalog().get_str(name).unwrap().to_string()
}

fn strict(engine: &Engine) -> Engine {
    engine.with_config(sqlpp::SessionConfig {
        typing: sqlpp::TypingMode::StrictError,
        ..sqlpp::SessionConfig::default()
    })
}

/// A fixture where the *last* row poisons arithmetic/comparisons, so a
/// strict-mode statement fails only after earlier rows were processed.
fn poisoned() -> Engine {
    let engine = Engine::new();
    engine
        .load_pnotation(
            "acct",
            "{{ {'id': 1, 'bal': 100}, {'id': 2, 'bal': 50}, {'id': 3, 'bal': 'frozen'} }}",
        )
        .unwrap();
    engine
}

#[test]
fn failed_update_is_atomic_under_strict_error() {
    let engine = poisoned();
    let before = stored(&engine, "acct");
    // Rows 1 and 2 update fine; row 3 ('frozen' * 2) errors in strict mode.
    let err = strict(&engine)
        .execute("UPDATE acct AS a SET a.bal = a.bal * 2")
        .unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
    assert_eq!(stored(&engine, "acct"), before, "partial update leaked");
}

#[test]
fn failed_delete_is_atomic_under_strict_error() {
    let engine = poisoned();
    let before = stored(&engine, "acct");
    // The predicate errors on row 3 after row 1 already matched.
    let err = strict(&engine)
        .execute("DELETE FROM acct AS a WHERE a.bal > 60")
        .unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
    assert_eq!(stored(&engine, "acct"), before, "partial delete leaked");
}

#[test]
fn failed_insert_is_atomic_under_strict_error() {
    let engine = poisoned();
    let before = stored(&engine, "acct");
    let err = strict(&engine)
        .execute("INSERT INTO acct SELECT VALUE {'id': a.id + 10, 'bal': a.bal + 1} FROM acct AS a")
        .unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
    assert_eq!(stored(&engine, "acct"), before, "partial insert leaked");
}

#[test]
fn failed_insert_is_atomic_under_budget_denial() {
    let engine = engine();
    let before = stored(&engine, "emp");
    // An ORDER BY pipeline breaker over 3 rows with a 1-row budget: the
    // source query is refused mid-materialization, before any append.
    let session = engine.with_config(sqlpp::SessionConfig {
        limits: sqlpp::Limits::none().with_memory_rows(1),
        ..sqlpp::SessionConfig::default()
    });
    let err = session
        .execute(
            "INSERT INTO emp SELECT VALUE {'id': e.id + 10, 'name': e.name} \
             FROM emp AS e ORDER BY e.id",
        )
        .unwrap_err();
    assert!(err.to_string().contains("resource exhausted"), "{err}");
    assert_eq!(
        stored(&engine, "emp"),
        before,
        "budget-denied insert leaked"
    );
}

#[test]
fn failed_dml_is_atomic_under_injected_faults() {
    use sqlpp_testkit::fault::FaultPlan;
    use std::sync::Arc;

    // Sweep the k-th operator-site fault across each statement kind:
    // wherever the statement dies, the collection must be untouched.
    for stmt in [
        "INSERT INTO emp SELECT VALUE {'id': e.id + 10, 'sal': e.sal} FROM emp AS e",
        "DELETE FROM emp AS e WHERE e.sal > 50",
        "UPDATE emp AS e SET e.sal = e.sal + 1 WHERE e.sal >= 70",
    ] {
        for k in 1..=8u64 {
            let engine = engine();
            let before = stored(&engine, "emp");
            let plan = Arc::new(FaultPlan::fail_kth("operator", k));
            let hook = Arc::clone(&plan);
            let session = engine.with_config(sqlpp::SessionConfig {
                fault: Some(sqlpp::FaultInjector::new(move |site| {
                    hook.should_fail(site.name()).then(|| {
                        sqlpp_eval::EvalError::Resource(format!(
                            "injected fault at {}",
                            site.name()
                        ))
                    })
                })),
                ..sqlpp::SessionConfig::default()
            });
            match session.execute(stmt) {
                Ok(_) => assert!(!plan.fired(), "{stmt} k={k}: fired but succeeded"),
                Err(e) => {
                    assert!(
                        e.to_string().contains("injected fault"),
                        "{stmt} k={k}: {e}"
                    );
                    assert_eq!(stored(&engine, "emp"), before, "{stmt} k={k}: leaked");
                }
            }
        }
    }
}
