//! Format independence, end to end (§I tenet 5): the *identical query
//! text* over the same logical data loaded from four different formats
//! produces the same answer.

use sqlpp::Engine;
use sqlpp_formats::{CsvFormat, DataFormat, IonLiteFormat, JsonFormat, PNotationFormat};
use sqlpp_testkit::prop::values::rows_of;
use sqlpp_testkit::{gen, prop_assert_eq, sqlpp_prop, Gen};
use sqlpp_value::{rows, Value};

fn tabular_sample() -> Value {
    rows![
        {"id" => 1i64, "city" => "Oslo", "pop" => 700i64},
        {"id" => 2i64, "city" => "Pune", "pop" => 3100i64},
        {"id" => 3i64, "city" => "Lima", "pop" => Value::Null},
    ]
}

const QUERY: &str = "SELECT c.city AS city FROM cities AS c \
                     WHERE c.pop > 1000 OR c.pop IS NULL";

#[test]
fn identical_query_over_four_formats() {
    let data = tabular_sample();
    let formats: Vec<Box<dyn DataFormat>> = vec![
        Box::new(JsonFormat),
        Box::new(PNotationFormat),
        Box::new(CsvFormat::default()),
        Box::new(IonLiteFormat),
    ];
    let reference = {
        let engine = Engine::new();
        engine.register("cities", data.clone());
        engine.query(QUERY).unwrap().canonical()
    };
    for fmt in formats {
        let bytes = fmt.write(&data).unwrap();
        let engine = Engine::new();
        engine.register("cities", fmt.read(&bytes).unwrap());
        let got = engine.query(QUERY).unwrap().canonical();
        assert_eq!(got, reference, "format {} diverged", fmt.name());
    }
}

#[test]
fn nested_data_round_trips_where_the_format_can_express_it() {
    // JSON / pnotation / ion-lite carry nesting; CSV is excluded (flat).
    let nested = sqlpp_formats::pnotation::from_pnotation(
        "{{ {'id': 1, 'kids': [{'k': 1}, {'k': 2}]}, {'id': 2, 'kids': []} }}",
    )
    .unwrap();
    let q = "SELECT VALUE k.k FROM t AS d, d.kids AS k";
    let reference = {
        let engine = Engine::new();
        engine.register("t", nested.clone());
        engine.query(q).unwrap().canonical()
    };
    let formats: Vec<Box<dyn DataFormat>> = vec![
        Box::new(JsonFormat),
        Box::new(PNotationFormat),
        Box::new(IonLiteFormat),
    ];
    for fmt in formats {
        let bytes = fmt.write(&nested).unwrap();
        let engine = Engine::new();
        engine.register("t", fmt.read(&bytes).unwrap());
        assert_eq!(
            engine.query(q).unwrap().canonical(),
            reference,
            "format {} diverged",
            fmt.name()
        );
    }
}

/// Values expressible in *every* format's common subset: flat tuples of
/// ints/strings/bools (CSV's world).
fn arb_flat_rows() -> Gen<Value> {
    rows_of(
        vec![
            ("n", gen::i64_range(0..1000).map(Value::Int)),
            ("s", gen::char_string('a'..='z', 1..=6).map(Value::Str)),
            ("b", gen::any_bool().map(Value::Bool)),
        ],
        1..=9,
    )
}

sqlpp_prop! {
    #![config(cases = 32)]

    fn all_formats_agree_on_flat_data(data in arb_flat_rows()) {
        let q = "SELECT VALUE t.n FROM t AS t WHERE t.b";
        let reference = {
            let engine = Engine::new();
            engine.register("t", data.clone());
            engine.query(q).unwrap().canonical()
        };
        let formats: Vec<Box<dyn DataFormat>> = vec![
            Box::new(JsonFormat),
            Box::new(PNotationFormat),
            Box::new(CsvFormat::default()),
            Box::new(IonLiteFormat),
        ];
        for fmt in formats {
            let bytes = fmt.write(&data).unwrap();
            let engine = Engine::new();
            engine.register("t", fmt.read(&bytes).unwrap());
            prop_assert_eq!(
                engine.query(q).unwrap().canonical(),
                reference.clone(),
                "format {} diverged", fmt.name()
            );
        }
    }
}
