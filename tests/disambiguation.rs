//! §III schema-based disambiguation: "In SQL, the presence of schema
//! allows this form of static disambiguation […] if schema is available,
//! then SQL++ also allows expressions that are disambiguated using the
//! schema."
//!
//! With a schema attached, `SELECT name FROM emp` works — the planner
//! rewrites `name` to `e.name`. Without one, explicit variables are
//! required (the Core rule).

use sqlpp::Engine;
use sqlpp_schema::{infer_collection, SqlppType, TupleType};
use sqlpp_value::Value;

fn data() -> Value {
    sqlpp_formats::pnotation::from_pnotation(
        "{{ {'name': 'Ann', 'salary': 90}, {'name': 'Bo', 'salary': 70} }}",
    )
    .unwrap()
}

fn schemaful_engine() -> Engine {
    let engine = Engine::new();
    let d = data();
    let elem = infer_collection(&d).unwrap();
    engine.register_with_schema("emp", d, &elem).unwrap();
    engine
}

#[test]
fn bare_identifiers_resolve_through_the_schema() {
    let engine = schemaful_engine();
    let r = engine
        .query("SELECT name, salary FROM emp AS e WHERE salary > 80")
        .unwrap();
    assert_eq!(
        r.canonical().to_string(),
        "{{{'name': 'Ann', 'salary': 90}}}"
    );
}

#[test]
fn explain_shows_the_rewritten_variables() {
    // "disambiguation results in the rewriting of the user-provided SQL++
    // query into a SQL++ Core query that explicitly denotes the
    // variables that were omitted" — visible in EXPLAIN.
    let engine = schemaful_engine();
    let plan = engine.explain("SELECT name FROM emp AS e").unwrap();
    assert!(plan.contains("e.name"), "{plan}");
}

#[test]
fn without_schema_bare_identifiers_fall_back_dynamically_or_fail() {
    let engine = Engine::new();
    engine.register("emp", data());
    // No schema: `salary` is not statically resolvable. The documented
    // dynamic fallback (unique tuple attribute at runtime) still finds it.
    let r = engine
        .query("SELECT e.name AS name FROM emp AS e WHERE salary > 80")
        .unwrap();
    assert_eq!(r.len(), 1);
    // But a name that exists nowhere is an error, not silence.
    let err = engine
        .query("SELECT e.name AS name FROM emp AS e WHERE bogus > 80")
        .unwrap_err();
    assert!(err.to_string().contains("bogus"), "{err}");
}

#[test]
fn ambiguous_references_are_compile_time_errors() {
    let engine = Engine::new();
    let d = data();
    let elem = infer_collection(&d).unwrap();
    engine
        .register_with_schema("emp_a", d.clone(), &elem)
        .unwrap();
    engine.register_with_schema("emp_b", d, &elem).unwrap();
    let err = engine
        .query("SELECT name FROM emp_a AS a, emp_b AS b")
        .unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
    assert!(err.to_string().contains("a, b"), "{err}");
}

#[test]
fn in_scope_variables_beat_disambiguation() {
    // A variable literally named `salary` shadows the schema attribute.
    let engine = schemaful_engine();
    let r = engine
        .query("SELECT VALUE salary FROM emp AS e, [1000] AS salary")
        .unwrap();
    assert_eq!(r.canonical().to_string(), "{{1000, 1000}}");
}

#[test]
fn create_table_attaches_its_declared_schema() {
    let engine = Engine::new();
    engine
        .execute("CREATE TABLE t (id INT, label STRING)")
        .unwrap();
    // The empty table is queryable with bare column names right away.
    let r = engine.query("SELECT id, label FROM t AS r").unwrap();
    assert!(r.is_empty());
    // And the schema is retrievable.
    let schema = engine
        .catalog()
        .schema(&sqlpp::Name::parse("t"))
        .expect("schema attached");
    assert!(matches!(&*schema, SqlppType::Tuple(TupleType { fields, .. }) if fields.len() == 2));
}

#[test]
fn query_results_are_stable_under_disambiguation() {
    // The same query written explicitly and via disambiguation agree.
    let engine = schemaful_engine();
    let implicit = engine
        .query("SELECT name FROM emp AS e ORDER BY salary")
        .unwrap();
    let explicit = engine
        .query("SELECT e.name AS name FROM emp AS e ORDER BY e.salary")
        .unwrap();
    assert_eq!(implicit.canonical(), explicit.canonical());
}

#[test]
fn engine_check_reports_schema_guaranteed_anomalies() {
    let engine = schemaful_engine();
    // Clean query: no warnings.
    assert!(engine
        .check("SELECT name FROM emp AS e WHERE salary > 0")
        .is_empty());
    // Navigation the schema rules out — and the warning's span points at
    // the offending attribute in the source text.
    let src = "SELECT VALUE e.bogus FROM emp AS e";
    let w = engine.check(src);
    assert_eq!(w.len(), 1, "{w:?}");
    assert!(w[0].message.contains("bogus"));
    assert_eq!(w[0].code, "W_TYPE");
    assert_eq!(&src[w[0].span.start..w[0].span.end], "bogus");
    // Arithmetic on a string attribute.
    let w = engine.check("SELECT VALUE e.name * 2 FROM emp AS e");
    assert!(
        w.iter().any(|d| d.message.contains("never a number")),
        "{w:?}"
    );
    // Schemaless collections never warn.
    engine.register("loose", sqlpp_value::bag![1i64]);
    assert!(engine
        .check("SELECT VALUE l.anything FROM loose AS l")
        .is_empty());
}
