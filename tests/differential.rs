//! Differential testing: the streaming engine against the Pseudocode 1–2
//! reference evaluator (literal nested loops) on randomly generated data
//! and queries from the SELECT–FROM–WHERE fragment.

use sqlpp::{Catalog, Engine};
use sqlpp_eval::reference::eval_sfw;
use sqlpp_syntax::parse_query;
use sqlpp_testkit::prop::values::small_scalar;
use sqlpp_testkit::{gen, prop_assert, sqlpp_prop, Gen};
use sqlpp_value::cmp::deep_eq;
use sqlpp_value::{Tuple, Value};

/// Random employee-ish tuples: some attributes may be absent, `projects`
/// may be an array of scalars, absent, or (heterogeneity!) a scalar.
fn arb_doc() -> Gen<Value> {
    gen::triple(
        gen::any_i64(),
        gen::option_of(small_scalar()),
        gen::option_of(gen::one_of(vec![
            gen::vec_of(small_scalar(), 0..=3).map(Value::Array),
            small_scalar(),
        ])),
    )
    .map(|(id, title, projects)| {
        let mut t = Tuple::new();
        t.insert("id", Value::Int(id % 50));
        if let Some(title) = title {
            t.insert("title", title);
        }
        if let Some(projects) = projects {
            t.insert("projects", projects);
        }
        Value::Tuple(t)
    })
}

fn arb_collection() -> Gen<Value> {
    gen::vec_of(arb_doc(), 0..=11).map(Value::Bag)
}

/// Queries from the pseudocode fragment, over collection `t`.
fn queries() -> Vec<&'static str> {
    vec![
        "SELECT VALUE e FROM t AS e",
        "SELECT e.id AS id FROM t AS e",
        "SELECT e.id AS id, e.title AS title FROM t AS e",
        "SELECT VALUE e.id FROM t AS e WHERE e.id > 10",
        "SELECT e.id AS id FROM t AS e WHERE e.title = 'a'",
        "SELECT VALUE p FROM t AS e, e.projects AS p",
        "SELECT e.id AS id, p AS p FROM t AS e, e.projects AS p WHERE p IS NOT NULL",
        "SELECT VALUE {'i': e.id, 'p': p} FROM t AS e, e.projects AS p \
         WHERE e.id > 5 AND p IS NOT MISSING",
        "SELECT VALUE e.id + 1 FROM t AS e WHERE e.projects IS ARRAY",
        "SELECT VALUE e FROM t AS e WHERE e.title LIKE 'a%' OR e.id < 0",
    ]
}

sqlpp_prop! {
    #![config(cases = 64)]

    fn engine_matches_pseudocode_reference(data in arb_collection()) {
        let catalog = Catalog::new();
        catalog.set("t", data.clone());
        let engine = Engine::new();
        engine.register("t", data);
        for q in queries() {
            let ast = parse_query(q).expect("query parses");
            let expected = eval_sfw(&ast, &catalog)
                .unwrap_or_else(|e| panic!("reference failed on {q}: {e}"));
            let got = engine
                .query(q)
                .unwrap_or_else(|e| panic!("engine failed on {q}: {e}"))
                .into_value();
            prop_assert!(
                deep_eq(&got, &expected),
                "query {q}\n  reference: {expected}\n  engine:    {got}"
            );
        }
    }
}

#[test]
fn reference_reproduces_pseudocode_1_exactly() {
    // The concrete instance from the paper: Listing 2 over Listing 1.
    let catalog = Catalog::new();
    let data = sqlpp_formats::pnotation::from_pnotation(sqlpp_compat_kit::corpus::EMP_NEST_TUPLES)
        .unwrap();
    catalog.set("hr.emp_nest_tuples", data.clone());
    let ast = parse_query(
        "SELECT e.name AS emp_name, p.name AS proj_name \
         FROM hr.emp_nest_tuples AS e, e.projects AS p \
         WHERE p.name LIKE '%Security%'",
    )
    .unwrap();
    let reference = eval_sfw(&ast, &catalog).unwrap();
    let engine = Engine::new();
    engine.register("hr.emp_nest_tuples", data);
    let engine_result = engine
        .query(
            "SELECT e.name AS emp_name, p.name AS proj_name \
             FROM hr.emp_nest_tuples AS e, e.projects AS p \
             WHERE p.name LIKE '%Security%'",
        )
        .unwrap();
    assert!(engine_result.matches(&reference));
    assert_eq!(engine_result.len(), 3);
}
