//! The streaming executor's observable guarantees: LIMIT/EXISTS/IN
//! short-circuits actually stop the upstream pull (asserted through
//! `rows_scanned`), pipeline breakers are the only buffering points
//! (`peak_live_bindings`), and the lazy pipeline agrees with the
//! materialized Pseudocode 1–2 reference in both typing modes.

use sqlpp::{Engine, SessionConfig, TypingMode};
use sqlpp_eval::reference::{eval_sfw_config, ReferenceError};
use sqlpp_eval::EvalConfig;
use sqlpp_syntax::parse_query;
use sqlpp_testkit::prop::values::small_scalar;
use sqlpp_testkit::{gen, prop_assert, sqlpp_prop, Gen};
use sqlpp_value::{Tuple, Value};

fn ints(n: i64) -> Value {
    Value::Bag((0..n).map(Value::Int).collect())
}

fn engine_with(name: &str, data: Value) -> Engine {
    let engine = Engine::new();
    engine.register(name, data);
    engine
}

/// `LIMIT 0` must not construct its input at all: zero rows pulled.
#[test]
fn limit_zero_pulls_zero_rows() {
    let engine = engine_with("big", ints(1_000));
    let run = engine
        .query_with_stats("SELECT VALUE x FROM big AS x LIMIT 0")
        .unwrap();
    assert_eq!(run.len(), 0);
    let stats = run.stats().expect("stats collection was on");
    assert_eq!(stats.rows_scanned, 0, "LIMIT 0 pulled from its input");
    assert_eq!(stats.peak_live_bindings, 0);
}

/// `LIMIT k` stops the scan after exactly k pulls, without buffering.
#[test]
fn limit_k_scans_exactly_k_rows() {
    let engine = engine_with("big", ints(1_000));
    let run = engine
        .query_with_stats("SELECT VALUE x FROM big AS x LIMIT 3")
        .unwrap();
    assert_eq!(run.len(), 3);
    let stats = run.stats().expect("stats collection was on");
    assert_eq!(stats.rows_scanned, 3, "LIMIT 3 over-pulled the scan");
    assert_eq!(stats.peak_live_bindings, 0, "streaming LIMIT buffered rows");
}

/// OFFSET past the end: an empty result after one full scan — the stream
/// is exhausted looking for row offset+1, never found, and nothing leaks.
#[test]
fn offset_past_end_yields_empty_after_full_scan() {
    let engine = engine_with("small", ints(10));
    let run = engine
        .query_with_stats("SELECT VALUE x FROM small AS x LIMIT 5 OFFSET 100")
        .unwrap();
    assert_eq!(run.len(), 0);
    let stats = run.stats().expect("stats collection was on");
    assert_eq!(stats.rows_scanned, 10, "offset skip must consume the scan");
}

/// EXISTS pulls exactly one row from its subquery, however big the input.
#[test]
fn exists_pulls_one_row() {
    let engine = engine_with("big", ints(1_000));
    let run = engine
        .query_with_stats("SELECT VALUE EXISTS (SELECT VALUE x FROM big AS x) FROM [1] AS one")
        .unwrap();
    let stats = run.stats().expect("stats collection was on");
    assert!(
        stats.rows_scanned <= 2,
        "EXISTS scanned {} rows of its subquery",
        stats.rows_scanned
    );
}

/// IN over a SQL-compat sugar subquery stops scanning at the first
/// match. (A `SELECT VALUE` rhs lowers with bag coercion and stays on
/// the materialized path — only the sugar form streams.)
#[test]
fn in_predicate_stops_at_first_match() {
    let engine = engine_with("big", ints(1_000));
    let run = engine
        .query_with_stats("SELECT VALUE 5 IN (SELECT x FROM big AS x) FROM [1] AS one")
        .unwrap();
    assert!(run.matches(&Value::Bag(vec![Value::Bool(true)])));
    let stats = run.stats().expect("stats collection was on");
    assert!(
        stats.rows_scanned <= 7,
        "IN scanned {} rows past its match at position 6",
        stats.rows_scanned
    );
}

/// Error-position determinism: stop-on-error surfaces the first error in
/// pull order, so a LIMIT that ends the stream *before* the bad row means
/// no error — and a bad row before the quota still fails.
#[test]
fn strict_error_position_is_pull_order_deterministic() {
    let bad_last = Value::Bag(vec![
        Value::Int(1),
        Value::Int(2),
        Value::Str("boom".into()),
    ]);
    let bad_first = Value::Bag(vec![
        Value::Str("boom".into()),
        Value::Int(1),
        Value::Int(2),
    ]);
    let strict = SessionConfig {
        typing: TypingMode::StrictError,
        ..SessionConfig::default()
    };
    let q2 = "SELECT VALUE x + 1 FROM t AS x LIMIT 2";
    let q3 = "SELECT VALUE x + 1 FROM t AS x";

    // Bad row beyond the quota: the stream ends first, so strict succeeds.
    let engine = engine_with("t", bad_last.clone()).with_config(strict.clone());
    assert!(
        engine.query(q2).is_ok(),
        "LIMIT 2 must end before the error"
    );
    // Without the limit the same engine hits the bad row and stops.
    assert!(engine.query(q3).is_err(), "strict mode must surface row 3");

    // Bad row inside the quota: strict fails, permissive keeps flowing.
    let engine = engine_with("t", bad_first.clone()).with_config(strict);
    assert!(engine.query(q2).is_err(), "strict mode must surface row 1");
    let permissive = engine_with("t", bad_first);
    let got = permissive.query(q2).unwrap();
    assert!(
        got.matches(&Value::Bag(vec![Value::Missing, Value::Int(2)])),
        "permissive mode must keep healthy rows flowing: {}",
        got.value()
    );
}

/// Random documents whose `id` is *sometimes a string*, so arithmetic on
/// it errors in strict mode — exercising both the healthy and the
/// error-carrying paths of the stream.
fn arb_doc() -> Gen<Value> {
    gen::triple(
        gen::any_i64(),
        gen::any_bool(),
        gen::option_of(gen::vec_of(small_scalar(), 0..=3).map(Value::Array)),
    )
    .map(|(id, poison, projects)| {
        let mut t = Tuple::new();
        if poison {
            t.insert("id", Value::Str("not a number".into()));
        } else {
            t.insert("id", Value::Int(id % 50));
        }
        if let Some(projects) = projects {
            t.insert("projects", projects);
        }
        Value::Tuple(t)
    })
}

fn arb_collection() -> Gen<Value> {
    gen::vec_of(arb_doc(), 0..=11).map(Value::Bag)
}

/// SFW-fragment queries the reference supports, chosen so strict mode
/// has real errors to surface (arithmetic over the poisoned `id`).
fn queries() -> Vec<&'static str> {
    vec![
        "SELECT VALUE e FROM t AS e",
        "SELECT VALUE e.id + 1 FROM t AS e",
        "SELECT VALUE e.id FROM t AS e WHERE e.id > 10",
        "SELECT e.id + 0 AS id, p AS p FROM t AS e, e.projects AS p",
        "SELECT VALUE {'i': e.id, 'p': p} FROM t AS e, e.projects AS p WHERE e.id > 5",
    ]
}

/// A session over `t` with an explicit unit of pull. `batch_size: 1`
/// with `compile_exprs: false` is the row-at-a-time tree-walking
/// baseline the vectorized engine is measured against.
fn sized_engine(data: Value, typing: TypingMode, batch_size: usize, compile_exprs: bool) -> Engine {
    let engine = engine_with("t", data);
    engine.with_config(SessionConfig {
        typing,
        batch_size,
        compile_exprs,
        ..SessionConfig::default()
    })
}

/// LIMIT/OFFSET quotas that land mid-batch, exactly on a batch edge, one
/// past it, and beyond the input — every off-by-one a batched `Limited`
/// could get wrong. Checked at batch sizes bracketing the default
/// (including batch size 1, the degenerate single-row batch).
#[test]
fn limit_offset_batch_boundaries_agree_with_row_path() {
    const QUERIES: &[&str] = &[
        "SELECT VALUE x FROM t AS x LIMIT 1024 OFFSET 1023",
        "SELECT VALUE x FROM t AS x LIMIT 5 OFFSET 1022",
        "SELECT VALUE x FROM t AS x LIMIT 1025",
        "SELECT VALUE x FROM t AS x LIMIT 1 OFFSET 2999",
        "SELECT VALUE x FROM t AS x LIMIT 10 OFFSET 3000",
        "SELECT VALUE x FROM t AS x WHERE x % 7 = 0 LIMIT 100 OFFSET 99",
        "SELECT VALUE x FROM t AS x LIMIT 0 OFFSET 1024",
    ];
    let data = ints(3_000);
    for q in QUERIES {
        let baseline = sized_engine(data.clone(), TypingMode::Permissive, 1, false)
            .query(q)
            .unwrap_or_else(|e| panic!("row path failed on {q}: {e}"))
            .into_value();
        for batch_size in [1usize, 2, 3, 1023, 1024, 1025] {
            let got = sized_engine(data.clone(), TypingMode::Permissive, batch_size, true)
                .query(q)
                .unwrap_or_else(|e| panic!("batch={batch_size} failed on {q}: {e}"))
                .into_value();
            assert!(
                sqlpp_value::cmp::deep_eq(&got, &baseline),
                "batch={batch_size} diverged on {q}\n  row path: {baseline}\n  batched:  {got}"
            );
        }
    }
}

/// Exhaustion edge cases: an empty input collection and a filter that
/// rejects every row both produce clean empty results through the batch
/// protocol (an empty append means "done", not an error or a hang).
#[test]
fn empty_batches_are_exhaustion_not_errors() {
    let empty = sized_engine(ints(0), TypingMode::Permissive, 1024, true);
    let r = empty.query("SELECT VALUE x + 1 FROM t AS x").unwrap();
    assert_eq!(r.len(), 0);

    let filtered = sized_engine(ints(5_000), TypingMode::Permissive, 1024, true);
    let r = filtered
        .query("SELECT VALUE x FROM t AS x WHERE x < 0 LIMIT 10")
        .unwrap();
    assert_eq!(r.len(), 0);
}

sqlpp_prop! {
    #![config(cases = 64)]

    // The tentpole gate: the streaming pipeline against the materialized
    // nested-loop oracle. Permissive runs must produce identical bags;
    // stop-on-error runs must fail on exactly the same inputs.
    fn streaming_agrees_with_materialized_reference(data in arb_collection()) {
        for typing in [TypingMode::Permissive, TypingMode::StrictError] {
            let catalog = sqlpp::Catalog::new();
            catalog.set("t", data.clone());
            let engine = engine_with("t", data.clone()).with_config(SessionConfig {
                typing,
                ..SessionConfig::default()
            });
            let config = EvalConfig {
                typing,
                ..EvalConfig::default()
            };
            for q in queries() {
                let ast = parse_query(q).expect("query parses");
                let expected = eval_sfw_config(&ast, &catalog, config.clone());
                let got = engine.query(q);
                match (expected, got) {
                    (Ok(want), Ok(got)) => prop_assert!(
                        got.matches(&want),
                        "{typing:?} {q}\n  reference: {want}\n  streaming: {}",
                        got.value()
                    ),
                    (Err(ReferenceError::Eval(_)), Err(_)) => {}
                    (Err(ReferenceError::Unsupported(what)), _) => prop_assert!(
                        false, "oracle lost coverage of {q}: unsupported {what}"
                    ),
                    (want, got) => prop_assert!(
                        false,
                        "{typing:?} error behavior diverged on {q}\n  data {data}\n  \
                         reference: {want:?}\n  streaming: {:?}",
                        got.map(|r| r.into_value())
                    ),
                }
            }
        }
    }

    // The vectorized gate: the batched+bytecode engine against both the
    // row-at-a-time tree-walking path and the Pseudocode 1–2 reference,
    // in both typing modes — at batch sizes 1 (degenerate), 2 (every
    // boundary hit), and the 1024 default.
    fn batched_bytecode_agrees_with_row_path_and_reference(data in arb_collection()) {
        for typing in [TypingMode::Permissive, TypingMode::StrictError] {
            let catalog = sqlpp::Catalog::new();
            catalog.set("t", data.clone());
            let config = EvalConfig { typing, ..EvalConfig::default() };
            let row_path = sized_engine(data.clone(), typing, 1, false);
            for q in queries() {
                let ast = parse_query(q).expect("query parses");
                let reference = eval_sfw_config(&ast, &catalog, config.clone());
                let row = row_path.query(q).map(|r| r.into_value());
                for batch_size in [1usize, 2, 1024] {
                    let batched = sized_engine(data.clone(), typing, batch_size, true);
                    let got = batched.query(q).map(|r| r.into_value());
                    match (&row, &got) {
                        (Ok(want), Ok(got)) => prop_assert!(
                            sqlpp_value::cmp::deep_eq(got, want),
                            "{typing:?} batch={batch_size} diverged from row path on {q}\n  \
                             row:     {want}\n  batched: {got}"
                        ),
                        (Err(_), Err(_)) => {}
                        (want, got) => prop_assert!(
                            false,
                            "{typing:?} batch={batch_size} error behavior diverged on {q}\n  \
                             data {data}\n  row: {want:?}\n  batched: {got:?}"
                        ),
                    }
                    match (&reference, &got) {
                        (Ok(want), Ok(got)) => prop_assert!(
                            sqlpp_value::cmp::deep_eq(got, want),
                            "{typing:?} batch={batch_size} diverged from reference on {q}\n  \
                             reference: {want}\n  batched:   {got}"
                        ),
                        (Err(ReferenceError::Eval(_)), Err(_)) => {}
                        (Err(ReferenceError::Unsupported(what)), _) => prop_assert!(
                            false, "oracle lost coverage of {q}: unsupported {what}"
                        ),
                        (want, got) => prop_assert!(
                            false,
                            "{typing:?} batch={batch_size} error behavior diverged from \
                             reference on {q}\n  data {data}\n  reference: {want:?}\n  \
                             batched: {got:?}"
                        ),
                    }
                }
            }
        }
    }
}
