//! Parser robustness: arbitrary input must produce an error or an AST —
//! never a panic, never an unbounded loop. (A production front end's
//! minimum bar; fuzzing-lite with generated inputs.)

use sqlpp_syntax::{lex, parse_expr, parse_query, parse_statement};
use sqlpp_testkit::{gen, sqlpp_prop};

sqlpp_prop! {
    #![config(cases = 512)]

    fn lexer_never_panics(src in gen::unicode_string(0..=120)) {
        let _ = lex(&src);
    }

    fn parser_never_panics_on_arbitrary_text(src in gen::unicode_string(0..=120)) {
        let _ = parse_query(&src);
        let _ = parse_expr(&src);
        let _ = parse_statement(&src);
    }

    fn parser_never_panics_on_sql_shaped_soup(
        tokens in gen::vec_of(
            gen::element_of(vec![
                "SELECT", "VALUE", "FROM", "WHERE",
                "GROUP", "BY", "AS", "ORDER",
                "PIVOT", "UNPIVOT", "AT", "OVER",
                "ROLLUP", "(", ")", "{{", "}}",
                "[", "]", ",", ".", "*",
                "=", "x", "y", "1", "'s'",
                "NULL", "MISSING", "AND", "NOT",
            ]),
            0..=23,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse_query(&src);
        let _ = parse_expr(&src);
    }
}

#[test]
fn pathological_nesting_is_rejected_without_stack_overflow() {
    // Shallow nesting parses; adversarial depth is *rejected* by the
    // parser's depth guard rather than crashing the process. Run on an
    // explicit 16 MB thread so the check is independent of the test
    // runner's (2 MB, debug-profile) stack size — what's under test is
    // the guard, not the harness.
    std::thread::Builder::new()
        .stack_size(16 * 1024 * 1024)
        .spawn(|| {
            assert!(parse_expr(&format!("{}1{}", "(".repeat(32), ")".repeat(32))).is_ok());
            for depth in [512usize, 100_000] {
                let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
                let err = parse_expr(&src).unwrap_err();
                assert!(err.to_string().contains("too deep"), "{err}");
                // The guard reports through the structured-diagnostic
                // channel: stable code, in-bounds span.
                assert_eq!(err.code(), "E_DEPTH", "{err}");
                assert!(err.span().end <= src.len(), "{:?}", err.span());
            }
            let deep_arrays = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
            let err = parse_expr(&deep_arrays).unwrap_err();
            assert_eq!(err.code(), "E_DEPTH", "{err}");
        })
        .expect("spawn")
        .join()
        .expect("no panic");
}

#[test]
fn error_spans_never_exceed_the_source() {
    for src in ["SELECT @", "{{", "'unterminated", "a ~ b", "e.\u{7f}"] {
        if let Err(e) = parse_query(src) {
            assert!(e.span().start <= src.len(), "{src:?}");
            assert!(e.span().end <= src.len() + 1, "{src:?}");
        }
    }
}

#[test]
fn pathological_query_nesting_is_rejected_without_stack_overflow() {
    // The same guard must cover *query*-level recursion — FROM
    // subqueries, parenthesized set operands, nested CTE bodies — not
    // just scalar expressions. 16 MB thread for the same reason as above.
    std::thread::Builder::new()
        .stack_size(16 * 1024 * 1024)
        .spawn(|| {
            // Shallow query nesting is legal.
            let mut q = String::from("SELECT VALUE x.a FROM t AS x");
            for _ in 0..8 {
                q = format!("SELECT VALUE y.a FROM ({q}) AS y");
            }
            assert!(parse_query(&q).is_ok(), "8-deep FROM subquery should parse");
            // Adversarial depth dies cleanly in the parser.
            for depth in [512usize, 10_000] {
                let mut q = String::from("SELECT VALUE x.a FROM t AS x");
                for _ in 0..depth {
                    q = format!("SELECT VALUE y.a FROM ({q}) AS y");
                }
                let err = parse_query(&q).unwrap_err();
                assert!(err.to_string().contains("too deep"), "depth {depth}: {err}");
                assert_eq!(err.code(), "E_DEPTH", "depth {depth}: {err}");
                assert!(err.span().end <= q.len(), "{:?}", err.span());
            }
            // 10k-deep parenthesized subquery *expression*: the scalar
            // side of the grammar recurses into query() per level, so
            // this exercises both guards together.
            let src = format!(
                "SELECT VALUE {}SELECT VALUE 1{}",
                "(".repeat(10_000),
                ")".repeat(10_000)
            );
            let err = parse_query(&src).unwrap_err();
            assert!(err.to_string().contains("too deep"), "{err}");
            assert_eq!(err.code(), "E_DEPTH", "{err}");
        })
        .expect("spawn")
        .join()
        .expect("no panic");
}

sqlpp_prop! {
    #![config(cases = 64)]

    // Property: for ANY nesting depth and ANY of the grammar's recursion
    // vehicles, the parser either returns an AST or a clean SyntaxError —
    // it never panics or overflows. (Runs on the default stack: depths
    // near the guard's limit are the interesting region.)
    fn generated_deep_nestings_never_panic(
        depth in gen::usize_range(1..96),
        kind in gen::element_of(vec!["paren", "subquery", "array", "case"]),
    ) {
        let src = match kind {
            "paren" => format!("{}1{}", "(".repeat(depth), ")".repeat(depth)),
            "subquery" => {
                let mut q = String::from("SELECT VALUE 1");
                for _ in 0..depth {
                    q = format!("SELECT VALUE y.a FROM ({q}) AS y");
                }
                q
            }
            "array" => format!("{}1{}", "[".repeat(depth), "]".repeat(depth)),
            "case" => {
                let mut e = String::from("1");
                for _ in 0..depth {
                    e = format!("CASE WHEN TRUE THEN {e} ELSE 0 END");
                }
                format!("SELECT VALUE {e}")
            }
            _ => unreachable!(),
        };
        let _ = parse_query(&src);
        let _ = parse_expr(&src);
    }
}
