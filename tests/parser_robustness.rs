//! Parser robustness: arbitrary input must produce an error or an AST —
//! never a panic, never an unbounded loop. (A production front end's
//! minimum bar; fuzzing-lite with generated inputs.)

use sqlpp_syntax::{lex, parse_expr, parse_query, parse_statement};
use sqlpp_testkit::{gen, sqlpp_prop};

sqlpp_prop! {
    #![config(cases = 512)]

    fn lexer_never_panics(src in gen::unicode_string(0..=120)) {
        let _ = lex(&src);
    }

    fn parser_never_panics_on_arbitrary_text(src in gen::unicode_string(0..=120)) {
        let _ = parse_query(&src);
        let _ = parse_expr(&src);
        let _ = parse_statement(&src);
    }

    fn parser_never_panics_on_sql_shaped_soup(
        tokens in gen::vec_of(
            gen::element_of(vec![
                "SELECT", "VALUE", "FROM", "WHERE",
                "GROUP", "BY", "AS", "ORDER",
                "PIVOT", "UNPIVOT", "AT", "OVER",
                "ROLLUP", "(", ")", "{{", "}}",
                "[", "]", ",", ".", "*",
                "=", "x", "y", "1", "'s'",
                "NULL", "MISSING", "AND", "NOT",
            ]),
            0..=23,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse_query(&src);
        let _ = parse_expr(&src);
    }
}

#[test]
fn pathological_nesting_is_rejected_without_stack_overflow() {
    // Shallow nesting parses; adversarial depth is *rejected* by the
    // parser's depth guard rather than crashing the process. Run on an
    // explicit 16 MB thread so the check is independent of the test
    // runner's (2 MB, debug-profile) stack size — what's under test is
    // the guard, not the harness.
    std::thread::Builder::new()
        .stack_size(16 * 1024 * 1024)
        .spawn(|| {
            assert!(parse_expr(&format!("{}1{}", "(".repeat(32), ")".repeat(32))).is_ok());
            for depth in [512usize, 100_000] {
                let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
                let err = parse_expr(&src).unwrap_err();
                assert!(err.to_string().contains("too deep"), "{err}");
            }
            let deep_arrays = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
            assert!(parse_expr(&deep_arrays).is_err());
        })
        .expect("spawn")
        .join()
        .expect("no panic");
}

#[test]
fn error_spans_never_exceed_the_source() {
    for src in ["SELECT @", "{{", "'unterminated", "a ~ b", "e.\u{7f}"] {
        if let Err(e) = parse_query(src) {
            assert!(e.span().start <= src.len(), "{src:?}");
            assert!(e.span().end <= src.len() + 1, "{src:?}");
        }
    }
}
