//! Front-end fuzzing: the recovering parser must survive anything.
//!
//! Three input families — raw byte soup, SQL-shaped token soup, and
//! mutation-corrupted real queries from the compatibility corpus — are
//! driven through every front-end entry point under `catch_unwind`. The
//! contract checked for each input:
//!
//! 1. no panic, ever;
//! 2. every input the *strict* parser rejects yields at least one
//!    diagnostic from the *recovering* parser;
//! 3. every diagnostic has a code, a message, and an in-bounds span, and
//!    no two diagnostics of one parse have overlapping spans;
//! 4. every input the strict parser accepts parses identically (and
//!    diagnostic-free) in recovering mode — recovery is inert on valid
//!    queries.
//!
//! Invariant 4 is also pinned deterministically over the whole
//! compatibility corpus (every paper listing plus the derived edge
//! cases) in `recovery_differential_over_the_compat_corpus`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sqlpp_syntax::token::Span;
use sqlpp_syntax::{
    parse_expr, parse_expr_recovering, parse_query, parse_query_recovering, parse_statement,
    parse_statement_recovering, Diagnostic,
};
use sqlpp_testkit::{gen, sqlpp_prop};

fn corpus_queries() -> Vec<String> {
    sqlpp_compat_kit::corpus()
        .iter()
        .map(|c| c.query.to_string())
        .collect()
}

/// An explicit `cases = …` in the config block beats the environment,
/// so read `SQLPP_PROP_CASES` ourselves — the CI fuzz gate scales the
/// sweep through it (500/property smoke, 2500/property for the full
/// 10k-input acceptance run).
fn cases(default_count: u32) -> u32 {
    std::env::var("SQLPP_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_count)
}

/// Mirrors `Diagnostics`' overlap rule: half-open ranges, with empty
/// (EOF) spans overlapping only an identical empty span.
fn spans_overlap(a: Span, b: Span) -> bool {
    if a.start == a.end && b.start == b.end {
        return a.start == b.start;
    }
    a.start < b.end && b.start < a.end
}

fn assert_diags_well_formed(src: &str, diags: &[Diagnostic]) {
    for d in diags {
        assert!(d.span.start <= d.span.end, "inverted span {d} on {src:?}");
        assert!(
            d.span.end <= src.len() + 1,
            "span out of bounds: {d} on {src:?} (len {})",
            src.len()
        );
        assert!(!d.message.is_empty(), "empty message: {d} on {src:?}");
        assert!(!d.code.is_empty(), "empty code: {d} on {src:?}");
    }
    for (i, a) in diags.iter().enumerate() {
        for b in &diags[i + 1..] {
            assert!(
                !spans_overlap(a.span, b.span),
                "overlapping diagnostics on {src:?}:\n  {a}\n  {b}"
            );
        }
    }
}

/// The full front-end contract for one input (see module docs).
fn assert_front_end_contract(src: &str) {
    let (stmt, query, expr) = catch_unwind(AssertUnwindSafe(|| {
        (
            parse_statement_recovering(src),
            parse_query_recovering(src),
            parse_expr_recovering(src),
        )
    }))
    .unwrap_or_else(|_| panic!("front end panicked on {src:?}"));

    assert_diags_well_formed(src, &stmt.diags);
    assert_diags_well_formed(src, &query.diags);
    assert_diags_well_formed(src, &expr.diags);

    // Strict rejection ⇒ at least one spanned diagnostic.
    if parse_statement(src).is_err() {
        assert!(
            !stmt.diags.is_empty(),
            "strict parse_statement rejected {src:?} but recovery reported nothing"
        );
    }
    if parse_expr(src).is_err() {
        assert!(
            !expr.diags.is_empty(),
            "strict parse_expr rejected {src:?} but recovery reported nothing"
        );
    }

    // Strict acceptance ⇒ recovery is inert: same AST, zero diagnostics.
    if let Ok(strict) = parse_statement(src) {
        assert!(stmt.diags.is_empty(), "{src:?}: {:?}", stmt.diags);
        assert_eq!(stmt.ast.as_ref(), Some(&strict), "{src:?}");
    }
    if let Ok(strict) = parse_query(src) {
        assert!(query.diags.is_empty(), "{src:?}: {:?}", query.diags);
        assert_eq!(query.ast.as_ref(), Some(&strict), "{src:?}");
    }
    if let Ok(strict) = parse_expr(src) {
        assert!(expr.diags.is_empty(), "{src:?}: {:?}", expr.diags);
        assert_eq!(expr.ast.as_ref(), Some(&strict), "{src:?}");
    }
}

sqlpp_prop! {
    #![config(cases = cases(512))]

    // Family 1: raw bytes, lossily decoded — control characters,
    // replacement chars, truncated multi-byte sequences.
    fn byte_soup_never_panics_the_front_end(bytes in gen::bytes(0..=160)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_front_end_contract(&src);
    }

    // Family 1b: well-formed Unicode over the whole range.
    fn unicode_soup_never_panics_the_front_end(src in gen::unicode_string(0..=120)) {
        assert_front_end_contract(&src);
    }

    // Family 2: SQL-shaped token soup — lexically clean, grammatically
    // wild. Exercises the parser's clause-boundary synchronizer far more
    // than raw bytes (which mostly die in the lexer).
    fn token_soup_never_panics_the_front_end(
        tokens in gen::vec_of(
            gen::element_of(vec![
                "SELECT", "VALUE", "FROM", "WHERE", "GROUP", "BY", "AS",
                "ORDER", "HAVING", "LIMIT", "OFFSET", "LET", "UNION",
                "PIVOT", "UNPIVOT", "AT", "JOIN", "ON", "WITH", "CASE",
                "WHEN", "THEN", "END", "(", ")", "{{", "}}", "{", "}",
                "[", "]", ",", ".", "*", "=", "<", "+", ";", "x", "y",
                "t", "1", "1.5", "'s'", "\"q\"", "NULL", "MISSING",
                "TRUE", "AND", "NOT", "?",
            ]),
            0..=32,
        )
    ) {
        let src = tokens.join(" ");
        assert_front_end_contract(&src);
    }

    // Family 3: real queries from the compatibility corpus, corrupted by
    // chunk deletion/duplication/swap/truncation/insertion — the
    // "almost right" inputs that reach deepest into the grammar.
    fn corrupted_real_queries_never_panic_the_front_end(
        src in gen::mutated_string(corpus_queries())
    ) {
        assert_front_end_contract(&src);
    }
}

/// Recovery differential, pinned deterministically: every query in the
/// compatibility corpus (all paper listings included) parses to the
/// *identical* AST with recovery on, with zero diagnostics.
#[test]
fn recovery_differential_over_the_compat_corpus() {
    let mut checked = 0;
    for case in sqlpp_compat_kit::corpus() {
        let src = case.query;
        match parse_statement(src) {
            Ok(strict) => {
                let rec = parse_statement_recovering(src);
                assert!(rec.diags.is_empty(), "{}: {:?}", case.id, rec.diags);
                assert_eq!(rec.ast, Some(strict), "{}", case.id);
            }
            // The engine falls back to bare-expression parsing; the
            // differential follows the same path.
            Err(_) => {
                let strict = parse_expr(src).unwrap_or_else(|e| {
                    panic!(
                        "{}: parses as neither statement nor expression: {e}",
                        case.id
                    )
                });
                let rec = parse_expr_recovering(src);
                assert!(rec.diags.is_empty(), "{}: {:?}", case.id, rec.diags);
                assert_eq!(rec.ast, Some(strict), "{}", case.id);
            }
        }
        checked += 1;
    }
    // 48 distinct queries today (they fan out to 89 case×mode results in
    // the kit); guard against the corpus silently shrinking.
    assert!(checked >= 45, "only {checked} corpus queries checked");
}
