//! The backward-compatibility tenet (§I): "Existing SQL queries should
//! continue to work, with identical syntax and semantics, in SQL query
//! processors that are extended to provide SQL++."
//!
//! A battery of SQL-92-style queries over flat, homogeneous, fully typed
//! tables — checked for the documented answers AND for agreement between
//! the two modes (on pure SQL over clean relational data the compat flag
//! must be unobservable).

use sqlpp::{CompatMode, Engine, SessionConfig};
use sqlpp_formats::pnotation::from_pnotation;

fn engines() -> (Engine, Engine) {
    let compat = Engine::new();
    compat
        .load_pnotation(
            "emp",
            r#"{{
            {'empno': 1, 'ename': 'SMITH', 'job': 'CLERK',   'sal': 800,  'deptno': 20, 'comm': null},
            {'empno': 2, 'ename': 'ALLEN', 'job': 'SALES',   'sal': 1600, 'deptno': 30, 'comm': 300},
            {'empno': 3, 'ename': 'WARD',  'job': 'SALES',   'sal': 1250, 'deptno': 30, 'comm': 500},
            {'empno': 4, 'ename': 'JONES', 'job': 'MANAGER', 'sal': 2975, 'deptno': 20, 'comm': null},
            {'empno': 5, 'ename': 'BLAKE', 'job': 'MANAGER', 'sal': 2850, 'deptno': 30, 'comm': null},
            {'empno': 6, 'ename': 'KING',  'job': 'PRESIDENT', 'sal': 5000, 'deptno': 10, 'comm': null}
        }}"#,
        )
        .unwrap();
    compat
        .load_pnotation(
            "dept",
            r#"{{
            {'deptno': 10, 'dname': 'ACCOUNTING'},
            {'deptno': 20, 'dname': 'RESEARCH'},
            {'deptno': 30, 'dname': 'SALES'},
            {'deptno': 40, 'dname': 'OPERATIONS'}
        }}"#,
        )
        .unwrap();
    let composable = compat.with_config(SessionConfig {
        compat: CompatMode::Composable,
        ..SessionConfig::default()
    });
    (compat, composable)
}

fn check(query: &str, expected: &str) {
    let (compat, composable) = engines();
    let want = from_pnotation(expected).expect("expected parses");
    let got_compat = compat.query(query).expect("compat mode runs");
    assert!(
        got_compat.matches(&want),
        "compat mode:\n query   {query}\n expected {want}\n got      {}",
        got_compat.value()
    );
    let got_composable = composable.query(query).expect("composable mode runs");
    assert!(
        got_composable.matches(&want),
        "composable mode:\n query   {query}\n got      {}",
        got_composable.value()
    );
}

#[test]
fn projection_and_filter() {
    check(
        "SELECT e.ename AS ename FROM emp AS e WHERE e.sal > 2800",
        "{{ {'ename': 'JONES'}, {'ename': 'BLAKE'}, {'ename': 'KING'} }}",
    );
}

#[test]
fn arithmetic_and_aliases() {
    check(
        "SELECT e.ename AS ename, e.sal * 12 AS annual FROM emp AS e WHERE e.empno = 1",
        "{{ {'ename': 'SMITH', 'annual': 9600} }}",
    );
}

#[test]
fn null_semantics_in_where() {
    // comm > 100 is NULL for null comms → excluded, no error.
    check(
        "SELECT e.ename AS ename FROM emp AS e WHERE e.comm > 100",
        "{{ {'ename': 'ALLEN'}, {'ename': 'WARD'} }}",
    );
    check(
        "SELECT e.ename AS ename FROM emp AS e WHERE e.comm IS NULL AND e.deptno = 20",
        "{{ {'ename': 'SMITH'}, {'ename': 'JONES'} }}",
    );
}

#[test]
fn group_by_with_having_and_aggregates() {
    check(
        "SELECT e.deptno, COUNT(*) AS n, SUM(e.sal) AS total, MIN(e.sal) AS lo, \
                MAX(e.sal) AS hi \
         FROM emp AS e GROUP BY e.deptno HAVING COUNT(*) >= 2",
        "{{ {'deptno': 20, 'n': 2, 'total': 3775, 'lo': 800, 'hi': 2975},
            {'deptno': 30, 'n': 3, 'total': 5700, 'lo': 1250, 'hi': 2850} }}",
    );
}

#[test]
fn aggregates_ignore_nulls() {
    check(
        "SELECT COUNT(e.comm) AS n, AVG(e.comm) AS a FROM emp AS e",
        "{{ {'n': 2, 'a': 400} }}",
    );
}

#[test]
fn joins_inner_and_left() {
    check(
        "SELECT d.dname AS dname, e.ename AS ename \
         FROM dept AS d JOIN emp AS e ON e.deptno = d.deptno \
         WHERE e.job = 'MANAGER'",
        "{{ {'dname': 'RESEARCH', 'ename': 'JONES'},
            {'dname': 'SALES', 'ename': 'BLAKE'} }}",
    );
    check(
        "SELECT d.dname AS dname, e.ename AS ename \
         FROM dept AS d LEFT JOIN emp AS e ON e.deptno = d.deptno AND e.job = 'PRESIDENT'",
        "{{ {'dname': 'ACCOUNTING', 'ename': 'KING'},
            {'dname': 'RESEARCH', 'ename': null},
            {'dname': 'SALES', 'ename': null},
            {'dname': 'OPERATIONS', 'ename': null} }}",
    );
}

#[test]
fn order_by_limit_offset() {
    let (compat, _) = engines();
    let r = compat
        .query("SELECT VALUE e.ename FROM emp AS e ORDER BY e.sal DESC LIMIT 3 OFFSET 1")
        .unwrap();
    let names: Vec<String> = r
        .rows()
        .iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["JONES", "BLAKE", "ALLEN"]);
}

#[test]
fn in_between_like_predicates() {
    check(
        "SELECT e.ename AS ename FROM emp AS e \
         WHERE e.job IN ('CLERK', 'PRESIDENT')",
        "{{ {'ename': 'SMITH'}, {'ename': 'KING'} }}",
    );
    check(
        "SELECT e.ename AS ename FROM emp AS e WHERE e.sal BETWEEN 1250 AND 1600",
        "{{ {'ename': 'ALLEN'}, {'ename': 'WARD'} }}",
    );
    check(
        "SELECT e.ename AS ename FROM emp AS e WHERE e.ename LIKE '_LAKE'",
        "{{ {'ename': 'BLAKE'} }}",
    );
}

#[test]
fn case_and_functions() {
    check(
        "SELECT e.ename AS ename, \
                CASE WHEN e.sal >= 2800 THEN 'high' ELSE 'low' END AS band \
         FROM emp AS e WHERE e.deptno = 20",
        "{{ {'ename': 'SMITH', 'band': 'low'}, {'ename': 'JONES', 'band': 'high'} }}",
    );
    check(
        "SELECT VALUE LOWER(e.ename) FROM emp AS e WHERE e.empno = 6",
        "{{'king'}}",
    );
    check(
        "SELECT VALUE COALESCE(e.comm, 0) FROM emp AS e WHERE e.deptno = 30",
        "{{300, 500, 0}}",
    );
}

#[test]
fn distinct_and_set_operations() {
    check(
        "SELECT DISTINCT e.job AS job FROM emp AS e WHERE e.deptno = 30",
        "{{ {'job': 'SALES'}, {'job': 'MANAGER'} }}",
    );
    check(
        "SELECT VALUE e.deptno FROM emp AS e \
         INTERSECT SELECT VALUE d.deptno FROM dept AS d",
        "{{10, 20, 30}}",
    );
    check(
        "SELECT VALUE d.deptno FROM dept AS d \
         EXCEPT SELECT VALUE e.deptno FROM emp AS e",
        "{{40}}",
    );
}

#[test]
fn exists_and_correlated_subquery() {
    check(
        "SELECT d.dname AS dname FROM dept AS d \
         WHERE EXISTS (SELECT VALUE e FROM emp AS e \
                       WHERE e.deptno = d.deptno AND e.sal > 4000)",
        "{{ {'dname': 'ACCOUNTING'} }}",
    );
}

#[test]
fn scalar_subquery_compat_mode_only() {
    // This one is *intentionally* mode-sensitive: the scalar coercion is
    // SQL-compat behavior (§V-A).
    let (compat, composable) = engines();
    let q = "SELECT VALUE e.ename FROM emp AS e \
             WHERE e.sal = (SELECT MAX(e2.sal) AS m FROM emp AS e2)";
    assert_eq!(compat.query(q).unwrap().value().to_string(), "{{'KING'}}");
    assert_eq!(composable.query(q).unwrap().value().to_string(), "{{}}");
}

#[test]
fn with_cte() {
    check(
        "WITH rich AS (SELECT VALUE e FROM emp AS e WHERE e.sal > 2800) \
         SELECT r.ename AS ename FROM rich AS r",
        "{{ {'ename': 'JONES'}, {'ename': 'BLAKE'}, {'ename': 'KING'} }}",
    );
}

#[test]
fn union_all_keeps_duplicates() {
    check(
        "SELECT VALUE e.deptno FROM emp AS e WHERE e.job = 'MANAGER' \
         UNION ALL SELECT VALUE e.deptno FROM emp AS e WHERE e.deptno = 20",
        "{{20, 30, 20, 20}}",
    );
}
