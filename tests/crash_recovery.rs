//! Crash-point recovery: the proof layer of the durability subsystem.
//!
//! The harness runs a seeded DML workload (with periodic checkpoints)
//! on a durable engine whose storage layer is armed to fail at the k-th
//! visit to one fault site — `wal-append`, `wal-fsync`,
//! `snapshot-write`, `snapshot-rename` — then treats the first
//! durability error as the crash: the engine is dropped where it
//! stands and a fresh engine recovers the directory. An in-memory twin
//! executes the same statements in lockstep, so the harness knows the
//! exact catalog state before and after every commit.
//!
//! Invariants asserted at every (site × k) crash point:
//!
//! * **atomicity** — the recovered catalog is byte-identical to either
//!   the pre- or the post-commit state of the interrupted statement,
//!   never anything in between;
//! * **durability** — every statement acknowledged before the crash
//!   survives recovery (its effects are in both admissible states);
//! * **no panics** — crash, recovery, and everything between go through
//!   structured errors only;
//! * **no orphans** — after recovery the directory holds nothing but
//!   `wal.log` and `snap-*.snap`.
//!
//! Alongside the sweep: recovery-time fault injection (`recovery-read`),
//! physical torn-tail truncation, mid-log bit flips, and the
//! prefix-differential replay test — recovering from *every*
//! record-boundary prefix of the log must land exactly on the state
//! after the corresponding commit prefix.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sqlpp::{
    DurabilityConfig, DurabilityError, Engine, Error, FaultInjector, SessionConfig, SyncMode,
    TypingMode,
};
use sqlpp_durability::{wal_record_ends, WAL_FILE};
use sqlpp_eval::EvalError;
use sqlpp_testkit::fault::FaultPlan;
use sqlpp_testkit::Rng;

/// The storage-layer sites the workload sweep injects into. The
/// recovery-read site fires on open, not during the workload; it gets
/// its own tests below.
const CRASH_SITES: [&str; 4] = [
    "wal-append",
    "wal-fsync",
    "snapshot-write",
    "snapshot-rename",
];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sqlpp-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A byte-comparable rendering of every collection (and schema) in the
/// catalog — the equality the atomicity assertions compare under.
fn catalog_state(engine: &Engine) -> Vec<(String, String)> {
    let mut names = engine.catalog().names();
    names.sort_by_key(|n| n.to_string());
    let mut state: Vec<(String, String)> = names
        .into_iter()
        .map(|n| {
            let v = engine.catalog().get(&n).expect("listed name resolves");
            (n.to_string(), v.to_string())
        })
        .collect();
    let mut schemas = engine.catalog().schema_snapshot();
    schemas.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, ty) in schemas {
        state.push((format!("schema:{name}"), ty.to_string()));
    }
    state
}

/// The deterministic workload: statement `i` under seed `s` is the same
/// string on every run, so the crash sweep and the twin replay agree.
fn workload_statement(rng: &mut Rng, i: usize) -> String {
    match rng.next_u64() % 10 {
        0..=5 => format!(
            "INSERT INTO t VALUE {{'id': {i}, 'v': {}, 'tag': '{}'}}",
            rng.next_u64() % 1000,
            if rng.gen_bool(0.5) { "a" } else { "b" },
        ),
        6..=7 => format!(
            "UPDATE t AS e SET e.v = e.v + {} WHERE e.id >= {}",
            rng.next_u64() % 50,
            i.saturating_sub(4),
        ),
        8 => format!(
            "DELETE FROM t AS e WHERE e.id = {}",
            rng.next_u64() % (i as u64 + 1)
        ),
        // The scalar comes last so the statement doesn't end in `}}`,
        // which the lexer reads as a bag-close token.
        _ => format!(
            "INSERT INTO u VALUE {{'nested': {{'xs': [{}, {}]}}, 'k': {i}}}",
            rng.next_u64() % 9,
            rng.next_u64() % 9,
        ),
    }
}

fn durable_config(dir: &Path, plan: Option<Arc<FaultPlan>>) -> SessionConfig {
    let mut durability = DurabilityConfig::new(dir).with_sync(SyncMode::Always);
    if let Some(plan) = plan {
        durability = durability.with_fault(FaultInjector::new(move |site| {
            plan.should_fail(site.name())
                .then(|| EvalError::Resource(format!("injected fault at {}", site.name())))
        }));
    }
    SessionConfig {
        durability: Some(durability),
        ..SessionConfig::default()
    }
}

/// Runs one crash-point case: workload under a fail-kth plan, crash at
/// the first durability error, recover, assert the four invariants.
/// Returns true when the plan actually fired (the sweep counts those).
fn run_crash_case(site: &str, k: u64, seed: u64) -> bool {
    let dir = tmp_dir(&format!("{site}-{k}"));
    let plan = Arc::new(FaultPlan::fail_kth(site, k));
    let engine =
        Engine::open(durable_config(&dir, Some(Arc::clone(&plan)))).expect("fresh dir opens");
    // CREATE TABLE seeds both engines with a schema-attached collection,
    // so schema changes are part of every crash window.
    let twin = Engine::new();
    let ddl = "CREATE TABLE t (id INT, v INT, tag STRING)";
    let mut states = vec![catalog_state(&twin)];

    let mut rng = Rng::new(seed);
    // `None` = crash during a checkpoint (logical no-op): pre == post.
    let mut interrupted: Option<String> = None;
    let result = catch_unwind(AssertUnwindSafe(|| {
        match engine.execute(ddl) {
            Ok(_) => {
                twin.execute(ddl).expect("twin DDL");
                states.push(catalog_state(&twin));
            }
            Err(Error::Durability(_)) => {
                interrupted = Some(ddl.to_string());
                return;
            }
            Err(e) => panic!("unexpected non-durability error: {e}"),
        }
        for i in 0..40 {
            if i % 7 == 6 {
                if let Err(e) = engine.checkpoint() {
                    assert!(matches!(e, Error::Durability(_)), "checkpoint error: {e}");
                    return; // crash inside a checkpoint
                }
            }
            let stmt = workload_statement(&mut rng, i);
            match engine.execute(&stmt) {
                Ok(_) => {
                    twin.execute(&stmt).expect("twin statement");
                    states.push(catalog_state(&twin));
                }
                Err(Error::Durability(_)) => {
                    interrupted = Some(stmt);
                    return;
                }
                Err(e) => panic!("unexpected non-durability error: {e}"),
            }
        }
    }));
    assert!(result.is_ok(), "site {site} k {k}: workload panicked");
    let crashed = plan.fired();
    drop(engine); // the crash: no checkpoint, no graceful anything

    // Admissible post-crash states: everything acked (pre), plus — when
    // a statement was interrupted mid-commit — that statement's effects
    // (post: its WAL record may have landed before the failure).
    let pre = states.last().expect("at least the empty state").clone();
    let post = match &interrupted {
        Some(stmt) => {
            match twin.execute(stmt) {
                Ok(_) => catalog_state(&twin),
                // The statement might fail on the twin for data reasons
                // only if the durable engine diverged — it can't, the
                // workload is deterministic. Treat as pre.
                Err(_) => pre.clone(),
            }
        }
        None => pre.clone(),
    };

    // Recovery must be a structured success — never a panic.
    let recovered = catch_unwind(AssertUnwindSafe(|| {
        Engine::open(durable_config(&dir, None))
    }));
    let recovered = recovered
        .unwrap_or_else(|_| panic!("site {site} k {k}: recovery panicked"))
        .unwrap_or_else(|e| panic!("site {site} k {k}: recovery failed: {e}"));
    let state = catalog_state(&recovered);
    assert!(
        state == pre || state == post,
        "site {site} k {k} seed {seed}: recovered state is neither pre- nor \
         post-commit of the interrupted statement\n  interrupted: {interrupted:?}\n  \
         recovered: {state:?}\n  pre: {pre:?}\n  post: {post:?}"
    );

    // No orphaned temp or stray files survive recovery.
    for entry in std::fs::read_dir(&dir).expect("dir lists") {
        let name = entry
            .expect("entry")
            .file_name()
            .to_string_lossy()
            .into_owned();
        assert!(
            name == WAL_FILE || (name.starts_with("snap-") && name.ends_with(".snap")),
            "site {site} k {k}: orphaned file {name}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    crashed
}

#[test]
fn crash_point_sweep_over_every_storage_site() {
    // Every site × every occurrence until the plan stops firing: the
    // workload makes ~45 wal-append visits and ~5 of each checkpoint
    // site, so k sweeps the full range with headroom.
    let mut fired_total = 0u32;
    for (s, site) in CRASH_SITES.iter().enumerate() {
        let mut fired_here = 0u32;
        for k in 1..=48u64 {
            let seed = 0xC0DE + (s as u64) * 1000 + k;
            if run_crash_case(site, k, seed) {
                fired_here += 1;
            } else {
                break; // occurrences exhausted: later k never fire either
            }
        }
        assert!(
            fired_here >= 2,
            "site {site}: the workload must hit the site at least twice \
             (got {fired_here}) or the sweep proves nothing"
        );
        fired_total += fired_here;
    }
    assert!(
        fired_total >= 20,
        "sweep too shallow: {fired_total} crash points"
    );
}

#[test]
fn clean_shutdown_recovers_identically_without_faults() {
    let dir = tmp_dir("clean");
    let engine = Engine::open(durable_config(&dir, None)).expect("open");
    let twin = Engine::new();
    let ddl = "CREATE TABLE t (id INT, v INT, tag STRING)";
    engine.execute(ddl).unwrap();
    twin.execute(ddl).unwrap();
    let mut rng = Rng::new(7);
    for i in 0..25 {
        let stmt = workload_statement(&mut rng, i);
        engine.execute(&stmt).unwrap();
        twin.execute(&stmt).unwrap();
    }
    let expected = catalog_state(&twin);
    drop(engine);
    let recovered = Engine::open(durable_config(&dir, None)).expect("recover");
    assert_eq!(catalog_state(&recovered), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_read_fault_is_a_structured_error_then_recovers_clean() {
    let dir = tmp_dir("recovery-read");
    {
        let engine = Engine::open(durable_config(&dir, None)).expect("open");
        engine.execute("CREATE TABLE t (id INT)").unwrap();
        engine.execute("INSERT INTO t VALUE {'id': 1}").unwrap();
        engine.checkpoint().expect("checkpoint");
        engine.execute("INSERT INTO t VALUE {'id': 2}").unwrap();
    }
    // Every recovery-read visit (snapshot read, WAL read) fails as a
    // structured error, never a panic, and never half-opens an engine.
    for k in 1..=2u64 {
        let plan = Arc::new(FaultPlan::fail_kth("recovery-read", k));
        let result = catch_unwind(AssertUnwindSafe(|| {
            Engine::open(durable_config(&dir, Some(Arc::clone(&plan))))
        }))
        .expect("recovery must not panic");
        match result {
            Err(Error::Durability(e)) if matches!(*e, DurabilityError::Injected(_)) => {}
            Err(e) => panic!("k {k}: expected injected durability error, got {e}"),
            Ok(_) => panic!("k {k}: open succeeded though recovery read failed"),
        }
    }
    // The directory is untouched by the failed attempts.
    let recovered = Engine::open(durable_config(&dir, None)).expect("clean recovery");
    let state = catalog_state(&recovered);
    assert!(
        state.iter().any(|(n, v)| n == "t" && v.contains("'id': 2")),
        "{state:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn physically_torn_wal_tail_recovers_to_the_last_valid_record() {
    let dir = tmp_dir("torn-tail");
    {
        let engine = Engine::open(durable_config(&dir, None)).expect("open");
        engine.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..5 {
            engine
                .execute(&format!("INSERT INTO t VALUE {{'id': {i}}}"))
                .unwrap();
        }
    }
    let wal = dir.join(WAL_FILE);
    let ends = wal_record_ends(&wal).expect("scan");
    assert_eq!(ends.len(), 6, "one DDL + five inserts");
    let bytes = std::fs::read(&wal).expect("read wal");
    // Tear the final record mid-frame: the classic power-loss artifact.
    let cut = (ends[4] + ends[5]) / 2;
    std::fs::write(&wal, &bytes[..cut as usize]).expect("tear");

    let (recovered, report) =
        Engine::open_with_recovery(durable_config(&dir, None)).expect("torn tail tolerated");
    assert!(report.torn_tail.is_some(), "torn tail must be reported");
    assert_eq!(report.replayed, 5, "five records survive the tear");
    let state = catalog_state(&recovered);
    assert!(state.iter().any(|(n, v)| n == "t" && v.contains("'id': 3")));
    assert!(
        !state.iter().any(|(_, v)| v.contains("'id': 4")),
        "the torn record must not half-apply: {state:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_log_bit_flip_is_reported_as_corruption_not_panic() {
    let dir = tmp_dir("bit-flip");
    {
        let engine = Engine::open(durable_config(&dir, None)).expect("open");
        engine.execute("CREATE TABLE t (id INT)").unwrap();
        engine.execute("INSERT INTO t VALUE {'id': 1}").unwrap();
        engine.execute("INSERT INTO t VALUE {'id': 2}").unwrap();
    }
    let wal = dir.join(WAL_FILE);
    let ends = wal_record_ends(&wal).expect("scan");
    let mut bytes = std::fs::read(&wal).expect("read");
    bytes[(ends[0] + 12) as usize] ^= 0x20; // inside the second record
    std::fs::write(&wal, &bytes).expect("write");

    let result = catch_unwind(AssertUnwindSafe(|| {
        Engine::open(durable_config(&dir, None))
    }))
    .expect("corruption must not panic");
    match result {
        Err(Error::Durability(e)) => match *e {
            DurabilityError::Corrupt { offset, .. } => {
                assert_eq!(offset, ends[0], "corruption pinned to the damaged record");
            }
            other => panic!("expected corruption, got {other}"),
        },
        Err(e) => panic!("expected corruption, got {e}"),
        Ok(_) => panic!("corrupted log must not open"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3: WAL replay prefix-differential. Recovering from every
/// record-boundary prefix of the log yields exactly the catalog state
/// after the corresponding commit prefix — replay is statement-exact,
/// not just eventually-right.
#[test]
fn every_wal_prefix_recovers_to_the_matching_commit_prefix() {
    let dir = tmp_dir("prefix-src");
    let engine = Engine::open(durable_config(&dir, None)).expect("open");
    let twin = Engine::new();
    // No checkpoints here: the WAL must hold the whole history.
    let statements: Vec<String> = {
        let mut rng = Rng::new(0xD1FF);
        let mut v = vec!["CREATE TABLE t (id INT, v INT, tag STRING)".to_string()];
        v.extend((0..20).map(|i| workload_statement(&mut rng, i)));
        v
    };
    // Twin state after each commit prefix.
    let mut states = vec![catalog_state(&twin)];
    for stmt in &statements {
        engine.execute(stmt).expect("durable statement");
        twin.execute(stmt).expect("twin statement");
        states.push(catalog_state(&twin));
    }
    drop(engine);
    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).expect("read wal");
    let ends = wal_record_ends(&dir.join(WAL_FILE)).expect("scan");
    assert_eq!(ends.len(), statements.len(), "one record per statement");

    for prefix in 0..=ends.len() {
        let cut = if prefix == 0 {
            0
        } else {
            ends[prefix - 1] as usize
        };
        let pdir = tmp_dir(&format!("prefix-{prefix}"));
        std::fs::create_dir_all(&pdir).expect("mkdir");
        std::fs::write(pdir.join(WAL_FILE), &wal_bytes[..cut]).expect("write prefix");
        let recovered = Engine::open(durable_config(&pdir, None))
            .unwrap_or_else(|e| panic!("prefix {prefix}: recovery failed: {e}"));
        assert_eq!(
            catalog_state(&recovered),
            states[prefix],
            "prefix {prefix}: recovered state diverges from commit prefix"
        );
        // Both typing modes run real queries through the recovered
        // engine (the recovered schema drives strict-mode checking).
        for typing in [TypingMode::Permissive, TypingMode::StrictError] {
            let session = recovered.with_config(SessionConfig {
                typing,
                ..SessionConfig::default()
            });
            let r = session
                .query("SELECT VALUE e.id FROM t AS e")
                .map(|r| r.into_value());
            if prefix == 0 {
                assert!(r.is_err(), "prefix 0 has no table t");
            } else {
                r.unwrap_or_else(|e| panic!("prefix {prefix} {typing:?}: {e}"));
            }
        }
        let _ = std::fs::remove_dir_all(&pdir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acknowledged-commit durability under `SyncMode::Always`, stated
/// directly: run, crash (drop without checkpoint), recover, and every
/// acked statement is there — the sweep's pre/post window collapses to
/// exact equality when nothing was interrupted.
#[test]
fn acknowledged_commits_survive_an_uncheckpointed_crash() {
    let dir = tmp_dir("acked");
    let engine = Engine::open(durable_config(&dir, None)).expect("open");
    engine
        .execute("CREATE TABLE t (id INT, v INT, tag STRING)")
        .unwrap();
    let twin = Engine::new();
    twin.execute("CREATE TABLE t (id INT, v INT, tag STRING)")
        .unwrap();
    let mut rng = Rng::new(99);
    for i in 0..30 {
        let stmt = workload_statement(&mut rng, i);
        engine.execute(&stmt).unwrap();
        twin.execute(&stmt).unwrap();
    }
    let expected = catalog_state(&twin);
    drop(engine);
    let (recovered, report) =
        Engine::open_with_recovery(durable_config(&dir, None)).expect("recover");
    assert_eq!(report.replayed, 31, "all 31 records replay (no checkpoint)");
    assert_eq!(catalog_state(&recovered), expected);
    let _ = std::fs::remove_dir_all(&dir);
}
