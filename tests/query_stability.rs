//! The query-stability tenet (§I): "the result of a working query should
//! not change if a schema is imposed on existing data, so long as the
//! underlying data itself remains the same."
//!
//! We infer a schema from data, impose it (validated registration), and
//! check the engine produces byte-identical results; then we check that
//! conforming data admits the inferred schema by construction (property).

use sqlpp::Engine;
use sqlpp_schema::{infer_collection, infer_value, Validator};
use sqlpp_testkit::prop::values::{nested_value_with, ValueProfile};
use sqlpp_testkit::{gen, prop_assert, sqlpp_prop, Gen};
use sqlpp_value::{Tuple, Value};

fn sample_data() -> Value {
    sqlpp_formats::pnotation::from_pnotation(
        r#"{{
        {'id': 1, 'name': 'a', 'tags': ['x', 'y'], 'meta': {'v': 1}},
        {'id': 2, 'name': 'b', 'tags': []},
        {'id': 3, 'name': 'c', 'tags': ['z'], 'meta': {'v': 2}, 'extra': true}
    }}"#,
    )
    .unwrap()
}

const QUERIES: &[&str] = &[
    "SELECT d.id, d.name AS name FROM t AS d",
    "SELECT VALUE g FROM t AS d, d.tags AS g",
    "SELECT d.id FROM t AS d WHERE d.meta.v > 1",
    "SELECT d.id FROM t AS d WHERE d.extra IS NOT MISSING",
    "SELECT COUNT(*) AS n FROM t AS d",
];

#[test]
fn imposing_the_inferred_schema_changes_nothing() {
    let data = sample_data();
    let schemaless = Engine::new();
    schemaless.register("t", data.clone());

    let element_type = infer_collection(&data).expect("collection");
    let schemaful = Engine::new();
    schemaful
        .register_with_schema("t", data, &element_type)
        .expect("inferred schema admits its source");

    for q in QUERIES {
        let a = schemaless.query(q).unwrap().canonical();
        let b = schemaful.query(q).unwrap().canonical();
        assert_eq!(a, b, "schema imposition changed the result of {q}");
    }
}

#[test]
fn nonconforming_data_is_rejected_at_registration() {
    let data = sample_data();
    let element_type = infer_collection(&data).expect("collection");
    let engine = Engine::new();
    let bad = sqlpp_value::bag![Value::Int(42)];
    let err = engine.register_with_schema("t", bad, &element_type);
    assert!(err.is_err(), "a bare integer is not an employee tuple");
}

/// The restricted leaf/key distribution the original suite used:
/// `NULL` / bools / small ints / short lowercase strings, single-letter
/// `[a-d]` attribute names (so duplicates occur).
fn stability_value() -> Gen<Value> {
    let leaf = gen::one_of(vec![
        gen::just(Value::Null),
        gen::any_bool().map(Value::Bool),
        gen::i64_range(-1000..1000).map(Value::Int),
        gen::char_string('a'..='z', 0..=4).map(Value::Str),
    ]);
    let profile = ValueProfile {
        key_chars: 'a'..='d',
        key_len: 1,
        with_missing: false,
        with_inexact: false,
        ..ValueProfile::default()
    };
    nested_value_with(profile, leaf)
}

sqlpp_prop! {
    #![config(cases = 128)]

    fn inference_is_sound(v in stability_value()) {
        // The inferred type admits the value it was inferred from…
        let ty = infer_value(&v);
        prop_assert!(ty.admits(&v), "{ty} should admit {v}");
    }

    fn validator_accepts_inferred_collections(
        items in gen::vec_of(stability_value(), 0..=7)
    ) {
        let coll = Value::Bag(items);
        if let Some(elem) = infer_collection(&coll) {
            prop_assert!(Validator::new(elem).is_valid(&coll));
        }
    }
}

/// Formerly `tests/query_stability.proptest-regressions` — the shrunk
/// counterexample was a tuple with a *duplicate* attribute name
/// (`{'c': null, 'c': false}`), which inference must admit too.
#[test]
fn regression_inference_admits_duplicate_attribute_names() {
    let mut t = Tuple::new();
    t.insert("c", Value::Null);
    t.insert("c", Value::Bool(false)); // Tuple::insert appends duplicates
    let v = Value::Tuple(t);
    let ty = infer_value(&v);
    assert!(ty.admits(&v), "{ty} should admit {v}");

    let coll = Value::Bag(vec![v]);
    if let Some(elem) = infer_collection(&coll) {
        assert!(Validator::new(elem).is_valid(&coll));
    }
}
