//! The query-stability tenet (§I): "the result of a working query should
//! not change if a schema is imposed on existing data, so long as the
//! underlying data itself remains the same."
//!
//! We infer a schema from data, impose it (validated registration), and
//! check the engine produces byte-identical results; then we check that
//! conforming data admits the inferred schema by construction (proptest).

use proptest::prelude::*;
use sqlpp::Engine;
use sqlpp_schema::{infer_collection, infer_value, Validator};
use sqlpp_value::{Tuple, Value};

fn sample_data() -> Value {
    sqlpp_formats::pnotation::from_pnotation(
        r#"{{
        {'id': 1, 'name': 'a', 'tags': ['x', 'y'], 'meta': {'v': 1}},
        {'id': 2, 'name': 'b', 'tags': []},
        {'id': 3, 'name': 'c', 'tags': ['z'], 'meta': {'v': 2}, 'extra': true}
    }}"#,
    )
    .unwrap()
}

const QUERIES: &[&str] = &[
    "SELECT d.id, d.name AS name FROM t AS d",
    "SELECT VALUE g FROM t AS d, d.tags AS g",
    "SELECT d.id FROM t AS d WHERE d.meta.v > 1",
    "SELECT d.id FROM t AS d WHERE d.extra IS NOT MISSING",
    "SELECT COUNT(*) AS n FROM t AS d",
];

#[test]
fn imposing_the_inferred_schema_changes_nothing() {
    let data = sample_data();
    let schemaless = Engine::new();
    schemaless.register("t", data.clone());

    let element_type = infer_collection(&data).expect("collection");
    let schemaful = Engine::new();
    schemaful
        .register_with_schema("t", data, &element_type)
        .expect("inferred schema admits its source");

    for q in QUERIES {
        let a = schemaless.query(q).unwrap().canonical();
        let b = schemaful.query(q).unwrap().canonical();
        assert_eq!(a, b, "schema imposition changed the result of {q}");
    }
}

#[test]
fn nonconforming_data_is_rejected_at_registration() {
    let data = sample_data();
    let element_type = infer_collection(&data).expect("collection");
    let engine = Engine::new();
    let bad = sqlpp_value::bag![Value::Int(42)];
    let err = engine.register_with_schema("t", bad, &element_type);
    assert!(err.is_err(), "a bare integer is not an employee tuple");
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        "[a-z]{0,4}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Bag),
            proptest::collection::vec(("[a-d]", inner), 0..4).prop_map(|pairs| {
                let mut t = Tuple::new();
                for (k, v) in pairs {
                    t.insert(k, v);
                }
                Value::Tuple(t)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn inference_is_sound(v in arb_value()) {
        // The inferred type admits the value it was inferred from…
        let ty = infer_value(&v);
        prop_assert!(ty.admits(&v), "{ty} should admit {v}");
    }

    #[test]
    fn validator_accepts_inferred_collections(
        items in proptest::collection::vec(arb_value(), 0..8)
    ) {
        let coll = Value::Bag(items);
        if let Some(elem) = infer_collection(&coll) {
            prop_assert!(Validator::new(elem).is_valid(&coll));
        }
    }
}
