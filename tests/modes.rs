//! The two mode dials across the same queries: permissive vs stop-on-error
//! typing (§IV) and SQL-compat vs composability (§I, §V-A).

use sqlpp::{CompatMode, Engine, Error, SessionConfig, TypingMode};
use sqlpp_value::Value;

fn dirty_engine(typing: TypingMode) -> Engine {
    let engine = Engine::new().with_config(SessionConfig {
        typing,
        ..SessionConfig::default()
    });
    engine
        .load_pnotation(
            "d",
            "{{ {'id': 1, 'x': 10}, {'id': 2, 'x': 'oops'}, {'id': 3, 'x': 30} }}",
        )
        .unwrap();
    engine
}

#[test]
fn permissive_mode_excludes_unhealthy_data() {
    let engine = dirty_engine(TypingMode::Permissive);
    // §IV: "the processing of 'healthy' data can proceed, while a
    // convenient signal, which most often leads to data exclusion,
    // happens for the data that led to typing errors."
    let r = engine
        .query("SELECT VALUE d.x * 2 FROM d AS d WHERE d.x * 2 > 0")
        .unwrap();
    assert_eq!(r.canonical().to_string(), "{{20, 60}}");
}

#[test]
fn permissive_mode_keeps_missing_in_projection() {
    let engine = dirty_engine(TypingMode::Permissive);
    let r = engine
        .query("SELECT d.id, d.x * 2 AS double_x FROM d AS d")
        .unwrap();
    // Row 2's double_x is MISSING → the attribute is simply absent.
    let rows = r.rows();
    let absent = rows
        .iter()
        .filter(|t| !t.as_tuple().unwrap().contains("double_x"))
        .count();
    assert_eq!(absent, 1);
}

#[test]
fn strict_mode_stops_on_the_first_type_error() {
    let engine = dirty_engine(TypingMode::StrictError);
    let err = engine
        .query("SELECT VALUE d.x * 2 FROM d AS d")
        .unwrap_err();
    assert!(matches!(err, Error::Eval(_)), "{err}");
    assert!(err.to_string().contains("type error"), "{err}");
}

#[test]
fn strict_mode_still_runs_clean_queries() {
    let engine = dirty_engine(TypingMode::StrictError);
    let r = engine
        .query("SELECT VALUE d.id FROM d AS d WHERE d.id > 1")
        .unwrap();
    assert_eq!(r.len(), 2);
}

#[test]
fn strict_mode_rejects_division_by_zero() {
    let engine = dirty_engine(TypingMode::StrictError);
    let err = engine.query("SELECT VALUE 1 / 0 FROM d AS d").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
    // Permissive mode: MISSING flows instead.
    let permissive = dirty_engine(TypingMode::Permissive);
    let r = permissive
        .query("SELECT VALUE (1 / 0) IS MISSING FROM d AS d LIMIT 1")
        .unwrap();
    assert_eq!(r.canonical().to_string(), "{{true}}");
}

#[test]
fn compat_flag_gates_scalar_coercion_not_select_value() {
    let engine = Engine::new();
    engine.load_pnotation("t", "{{ {'v': 7} }}").unwrap();
    // A SELECT VALUE subquery is identical under both modes (§V-A: "None
    // of this implicit 'magic' applies to SELECT VALUE").
    for compat in [CompatMode::SqlCompat, CompatMode::Composable] {
        let session = engine.with_config(SessionConfig {
            compat,
            ..SessionConfig::default()
        });
        let v = session.eval_expr("(SELECT VALUE t.v FROM t AS t)").unwrap();
        assert_eq!(v, sqlpp_value::bag![7i64], "{compat:?}");
    }
    // A sugar SELECT subquery in scalar position coerces only in compat.
    let compat = engine.with_config(SessionConfig::default());
    let composable = engine.with_config(SessionConfig {
        compat: CompatMode::Composable,
        ..SessionConfig::default()
    });
    assert_eq!(
        compat
            .eval_expr("(SELECT t.v AS v FROM t AS t) = 7")
            .unwrap(),
        Value::Bool(true)
    );
    assert_eq!(
        composable
            .eval_expr("(SELECT t.v AS v FROM t AS t) = 7")
            .unwrap(),
        Value::Bool(false),
        "a bag of tuples is not 7"
    );
}

#[test]
fn scalar_coercion_cardinality_by_typing_mode() {
    let engine = Engine::new();
    engine
        .load_pnotation("t", "{{ {'v': 1}, {'v': 2} }}")
        .unwrap();
    // Two rows in scalar position: MISSING when permissive, error when
    // strict.
    let r = engine
        .eval_expr("(SELECT t.v AS v FROM t AS t) IS MISSING")
        .unwrap();
    assert_eq!(r, Value::Bool(true));
    let strict = engine.with_config(SessionConfig {
        typing: TypingMode::StrictError,
        ..SessionConfig::default()
    });
    let err = strict
        .eval_expr("(SELECT t.v AS v FROM t AS t) = 1")
        .unwrap_err();
    assert!(err.to_string().contains("cardinality"), "{err}");
}

#[test]
fn pure_sql_agrees_across_all_four_mode_combinations() {
    let q = "SELECT e.g AS g, COUNT(*) AS n FROM t AS e GROUP BY e.g";
    let mut results = Vec::new();
    for compat in [CompatMode::SqlCompat, CompatMode::Composable] {
        for typing in [TypingMode::Permissive, TypingMode::StrictError] {
            let engine = Engine::new().with_config(SessionConfig {
                compat,
                typing,
                ..SessionConfig::default()
            });
            engine
                .load_pnotation("t", "{{ {'g': 1}, {'g': 1}, {'g': 2} }}")
                .unwrap();
            results.push(engine.query(q).unwrap().canonical());
        }
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}
