//! Cross-crate algebraic properties: comparison laws, serialization round
//! trips, and parser/printer inverses on generated inputs.

use proptest::prelude::*;
use sqlpp_syntax::{parse_expr, parse_query, print_expr, print_query};
use sqlpp_value::cmp::{deep_eq, total_cmp};
use sqlpp_value::{canonicalize, Tuple, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        Just(Value::Missing),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        "[ -~]{0,8}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..4).prop_map(Value::Bytes),
        (-10_000i64..10_000, 0u32..6)
            .prop_map(|(m, s)| Value::Decimal(sqlpp_value::Decimal::new(m as i128, s))),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Bag),
            proptest::collection::vec(("[a-e]{1,2}", inner), 0..4).prop_map(|pairs| {
                let mut t = Tuple::new();
                for (k, v) in pairs {
                    t.insert(k, v);
                }
                Value::Tuple(t)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn total_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        let ab = total_cmp(&a, &b);
        let ba = total_cmp(&b, &a);
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab == std::cmp::Ordering::Equal, deep_eq(&a, &b));
    }

    #[test]
    fn total_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        let (ab, bc, ac) = (total_cmp(&a, &b), total_cmp(&b, &c), total_cmp(&a, &c));
        if ab != Greater && bc != Greater {
            prop_assert_ne!(ac, Greater, "{:?} <= {:?} <= {:?}", a, b, c);
        }
    }

    #[test]
    fn hash_is_consistent_with_deep_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            sqlpp_value::hash::hash_value(v, &mut s);
            s.finish()
        };
        if deep_eq(&a, &b) {
            prop_assert_eq!(h(&a), h(&b), "equal values must hash equal");
        }
    }

    #[test]
    fn canonicalize_is_idempotent_and_equality_preserving(v in arb_value()) {
        let c1 = canonicalize(&v);
        let c2 = canonicalize(&c1);
        prop_assert_eq!(&c1, &c2);
        prop_assert!(deep_eq(&v, &c1));
    }

    #[test]
    fn ion_lite_round_trips_every_value(v in arb_value()) {
        let bytes = sqlpp_formats::ion_lite::to_ion_lite(&v);
        let back = sqlpp_formats::ion_lite::from_ion_lite(&bytes).unwrap();
        // Exact (structural) equality — ion-lite is lossless, including
        // NaN canonicalization handled by deep_eq for floats.
        prop_assert!(deep_eq(&back, &v), "{} != {}", back, v);
    }

    #[test]
    fn pnotation_round_trips_up_to_numeric_widening(v in arb_value()) {
        let text = v.to_string();
        let back = sqlpp_formats::pnotation::from_pnotation(&text)
            .unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"));
        prop_assert!(deep_eq(&back, &v), "{} != {}", back, v);
    }
}

/// Expression sources for the parse∘print = id property: built from
/// templates so they are always valid.
fn expr_corpus() -> Vec<String> {
    let atoms = ["1", "x.a", "'s'", "NULL", "MISSING", "[1, 2]", "{'k': v}"];
    let mut out: Vec<String> = Vec::new();
    for a in atoms {
        for b in atoms {
            out.push(format!("{a} + {b}"));
            out.push(format!("{a} = {b} AND NOT ({b} < {a})"));
            out.push(format!("CASE WHEN {a} = {b} THEN {a} ELSE {b} END"));
            out.push(format!("{a} IN ({b}, {a})"));
        }
    }
    out.push("COLL_AVG(SELECT VALUE t.x FROM c AS t WHERE t.y BETWEEN 1 AND 9)".into());
    out.push("EXISTS (FROM c AS t SELECT VALUE t)".into());
    out
}

#[test]
fn print_parse_is_identity_on_expressions() {
    for src in expr_corpus() {
        let e1 = parse_expr(&src).unwrap_or_else(|err| panic!("{src}: {err}"));
        let printed = print_expr(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of {printed}: {err}"));
        assert_eq!(e1, e2, "round trip changed {src} (printed {printed})");
    }
}

#[test]
fn print_parse_is_identity_on_the_corpus_queries() {
    for case in sqlpp_compat_kit::corpus() {
        let Ok(q1) = parse_query(case.query) else {
            continue; // expression-form cases (L16)
        };
        let printed = print_query(&q1);
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("case {}: reparse of {printed}: {e}", case.id));
        assert_eq!(q1, q2, "case {} changed under print∘parse", case.id);
    }
}
