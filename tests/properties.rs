//! Cross-crate algebraic properties: comparison laws, serialization round
//! trips, and parser/printer inverses on generated inputs.

use sqlpp::{Engine, SessionConfig, TypingMode};
use sqlpp_syntax::{parse_expr, parse_query, print_expr, print_query};
use sqlpp_testkit::prop::gen::{i64_range, just, one_of, vec_of};
use sqlpp_testkit::prop::values::{any_value, rows_of, small_scalar};
use sqlpp_testkit::prop::Gen;
use sqlpp_testkit::{prop_assert, prop_assert_eq, prop_assert_ne, sqlpp_prop};
use sqlpp_value::cmp::{deep_eq, total_cmp};
use sqlpp_value::{canonicalize, Tuple, Value};

sqlpp_prop! {
    #![config(cases = 128)]

    fn total_order_is_total_and_antisymmetric(a in any_value(), b in any_value()) {
        let ab = total_cmp(&a, &b);
        let ba = total_cmp(&b, &a);
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab == std::cmp::Ordering::Equal, deep_eq(&a, &b));
    }

    fn total_order_is_transitive(a in any_value(), b in any_value(), c in any_value()) {
        use std::cmp::Ordering::*;
        let (ab, bc, ac) = (total_cmp(&a, &b), total_cmp(&b, &c), total_cmp(&a, &c));
        if ab != Greater && bc != Greater {
            prop_assert_ne!(ac, Greater, "{:?} <= {:?} <= {:?}", a, b, c);
        }
    }

    fn hash_is_consistent_with_deep_eq(a in any_value(), b in any_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            sqlpp_value::hash::hash_value(v, &mut s);
            s.finish()
        };
        if deep_eq(&a, &b) {
            prop_assert_eq!(h(&a), h(&b), "equal values must hash equal");
        }
    }

    fn canonicalize_is_idempotent_and_equality_preserving(v in any_value()) {
        let c1 = canonicalize(&v);
        let c2 = canonicalize(&c1);
        prop_assert_eq!(&c1, &c2);
        prop_assert!(deep_eq(&v, &c1));
    }

    fn ion_lite_round_trips_every_value(v in any_value()) {
        let bytes = sqlpp_formats::ion_lite::to_ion_lite(&v);
        let back = sqlpp_formats::ion_lite::from_ion_lite(&bytes).unwrap();
        // Exact (structural) equality — ion-lite is lossless, including
        // NaN canonicalization handled by deep_eq for floats.
        prop_assert!(deep_eq(&back, &v), "{} != {}", back, v);
    }

    fn pnotation_round_trips_up_to_numeric_widening(v in any_value()) {
        let text = v.to_string();
        let back = sqlpp_formats::pnotation::from_pnotation(&text)
            .unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"));
        prop_assert!(deep_eq(&back, &v), "{} != {}", back, v);
    }

    // The evaluator's hash-based DISTINCT must agree with the obvious
    // quadratic deep_eq scan on duplicate-heavy inputs (small_scalar has
    // a narrow domain, so collisions are common).
    fn distinct_agrees_with_naive_deep_eq_dedupe(items in vec_of(small_scalar(), 0..=24)) {
        let engine = Engine::new();
        engine.register("c", Value::Bag(items.clone()));
        let got = engine.query("SELECT DISTINCT VALUE x FROM c AS x").unwrap();
        prop_assert!(
            got.matches(&Value::Bag(naive_distinct(&items))),
            "distinct diverged on {:?}: got {}", items, got.value()
        );
    }

    // Hash-bucketed INTERSECT ALL / EXCEPT ALL must agree with a naive
    // multiset reference that consumes right elements by deep_eq scan.
    fn set_ops_agree_with_naive_multiset_reference(
        left in vec_of(small_scalar(), 0..=20),
        right in vec_of(small_scalar(), 0..=20),
    ) {
        let engine = Engine::new();
        engine.register("l", Value::Bag(left.clone()));
        engine.register("r", Value::Bag(right.clone()));
        for (op, expected) in [
            ("INTERSECT", naive_multiset_op(&left, &right, true)),
            ("EXCEPT", naive_multiset_op(&left, &right, false)),
        ] {
            let q = format!(
                "SELECT VALUE x FROM l AS x {op} ALL SELECT VALUE y FROM r AS y"
            );
            let got = engine.query(&q).unwrap();
            prop_assert!(
                got.matches(&Value::Bag(expected.clone())),
                "{} ALL diverged on {:?} / {:?}: got {}, want {:?}",
                op, left, right, got.value(), expected
            );
        }
    }

    // Pathological float keys — NaN (any bit pattern), -0.0 vs 0.0, and
    // int/float numeric twins like 2 vs 2.0 — through every hash-keyed
    // path. The data model's bag equality (`deep_eq`) makes NaN equal to
    // NaN and -0.0 equal to 0.0, and `hash_value` canonicalizes both, so
    // the hash join, hash DISTINCT, and hash GROUP BY must each agree
    // with an oracle that never hashes: the nested-loop plan (optimizer
    // off), the Pseudocode 1–2 reference evaluator, and a quadratic
    // deep_eq scan, in both typing modes.
    fn pathological_float_keys_join_all_strategies_agree(
        left in float_key_rows(), right in float_key_rows(),
    ) {
        let q = "SELECT VALUE [x.v, y.v] FROM l AS x, r AS y WHERE x.k = y.k";
        let ast = parse_query(q).unwrap();
        for typing in [TypingMode::Permissive, TypingMode::StrictError] {
            let hash = join_prop_engine(&left, &right, typing, true);
            let nested = join_prop_engine(&left, &right, typing, false);
            let catalog = sqlpp::Catalog::new();
            catalog.set("l", left.clone());
            catalog.set("r", right.clone());
            let reference = sqlpp_eval::reference::eval_sfw_config(
                &ast,
                &catalog,
                sqlpp_eval::EvalConfig { typing, ..sqlpp_eval::EvalConfig::default() },
            );
            match (hash.query(q), nested.query(q), reference) {
                (Ok(a), Ok(b), Ok(c)) => {
                    prop_assert!(
                        a.matches(b.value()),
                        "hash vs nested-loop diverged ({typing:?})\n\
                         left {left}\nright {right}\nhash {}\nnested {}",
                        a.value(), b.value()
                    );
                    prop_assert!(
                        a.matches(&c),
                        "hash vs reference diverged ({typing:?})\n\
                         left {left}\nright {right}\nhash {}\nreference {c}",
                        a.value()
                    );
                }
                (Err(_), Err(_), Err(_)) => {}
                (a, b, c) => prop_assert!(
                    false,
                    "error behavior diverged ({typing:?})\nleft {left}\nright {right}\n\
                     hash {:?}\nnested {:?}\nreference {:?}",
                    a.map(|r| r.value().clone()), b.map(|r| r.value().clone()), c
                ),
            }
        }
    }

    fn pathological_float_keys_distinct_matches_quadratic_oracle(
        items in vec_of(float_key(), 0..=24),
    ) {
        for typing in [TypingMode::Permissive, TypingMode::StrictError] {
            let engine = Engine::new().with_config(SessionConfig {
                typing,
                ..SessionConfig::default()
            });
            engine.register("c", Value::Bag(items.clone()));
            let got = engine.query("SELECT DISTINCT VALUE x FROM c AS x").unwrap();
            prop_assert!(
                got.matches(&Value::Bag(naive_distinct(&items))),
                "DISTINCT diverged ({typing:?}) on {:?}: got {}",
                items, got.value()
            );
        }
    }

    fn pathological_float_keys_group_by_matches_quadratic_oracle(
        items in vec_of(float_key(), 0..=24),
    ) {
        for typing in [TypingMode::Permissive, TypingMode::StrictError] {
            let engine = Engine::new().with_config(SessionConfig {
                typing,
                ..SessionConfig::default()
            });
            engine.register(
                "c",
                Value::Bag(items.iter().map(|k| {
                    let mut t = Tuple::with_capacity(1);
                    t.insert("k", k.clone());
                    Value::Tuple(t)
                }).collect()),
            );
            let got = engine
                .query("SELECT VALUE [x.k, COUNT(*)] FROM c AS x GROUP BY x.k")
                .unwrap();
            let expected = Value::Bag(
                naive_group_counts(&items)
                    .into_iter()
                    .map(|(k, n)| Value::Array(vec![k, Value::Int(n)]))
                    .collect(),
            );
            prop_assert!(
                got.matches(&expected),
                "GROUP BY diverged ({typing:?}) on {:?}: got {}, want {expected}",
                items, got.value()
            );
        }
    }

    // The optimizer's hash equi-join must agree with the nested-loop
    // plan (optimizer off) on every join shape, in both typing modes —
    // including NULL and MISSING keys (which never hash-match, exactly
    // as `=` never yields TRUE on them) and residual conjuncts checked
    // after the key probe.
    fn hash_join_agrees_with_nested_loop_oracle(
        left in join_rows(), right in join_rows(),
    ) {
        const QUERIES: &[&str] = &[
            // INNER with a residual conjunct on both sides of the key.
            "SELECT VALUE [x.v, y.v] FROM l AS x JOIN r AS y \
             ON x.k = y.k AND x.v <= y.v",
            // LEFT with a build-side filter and a mixed residual; NULL
            // padding must survive the hash path.
            "SELECT VALUE [x.v, y.v] FROM l AS x LEFT JOIN r AS y \
             ON x.k = y.k AND y.v >= 0 AND x.v + y.v < 12",
            // Comma join + WHERE: the Filter-over-Correlate extraction.
            "SELECT VALUE [x.v, y.v] FROM l AS x, r AS y \
             WHERE x.k = y.k AND x.v <= y.v AND y.v >= -1",
        ];
        for typing in [TypingMode::Permissive, TypingMode::StrictError] {
            for q in QUERIES {
                let opt = join_prop_engine(&left, &right, typing, true);
                let raw = join_prop_engine(&left, &right, typing, false);
                match (opt.query(q), raw.query(q)) {
                    (Ok(a), Ok(b)) => prop_assert!(
                        a.matches(b.value()),
                        "join strategies diverged ({typing:?}) on {q}\n\
                         left {left}\nright {right}\nhash {}\nnested {}",
                        a.value(), b.value()
                    ),
                    (Err(_), Err(_)) => {}
                    (a, b) => prop_assert!(
                        false,
                        "error behavior diverged ({typing:?}) on {q}\n\
                         left {left}\nright {right}\nhash {:?}\nnested {:?}",
                        a.map(|r| r.value().clone()), b.map(|r| r.value().clone())
                    ),
                }
            }
        }
    }

    // The vectorized engine (batched pulls + bytecode expressions) must
    // be indistinguishable from the row-at-a-time tree-walking path on
    // join/group/sort shapes — the operators whose consume loops were
    // ported to the batch protocol — in both typing modes.
    fn batched_bytecode_agrees_with_row_path_on_joins_and_groups(
        left in join_rows(), right in join_rows(),
    ) {
        const QUERIES: &[&str] = &[
            "SELECT VALUE [x.v, y.v] FROM l AS x JOIN r AS y \
             ON x.k = y.k AND x.v <= y.v",
            "SELECT VALUE [x.v, y.v] FROM l AS x LEFT JOIN r AS y \
             ON x.k = y.k ORDER BY x.v LIMIT 7",
            "SELECT VALUE [x.k, COUNT(*)] FROM l AS x GROUP BY x.k",
            "SELECT DISTINCT VALUE x.v FROM l AS x WHERE x.v >= 0",
            "SELECT VALUE x.v FROM l AS x INTERSECT ALL SELECT VALUE y.v FROM r AS y",
        ];
        for typing in [TypingMode::Permissive, TypingMode::StrictError] {
            let batched = join_prop_engine(&left, &right, typing, true);
            let row = join_prop_engine(&left, &right, typing, true).with_config(SessionConfig {
                typing,
                batch_size: 1,
                compile_exprs: false,
                ..SessionConfig::default()
            });
            for q in QUERIES {
                match (batched.query(q), row.query(q)) {
                    (Ok(a), Ok(b)) => prop_assert!(
                        a.matches(b.value()),
                        "batched vs row path diverged ({typing:?}) on {q}\n\
                         left {left}\nright {right}\nbatched {}\nrow {}",
                        a.value(), b.value()
                    ),
                    (Err(_), Err(_)) => {}
                    (a, b) => prop_assert!(
                        false,
                        "error behavior diverged ({typing:?}) on {q}\n\
                         left {left}\nright {right}\nbatched {:?}\nrow {:?}",
                        a.map(|r| r.value().clone()), b.map(|r| r.value().clone())
                    ),
                }
            }
        }
    }
}

/// Every float a hash key can choke on: NaN under two bit patterns
/// (quiet and negative — `deep_eq` makes all NaNs one equivalence
/// class), the two zero signs, int/float numeric twins (2 vs 2.0 must
/// land in one bucket), and infinities.
fn float_key() -> Gen<Value> {
    one_of(vec![
        just(Value::Float(f64::NAN)),
        just(Value::Float(f64::from_bits(0xFFF8_0000_0000_0001))),
        just(Value::Float(-0.0)),
        just(Value::Float(0.0)),
        just(Value::Float(2.0)),
        just(Value::Int(2)),
        just(Value::Int(0)),
        just(Value::Float(f64::INFINITY)),
        just(Value::Float(f64::NEG_INFINITY)),
        i64_range(-2..3).map(|i| Value::Float(i as f64 + 0.5)),
    ])
}

/// Rows `{k, v}` with pathological float keys.
fn float_key_rows() -> Gen<Value> {
    rows_of(
        vec![("k", float_key()), ("v", i64_range(-3..10).map(Value::Int))],
        0..=8,
    )
}

/// GROUP BY oracle: first-occurrence key classes by pairwise `deep_eq`,
/// with per-class counts — O(n²), no hashing anywhere.
fn naive_group_counts(items: &[Value]) -> Vec<(Value, i64)> {
    let mut out: Vec<(Value, i64)> = Vec::new();
    for item in items {
        match out.iter_mut().find(|(k, _)| deep_eq(k, item)) {
            Some((_, n)) => *n += 1,
            None => out.push((item.clone(), 1)),
        }
    }
    out
}

/// Rows `{k, v}` whose keys collide often and include NULL and MISSING.
fn join_rows() -> Gen<Value> {
    let key = one_of(vec![
        i64_range(0..4).map(Value::Int),
        just(Value::Null),
        just(Value::Missing),
    ]);
    let val = i64_range(-3..10).map(Value::Int);
    rows_of(vec![("k", key), ("v", val)], 0..=10)
}

/// An engine with `l`/`r` registered and the given typing/optimizer
/// configuration.
fn join_prop_engine(left: &Value, right: &Value, typing: TypingMode, optimize: bool) -> Engine {
    let engine = Engine::new();
    engine.register("l", left.clone());
    engine.register("r", right.clone());
    engine.with_config(SessionConfig {
        typing,
        optimize,
        ..SessionConfig::default()
    })
}

/// First-occurrence DISTINCT by pairwise deep_eq — the O(n²) oracle.
fn naive_distinct(items: &[Value]) -> Vec<Value> {
    let mut out: Vec<Value> = Vec::new();
    for item in items {
        if !out.iter().any(|seen| deep_eq(seen, item)) {
            out.push(item.clone());
        }
    }
    out
}

/// Multiset INTERSECT ALL (`keep_matched`) / EXCEPT ALL (`!keep_matched`)
/// oracle: each left element consumes at most one deep_eq-equal right
/// element.
fn naive_multiset_op(left: &[Value], right: &[Value], keep_matched: bool) -> Vec<Value> {
    let mut pool: Vec<Option<Value>> = right.iter().cloned().map(Some).collect();
    let mut out = Vec::new();
    for l in left {
        let matched = pool
            .iter_mut()
            .find(|slot| slot.as_ref().is_some_and(|r| deep_eq(r, l)))
            .map(Option::take)
            .is_some();
        if matched == keep_matched {
            out.push(l.clone());
        }
    }
    out
}

/// Formerly `tests/properties.proptest-regressions` — the shrunk
/// counterexample `{'a': -922134.9894780187}` exercised float printing
/// precision through the text round trips.
#[test]
fn regression_float_attribute_survives_both_round_trips() {
    let mut t = Tuple::new();
    t.insert("a", Value::Float(-922134.9894780187));
    let v = Value::Tuple(t);

    let text = v.to_string();
    let back = sqlpp_formats::pnotation::from_pnotation(&text).unwrap();
    assert!(deep_eq(&back, &v), "pnotation: {back} != {v}");

    let bytes = sqlpp_formats::ion_lite::to_ion_lite(&v);
    let back = sqlpp_formats::ion_lite::from_ion_lite(&bytes).unwrap();
    assert!(deep_eq(&back, &v), "ion-lite: {back} != {v}");

    let c1 = canonicalize(&v);
    assert_eq!(c1, canonicalize(&c1));
}

/// Expression sources for the parse∘print = id property: built from
/// templates so they are always valid.
fn expr_corpus() -> Vec<String> {
    let atoms = ["1", "x.a", "'s'", "NULL", "MISSING", "[1, 2]", "{'k': v}"];
    let mut out: Vec<String> = Vec::new();
    for a in atoms {
        for b in atoms {
            out.push(format!("{a} + {b}"));
            out.push(format!("{a} = {b} AND NOT ({b} < {a})"));
            out.push(format!("CASE WHEN {a} = {b} THEN {a} ELSE {b} END"));
            out.push(format!("{a} IN ({b}, {a})"));
        }
    }
    out.push("COLL_AVG(SELECT VALUE t.x FROM c AS t WHERE t.y BETWEEN 1 AND 9)".into());
    out.push("EXISTS (FROM c AS t SELECT VALUE t)".into());
    out
}

#[test]
fn print_parse_is_identity_on_expressions() {
    for src in expr_corpus() {
        let e1 = parse_expr(&src).unwrap_or_else(|err| panic!("{src}: {err}"));
        let printed = print_expr(&e1);
        let e2 = parse_expr(&printed).unwrap_or_else(|err| panic!("reparse of {printed}: {err}"));
        assert_eq!(e1, e2, "round trip changed {src} (printed {printed})");
    }
}

#[test]
fn print_parse_is_identity_on_the_corpus_queries() {
    for case in sqlpp_compat_kit::corpus() {
        let Ok(q1) = parse_query(case.query) else {
            continue; // expression-form cases (L16)
        };
        let printed = print_query(&q1);
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("case {}: reparse of {printed}: {e}", case.id));
        assert_eq!(q1, q2, "case {} changed under print∘parse", case.id);
    }
}
