//! ROLLUP / CUBE / GROUPING SETS (§V-B: "SQL has additional analytical
//! features such as CUBE, ROLLUP, and GROUPING SETS for grouped
//! aggregation … These features are wholly compatible with SQL++").
//!
//! Each lowers to one GROUP … GROUP AS per grouping set, appended — the
//! Core stays tiny; the analytics are rewritings, like everything else.

use sqlpp::Engine;
use sqlpp_formats::pnotation::from_pnotation;

fn engine() -> Engine {
    let engine = Engine::new();
    engine
        .load_pnotation(
            "sales",
            r#"{{
            {'region': 'east', 'product': 'ax', 'amount': 10},
            {'region': 'east', 'product': 'bx', 'amount': 20},
            {'region': 'west', 'product': 'ax', 'amount': 30},
            {'region': 'west', 'product': 'ax', 'amount': 5}
        }}"#,
        )
        .unwrap();
    engine
}

fn check(query: &str, expected: &str) {
    let engine = engine();
    let want = from_pnotation(expected).unwrap();
    let got = engine.query(query).unwrap();
    assert!(
        got.matches(&want),
        "query {query}\n expected {want}\n got      {}",
        got.value()
    );
}

#[test]
fn rollup_produces_prefix_subtotals_and_grand_total() {
    check(
        "SELECT s.region, s.product, SUM(s.amount) AS total \
         FROM sales AS s GROUP BY ROLLUP (s.region, s.product)",
        r#"{{
            {'region': 'east', 'product': 'ax', 'total': 10},
            {'region': 'east', 'product': 'bx', 'total': 20},
            {'region': 'west', 'product': 'ax', 'total': 35},
            {'region': 'east', 'product': null, 'total': 30},
            {'region': 'west', 'product': null, 'total': 35},
            {'region': null, 'product': null, 'total': 65}
        }}"#,
    );
}

#[test]
fn cube_produces_every_subset() {
    check(
        "SELECT s.region, s.product, SUM(s.amount) AS total \
         FROM sales AS s GROUP BY CUBE (s.region, s.product)",
        r#"{{
            {'region': 'east', 'product': 'ax', 'total': 10},
            {'region': 'east', 'product': 'bx', 'total': 20},
            {'region': 'west', 'product': 'ax', 'total': 35},
            {'region': 'east', 'product': null, 'total': 30},
            {'region': 'west', 'product': null, 'total': 35},
            {'region': null, 'product': 'ax', 'total': 45},
            {'region': null, 'product': 'bx', 'total': 20},
            {'region': null, 'product': null, 'total': 65}
        }}"#,
    );
}

#[test]
fn grouping_sets_take_exactly_the_requested_sets() {
    check(
        "SELECT s.region, s.product, COUNT(*) AS n \
         FROM sales AS s \
         GROUP BY GROUPING SETS ((s.region), (s.product), ())",
        r#"{{
            {'region': 'east', 'product': null, 'n': 2},
            {'region': 'west', 'product': null, 'n': 2},
            {'region': null, 'product': 'ax', 'n': 3},
            {'region': null, 'product': 'bx', 'n': 1},
            {'region': null, 'product': null, 'n': 4}
        }}"#,
    );
}

#[test]
fn grouping_function_distinguishes_rollup_nulls_from_data_nulls() {
    let engine = Engine::new();
    engine
        .load_pnotation("t", "{{ {'k': null, 'v': 1}, {'k': 'a', 'v': 2} }}")
        .unwrap();
    let want = from_pnotation(
        r#"{{
            {'k': null, 'g': 0, 'v': 1},
            {'k': 'a', 'g': 0, 'v': 2},
            {'k': null, 'g': 1, 'v': 3}
        }}"#,
    )
    .unwrap();
    let got = engine
        .query(
            "SELECT t.k, GROUPING(t.k) AS g, SUM(t.v) AS v \
             FROM t AS t GROUP BY ROLLUP (t.k)",
        )
        .unwrap();
    assert!(got.matches(&want), "got {}", got.value());
}

#[test]
fn rollup_emits_the_grand_total_even_on_empty_input() {
    let engine = Engine::new();
    engine.load_pnotation("empty", "{{}}").unwrap();
    let r = engine
        .query("SELECT e.k, COUNT(*) AS n FROM empty AS e GROUP BY ROLLUP (e.k)")
        .unwrap();
    assert_eq!(r.canonical().to_string(), "{{{'k': null, 'n': 0}}}");
}

#[test]
fn group_as_composes_with_rollup() {
    // SQL++ twist: each grouping set's groups still expose GROUP AS.
    check(
        "SELECT s.region, \
                (SELECT VALUE v.s.amount FROM g AS v) AS amounts \
         FROM sales AS s GROUP BY ROLLUP (s.region) GROUP AS g",
        r#"{{
            {'region': 'east', 'amounts': {{10, 20}}},
            {'region': 'west', 'amounts': {{30, 5}}},
            {'region': null, 'amounts': {{10, 20, 30, 5}}}
        }}"#,
    );
}

#[test]
fn modifiers_round_trip_through_the_printer() {
    for q in [
        "SELECT s.region, SUM(s.amount) AS t FROM sales AS s \
         GROUP BY ROLLUP (s.region, s.product)",
        "SELECT s.region, SUM(s.amount) AS t FROM sales AS s \
         GROUP BY CUBE (s.region)",
        "SELECT s.region, COUNT(*) AS n FROM sales AS s \
         GROUP BY GROUPING SETS ((s.region), ())",
    ] {
        let ast1 = sqlpp_syntax::parse_query(q).unwrap();
        let printed = sqlpp_syntax::print_query(&ast1);
        let ast2 = sqlpp_syntax::parse_query(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(ast1, ast2, "{printed}");
    }
}

#[test]
fn grouping_outside_multi_set_grouping_is_zero() {
    check(
        "SELECT s.region, GROUPING(s.region) AS g FROM sales AS s \
         GROUP BY s.region",
        "{{ {'region': 'east', 'g': 0}, {'region': 'west', 'g': 0} }}",
    );
}
