//! Chaos suite: seeded, deterministic fault injection across queries
//! and DML (ISSUE 5 acceptance: ≥ 200 seeded runs, zero panics, and a
//! byte-identical catalog after every failed DML).
//!
//! Each run derives a [`FaultPlan`] from a printed seed — "fail the k-th
//! visit to the buffer / catalog / operator site" — wires it into the
//! engine through [`FaultInjector`], and asserts the three graceful-failure
//! invariants:
//!
//! 1. no panic crosses the public API boundary (every statement is run
//!    under `catch_unwind`; a panic fails the suite with its seed);
//! 2. the catalog is unchanged after any failed DML (snapshot compare of
//!    every stored collection's rendered value);
//! 3. the engine remains fully usable after a failed statement — the
//!    next query on the same session succeeds with correct results.
//!
//! A plan that never fires (the workload didn't reach the k-th visit) is
//! a boring pass: the statement must then succeed normally.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use sqlpp::{Engine, FaultInjector, SessionConfig};
use sqlpp_eval::EvalError;
use sqlpp_testkit::fault::FaultPlan;

/// The engine-side site names (`FaultSite::name()` values). Stable API:
/// `govern::tests::fault_site_names_are_stable` pins them.
const SITES: &[&str] = &["buffer", "catalog", "operator"];

/// Query shapes chosen to exercise every governed choke point: pipeline
/// breakers (ORDER BY, GROUP BY, DISTINCT, join build), catalog scans,
/// and plain per-row operator evaluation.
const SELECT_SHAPES: &[&str] = &[
    "SELECT VALUE e.name FROM emp AS e ORDER BY e.sal DESC",
    "SELECT e.dept AS dept, COUNT(*) AS n FROM emp AS e GROUP BY e.dept",
    "SELECT DISTINCT VALUE e.dept FROM emp AS e",
    "SELECT e.name AS name, d.loc AS loc FROM emp AS e JOIN dept AS d ON e.dept = d.dept",
    "SELECT VALUE e.sal + 1 FROM emp AS e WHERE e.sal > 10",
];

const DML_SHAPES: &[&str] = &[
    "INSERT INTO emp SELECT VALUE {'id': e.id + 100, 'name': e.name, \
     'sal': e.sal + 1, 'dept': e.dept} FROM emp AS e WHERE e.sal > 10",
    "DELETE FROM emp AS e WHERE e.sal > 50",
    "UPDATE emp AS e SET e.sal = e.sal * 2 WHERE e.dept = 'eng'",
];

fn fixture() -> Engine {
    let engine = Engine::new();
    engine
        .load_pnotation(
            "emp",
            "{{ {'id': 1, 'name': 'Ann', 'sal': 90, 'dept': 'eng'},
                {'id': 2, 'name': 'Bo',  'sal': 70, 'dept': 'eng'},
                {'id': 3, 'name': 'Cy',  'sal': 40, 'dept': 'ops'},
                {'id': 4, 'name': 'Di',  'sal': 20, 'dept': 'ops'},
                {'id': 5, 'name': 'Ed',  'sal': 55, 'dept': 'hr'} }}",
        )
        .unwrap();
    engine
        .load_pnotation(
            "dept",
            "{{ {'dept': 'eng', 'loc': 'SFO'},
                {'dept': 'ops', 'loc': 'NYC'},
                {'dept': 'hr',  'loc': 'AUS'} }}",
        )
        .unwrap();
    engine
}

/// A byte-comparable rendering of every collection in the catalog.
fn catalog_snapshot(engine: &Engine) -> Vec<(String, String)> {
    let mut names = engine.catalog().names();
    names.sort_by_key(|n| n.to_string());
    names
        .into_iter()
        .map(|n| {
            let v = engine.catalog().get(&n).expect("listed name resolves");
            (n.to_string(), v.to_string())
        })
        .collect()
}

/// Derives a session over `engine`'s catalog with `plan` wired in as the
/// fault hook.
fn chaos_session(engine: &Engine, plan: &Arc<FaultPlan>) -> Engine {
    let plan = Arc::clone(plan);
    engine.with_config(SessionConfig {
        fault: Some(FaultInjector::new(move |site| {
            plan.should_fail(site.name())
                .then(|| EvalError::Resource(format!("injected fault at {}", site.name())))
        })),
        ..SessionConfig::default()
    })
}

/// The clean follow-up probe: must succeed on the same session after a
/// failure. Only called once the plan has fired — a plan fires at most
/// once, so nothing can re-trip it here. (Before the plan fires, the
/// probe itself could legitimately reach the k-th visit and fail, which
/// would test nothing.)
fn assert_engine_usable(session: &Engine, seed: u64) {
    let r = session
        .query("SELECT VALUE COLL_COUNT(SELECT VALUE e.id FROM emp AS e)")
        .unwrap_or_else(|e| panic!("seed {seed}: engine unusable after failure: {e}"));
    assert!(
        r.rows()[0].as_int().unwrap() >= 1,
        "seed {seed}: follow-up query returned nonsense"
    );
}

#[test]
fn chaos_select_no_panic_and_engine_survives() {
    let mut fired = 0u32;
    for seed in 0..128u64 {
        let engine = fixture();
        let plan = Arc::new(FaultPlan::seeded(seed, SITES, 12));
        let session = chaos_session(&engine, &plan);
        let shape = SELECT_SHAPES[(seed as usize) % SELECT_SHAPES.len()];

        let outcome = catch_unwind(AssertUnwindSafe(|| session.query(shape)));
        let result = outcome
            .unwrap_or_else(|_| panic!("seed {seed}: panic crossed the API boundary on {shape:?}"));
        match result {
            Ok(_) => assert!(
                !plan.fired(),
                "seed {seed}: fault fired but query succeeded ({shape:?})"
            ),
            Err(e) => {
                assert!(plan.fired(), "seed {seed}: spurious failure: {e}");
                assert!(
                    e.to_string().contains("injected fault"),
                    "seed {seed}: wrong error surfaced: {e}"
                );
                fired += 1;
                assert_engine_usable(&session, seed);
            }
        }
    }
    // The suite is only meaningful if a healthy fraction of plans fire.
    assert!(fired >= 32, "only {fired}/128 select plans fired");
}

#[test]
fn chaos_dml_failed_statements_leave_catalog_byte_identical() {
    let mut fired = 0u32;
    for seed in 0..128u64 {
        let engine = fixture();
        let plan = Arc::new(FaultPlan::seeded(seed, SITES, 12));
        let session = chaos_session(&engine, &plan);
        let shape = DML_SHAPES[(seed as usize) % DML_SHAPES.len()];
        let before = catalog_snapshot(&engine);

        let outcome = catch_unwind(AssertUnwindSafe(|| session.execute(shape)));
        let result = outcome
            .unwrap_or_else(|_| panic!("seed {seed}: panic crossed the API boundary on {shape:?}"));
        match result {
            Ok(_) => assert!(
                !plan.fired(),
                "seed {seed}: fault fired but DML succeeded ({shape:?})"
            ),
            Err(e) => {
                assert!(plan.fired(), "seed {seed}: spurious failure: {e}");
                let after = catalog_snapshot(&engine);
                assert_eq!(
                    before, after,
                    "seed {seed}: catalog changed after failed DML ({shape:?})"
                );
                fired += 1;
                assert_engine_usable(&session, seed);
            }
        }
    }
    assert!(fired >= 32, "only {fired}/128 DML plans fired");
}

/// Regression for the batched governor audit: a governed batched scan
/// must observe the deadline/token at least once (a huge batch cannot
/// slip past unchecked — `Governed` ticks per batch and per 64 rows of
/// batch materialization) while the *real* clock inspections amortize to
/// no more than one per 512 rows.
#[test]
fn governed_batched_scan_checks_at_least_once_and_amortizes() {
    const ROWS: i64 = 10_000;
    let engine = Engine::new();
    engine.register(
        "big",
        sqlpp::value::Value::Bag((0..ROWS).map(sqlpp::value::Value::Int).collect()),
    );
    let session = engine.with_config(SessionConfig {
        limits: sqlpp::Limits::none().with_time(std::time::Duration::from_secs(3600)),
        ..SessionConfig::default()
    });
    let run = session
        .query_with_stats("SELECT VALUE x FROM big AS x WHERE x >= 0")
        .unwrap();
    assert_eq!(run.len(), ROWS as usize);
    let stats = run.stats().expect("stats collection was on");
    assert!(
        stats.cancel_checks >= 1,
        "a governed batched scan never checked its deadline"
    );
    assert!(
        stats.cancel_checks <= ROWS as u64 / 512,
        "{} real deadline checks for {ROWS} rows — batching failed to amortize",
        stats.cancel_checks
    );

    // And the check is not vacuous: a token cancelled up front aborts
    // the same batched scan instead of running it to completion.
    let token = sqlpp::CancelToken::new();
    token.cancel();
    let session = engine.with_config(SessionConfig {
        limits: sqlpp::Limits::none().with_cancel(token),
        ..SessionConfig::default()
    });
    let err = session
        .query("SELECT VALUE x FROM big AS x WHERE x >= 0")
        .expect_err("cancelled token must abort the batched scan");
    assert!(
        err.to_string().contains("cancel"),
        "wrong error for cancelled scan: {err}"
    );
}

/// The engine-side out-of-core site names (ISSUE 9). Stable API:
/// `govern::tests::fault_site_names_are_stable` pins them.
const SPILL_SITES: &[&str] = &["spill-write", "spill-read", "temp-file"];

/// Shapes whose pipeline breakers all overflow a ~1 KB byte budget:
/// external sort, Grace GROUP BY, Grace hash join — plus a top-k that
/// stays in memory (its seeds exercise the boring no-fire pass).
const SPILL_SHAPES: &[&str] = &[
    "SELECT VALUE b.id FROM big AS b ORDER BY b.k, b.id",
    "SELECT b.k AS k, COUNT(*) AS n FROM big AS b GROUP BY b.k",
    "SELECT a.id AS l, b.id AS r FROM big AS a JOIN big AS b ON a.k = b.k",
    "SELECT VALUE b.id FROM big AS b ORDER BY b.k, b.id LIMIT 5",
];

fn spill_fixture() -> Engine {
    let engine = Engine::new();
    let rows: Vec<String> = (0..64)
        .map(|i| format!("{{'id': {i}, 'k': {}}}", (i * 29) % 16))
        .collect();
    engine
        .load_pnotation("big", &format!("{{{{ {} }}}}", rows.join(", ")))
        .unwrap();
    engine
}

/// Spill-path chaos (ISSUE 9): inject failures at the three out-of-core
/// sites — temp-file creation, spill writes, spill reads — under a byte
/// budget small enough that every pipeline breaker spills. Invariants:
/// no panic crosses the API, only the injected error surfaces, no temp
/// file outlives its query (success or failure), and the session keeps
/// answering — including spilling again — after a mid-spill failure.
#[test]
fn chaos_spill_sites_fail_cleanly_and_leak_no_temp_files() {
    let mut fired = 0u32;
    for seed in 0..96u64 {
        let dir =
            std::env::temp_dir().join(format!("sqlpp-chaos-spill-{}-{seed}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let engine = spill_fixture();
        let plan = Arc::new(FaultPlan::seeded(seed, SPILL_SITES, 24));
        let hook = Arc::clone(&plan);
        let session = engine.with_config(SessionConfig {
            limits: sqlpp::Limits::none().with_memory_bytes(1_000),
            spill: Some(sqlpp::SpillConfig {
                dir: Some(dir.clone()),
                ..sqlpp::SpillConfig::default()
            }),
            fault: Some(FaultInjector::new(move |site| {
                hook.should_fail(site.name())
                    .then(|| EvalError::Resource(format!("injected fault at {}", site.name())))
            })),
            ..SessionConfig::default()
        });
        let shape = SPILL_SHAPES[(seed as usize) % SPILL_SHAPES.len()];

        let outcome = catch_unwind(AssertUnwindSafe(|| session.query(shape)));
        let result = outcome
            .unwrap_or_else(|_| panic!("seed {seed}: panic crossed the API boundary on {shape:?}"));
        match result {
            Ok(_) => assert!(
                !plan.fired(),
                "seed {seed}: fault fired but query succeeded ({shape:?})"
            ),
            Err(e) => {
                assert!(plan.fired(), "seed {seed}: spurious failure: {e}");
                assert!(
                    e.to_string().contains("injected fault"),
                    "seed {seed}: wrong error surfaced: {e}"
                );
                fired += 1;
                // A mid-spill failure must not leave the session broken:
                // the next query — which spills again — still answers.
                let r = session
                    .query("SELECT VALUE b.id FROM big AS b ORDER BY b.k, b.id")
                    .unwrap_or_else(|e| {
                        panic!("seed {seed}: engine unusable after mid-spill failure: {e}")
                    });
                assert_eq!(r.len(), 64, "seed {seed}: follow-up lost rows");
            }
        }
        // Success or failure: every spill temp file has been reclaimed.
        let leaked: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(
            leaked.is_empty(),
            "seed {seed}: {} temp files leaked in {dir:?}",
            leaked.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(fired >= 24, "only {fired}/96 spill plans fired");
}

#[test]
fn fault_free_session_is_unaffected_by_the_hook_machinery() {
    // A plan with k = 0 never fires; every shape must run normally.
    let engine = fixture();
    let plan = Arc::new(FaultPlan::fail_kth("buffer", 0));
    let session = chaos_session(&engine, &plan);
    for shape in SELECT_SHAPES {
        session
            .query(shape)
            .unwrap_or_else(|e| panic!("no-fault plan broke {shape:?}: {e}"));
    }
    assert!(plan.hits("operator") > 0, "operator site was never visited");
}
