//! Out-of-core differential suite (ISSUE 9): every spilling pipeline
//! breaker must agree with its in-memory twin, and the top-k rewrite
//! must agree with the ORDER BY + LIMIT plan it replaces.
//!
//! * external merge-sort ≡ in-memory sort (exact order) ≡ a Rust
//!   reference oracle, under both typing modes;
//! * Grace hash join and Grace GROUP BY ≡ their in-memory paths as
//!   multisets (bags are unordered — a spilled group-by emits in
//!   partition order, which is legal);
//! * `ORDER BY … LIMIT` fused to a bounded heap ≡ the unfused plan,
//!   including OFFSET, `LIMIT 0`, and limits larger than the input —
//!   and the heap never materializes more than O(k) rows, never spills;
//! * a byte-budget sweep straddling partition-size boundaries keeps the
//!   answer identical while peak tracked bytes stay within budget;
//! * successful spills reclaim every temp file;
//! * sort and top-k nodes execute their key expressions through the
//!   compiled bytecode engine (`expr=bytecode` in EXPLAIN ANALYZE).

use sqlpp::{Engine, ExecOutcome, Limits, SessionConfig, SpillConfig, TypingMode};

/// A deterministic scrambled fixture: `n` rows with non-monotonic sort
/// keys (`k`, n/4 distinct values, four duplicates each — join and
/// group-by fodder), and a string payload to give each row some byte
/// weight.
fn fixture(n: usize) -> Engine {
    let engine = Engine::new();
    let rows: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "{{'id': {i}, 'k': {}, 'tag': 'row-{}'}}",
                (i * 67) % (n / 4),
                i % 7
            )
        })
        .collect();
    engine
        .load_pnotation("big", &format!("{{{{ {} }}}}", rows.join(", ")))
        .unwrap();
    engine
}

fn spill_session(engine: &Engine, budget_bytes: u64) -> Engine {
    engine.with_config(SessionConfig {
        limits: Limits::none().with_memory_bytes(budget_bytes),
        spill: Some(SpillConfig::default()),
        ..SessionConfig::default()
    })
}

const SORT_Q: &str = "SELECT VALUE b.id FROM big AS b ORDER BY b.k, b.id";

#[test]
fn external_sort_matches_in_memory_sort_exactly() {
    let engine = fixture(500);
    let baseline = engine.query_with_stats(SORT_Q).unwrap();
    assert_eq!(
        baseline.stats().unwrap().spill_partitions,
        0,
        "unlimited session must not spill"
    );
    let spilled = spill_session(&engine, 2_000)
        .query_with_stats(SORT_Q)
        .unwrap();
    let stats = spilled.stats().unwrap().clone();
    assert!(stats.spill_partitions > 0, "2 KB budget must force runs");
    assert!(stats.spill_bytes_written > 0);
    assert!(
        stats.peak_budget_bytes <= 2_000,
        "peak {} exceeded the byte budget",
        stats.peak_budget_bytes
    );
    // Exact order, not just multiset: ORDER BY promises the sequence.
    assert_eq!(
        spilled.into_value().to_string(),
        baseline.into_value().to_string()
    );
}

/// The engine (spilling and not) against a plain Rust sort of the same
/// keys — the §II Pseudocode semantics of ORDER BY, written by hand.
#[test]
fn external_sort_agrees_with_the_reference_oracle() {
    let n = 300usize;
    let m = (n / 4) as i64;
    let mut oracle: Vec<(i64, i64)> = (0..n as i64).map(|i| ((i * 67) % m, i)).collect();
    oracle.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1))); // k DESC, id ASC
    let expected = format!(
        "{{{{{}}}}}",
        oracle
            .iter()
            .map(|(_, id)| id.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let q = "SELECT VALUE b.id FROM big AS b ORDER BY b.k DESC, b.id";
    let engine = fixture(n);
    for typing in [TypingMode::Permissive, TypingMode::StrictError] {
        for budget in [None, Some(1_500u64)] {
            let session = engine.with_config(SessionConfig {
                typing,
                limits: budget.map_or_else(Limits::none, |b| Limits::none().with_memory_bytes(b)),
                spill: budget.map(|_| SpillConfig::default()),
                ..SessionConfig::default()
            });
            let got = session.query(q).unwrap().into_value().to_string();
            assert_eq!(got, expected, "typing={typing:?} budget={budget:?}");
        }
    }
}

#[test]
fn top_k_matches_order_by_limit() {
    let engine = fixture(200);
    let shapes = [
        "SELECT VALUE b.id FROM big AS b ORDER BY b.k, b.id LIMIT 5",
        "SELECT VALUE b.id FROM big AS b ORDER BY b.k DESC, b.id LIMIT 5 OFFSET 3",
        "SELECT VALUE b.id FROM big AS b ORDER BY b.k LIMIT 0",
        "SELECT VALUE b.id FROM big AS b ORDER BY b.k, b.id LIMIT 1000",
        "SELECT b.id AS id, b.tag AS tag FROM big AS b ORDER BY b.k, b.id LIMIT 7 OFFSET 2",
    ];
    for q in shapes {
        let fused = engine.query(q).unwrap().into_value().to_string();
        let unfused = engine
            .with_config(SessionConfig {
                optimize: false,
                ..SessionConfig::default()
            })
            .query(q)
            .unwrap()
            .into_value()
            .to_string();
        assert_eq!(fused, unfused, "top-k diverged from ORDER BY + LIMIT: {q}");
    }
    // And the rewrite really is in the optimized plan.
    let plan = engine
        .explain("SELECT VALUE b.id FROM big AS b ORDER BY b.k LIMIT 5")
        .unwrap();
    assert!(
        plan.contains("top-k"),
        "no top-k in optimized plan:\n{plan}"
    );
}

/// The ISSUE 9 acceptance bound: a top-k over input 10× beyond any
/// reasonable budget holds O(k) rows, not O(n), and never touches disk.
#[test]
fn top_k_never_materializes_its_input() {
    let n = 2_000;
    let (k, off) = (10u64, 5u64);
    let engine = fixture(n);
    let run = spill_session(&engine, 4_000)
        .query_with_stats(&format!(
            "SELECT VALUE b.id FROM big AS b ORDER BY b.k, b.id LIMIT {k} OFFSET {off}"
        ))
        .unwrap();
    assert_eq!(run.len(), k as usize);
    let stats = run.stats().unwrap();
    assert_eq!(stats.spill_partitions, 0, "a bounded heap must not spill");
    assert!(
        stats.peak_budget_used <= 2 * (k + off) + 16,
        "top-k held {} rows for k+offset = {}",
        stats.peak_budget_used,
        k + off
    );
}

#[test]
fn spilled_group_by_and_join_match_in_memory_as_multisets() {
    let engine = fixture(400);
    let shapes = [
        // Grace GROUP BY with aggregates over duplicate-heavy keys.
        "SELECT b.k AS k, COUNT(*) AS n, SUM(b.id) AS total FROM big AS b GROUP BY b.k",
        // GROUP AS: whole groups round-trip through the spill codec.
        "SELECT kk AS kk, (SELECT VALUE x.b.id FROM grp AS x) AS ids \
         FROM big AS b GROUP BY b.k AS kk GROUP AS grp",
        // Grace hash join with a residual predicate.
        "SELECT a.id AS l, b.id AS r FROM big AS a JOIN big AS b \
         ON a.k = b.k AND a.id < b.id",
        // LEFT join: unmatched probe rows pad with NULL through the
        // spilled path too (the smallest id of each key group matches
        // nothing).
        "SELECT a.id AS l, b.id AS r FROM big AS a LEFT JOIN big AS b \
         ON a.k = b.k AND b.id < a.id",
    ];
    for q in shapes {
        let baseline = engine.query(q).unwrap().canonical().to_string();
        let run = spill_session(&engine, 3_000).query_with_stats(q).unwrap();
        let spill_partitions = run.stats().unwrap().spill_partitions;
        assert!(
            spill_partitions > 0,
            "3 KB budget did not force a spill: {q}"
        );
        assert_eq!(run.canonical().to_string(), baseline, "diverged: {q}");
    }
}

/// Sweeping the byte budget across partition-size boundaries: every
/// budget gives the same answer, and tracked memory never overshoots.
/// Small budgets recurse (partitions straddle); large ones barely spill.
#[test]
fn budget_sweep_straddles_partition_boundaries() {
    let engine = fixture(256);
    let sort_expected = engine.query(SORT_Q).unwrap().into_value().to_string();
    let group_q = "SELECT b.k AS k, COUNT(*) AS n FROM big AS b GROUP BY b.k";
    let group_expected = engine.query(group_q).unwrap().canonical().to_string();
    for budget in [600u64, 1_100, 2_300, 4_700, 9_500, 19_000] {
        let session = spill_session(&engine, budget);
        let sorted = session.query_with_stats(SORT_Q).unwrap();
        let stats = sorted.stats().unwrap().clone();
        assert!(
            stats.peak_budget_bytes <= budget,
            "budget {budget}: peak {} overshot",
            stats.peak_budget_bytes
        );
        assert_eq!(
            sorted.into_value().to_string(),
            sort_expected,
            "budget {budget}: sort diverged"
        );
        let grouped = session.query(group_q).unwrap();
        assert_eq!(
            grouped.canonical().to_string(),
            group_expected,
            "budget {budget}: group-by diverged"
        );
    }
}

/// Grace recursion splits skew across *distinct* keys; a single group
/// bigger than the whole budget is irreducible — hashing the same key
/// again never separates its rows. That must surface as the honest
/// budget refusal, not a hang or a silent overshoot.
#[test]
fn a_single_group_larger_than_the_budget_is_an_honest_refusal() {
    let engine = fixture(400);
    let err = spill_session(&engine, 1_000)
        .query("SELECT b.tag AS tag, COUNT(*) AS n FROM big AS b GROUP BY b.tag")
        .expect_err("seven ~57-row groups cannot fit a 1 KB budget");
    assert!(err.to_string().contains("memory budget"), "{err}");
}

#[test]
fn successful_spills_leave_no_temp_files() {
    let dir = std::env::temp_dir().join(format!("sqlpp-ooc-clean-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let engine = fixture(300);
    let session = engine.with_config(SessionConfig {
        limits: Limits::none().with_memory_bytes(2_000),
        spill: Some(SpillConfig {
            dir: Some(dir.clone()),
            ..SpillConfig::default()
        }),
        ..SessionConfig::default()
    });
    for q in [
        SORT_Q,
        "SELECT b.k AS k, COUNT(*) AS n FROM big AS b GROUP BY b.k",
        "SELECT a.id AS l, b.id AS r FROM big AS a JOIN big AS b ON a.k = b.k",
    ] {
        session.query(q).unwrap();
        let leaked: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(
            leaked.is_empty(),
            "{} temp files leaked after {q}",
            leaked.len()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// PR 8 satellite: sort and top-k keys go through the compiled
/// expression bytecode, visible per node in EXPLAIN ANALYZE — and a
/// spilling run tags the breaker that went out-of-core.
#[test]
fn sort_and_top_k_nodes_run_compiled_bytecode() {
    let engine = fixture(200);
    let analyze = |session: &Engine, q: &str| -> String {
        match session.execute(&format!("EXPLAIN ANALYZE {q}")).unwrap() {
            ExecOutcome::Explained { text } => text,
            other => panic!("expected an analysis, got {other:?}"),
        }
    };
    let text = analyze(
        &engine,
        "SELECT VALUE b.id FROM big AS b ORDER BY b.k LIMIT 5",
    );
    let topk_line = text
        .lines()
        .find(|l| l.contains("top-k"))
        .unwrap_or_else(|| panic!("no top-k node in:\n{text}"));
    assert!(topk_line.contains("expr=bytecode"), "{topk_line}");

    let session = spill_session(&engine, 2_000);
    let text = analyze(&session, SORT_Q);
    let sort_line = text
        .lines()
        .find(|l| l.contains("sort"))
        .unwrap_or_else(|| panic!("no sort node in:\n{text}"));
    assert!(sort_line.contains("expr=bytecode"), "{sort_line}");
    assert!(sort_line.contains("spilled"), "{sort_line}");
    assert!(text.contains("spill:"), "no spill counter summary:\n{text}");
}
