//! The composability tenet (§I): "The extensions … compose well with one
//! another and with SQL itself, much as functions in functional
//! programming languages do." These tests stack features in combinations
//! the paper never shows explicitly — if composability is real, they just
//! work.

use sqlpp::Engine;
use sqlpp_formats::pnotation::from_pnotation;

fn engine() -> Engine {
    let engine = Engine::new();
    engine
        .load_pnotation(
            "shop.orders",
            r#"{{
            {'id': 1, 'cust': 'ann',
             'lines': [{'sku': 'a', 'qty': 2, 'unit': 10},
                       {'sku': 'b', 'qty': 1, 'unit': 100}]},
            {'id': 2, 'cust': 'ann',
             'lines': [{'sku': 'a', 'qty': 1, 'unit': 10}]},
            {'id': 3, 'cust': 'bo', 'lines': []}
        }}"#,
        )
        .unwrap();
    engine
}

fn check(query: &str, expected: &str) {
    let engine = engine();
    let want = from_pnotation(expected).unwrap();
    let got = engine.query(query).unwrap();
    assert!(
        got.matches(&want),
        "query {query}\n expected {want}\n got      {}",
        got.value()
    );
}

#[test]
fn subquery_as_from_source() {
    // A whole query block is just a collection expression.
    check(
        "SELECT VALUE t.sku FROM \
         (SELECT l.sku AS sku, l.qty * l.unit AS amount \
          FROM shop.orders AS o, o.lines AS l) AS t \
         WHERE t.amount > 15",
        "{{'a', 'b'}}",
    );
}

#[test]
fn coll_aggregate_over_constructed_collection() {
    let engine = engine();
    let v = engine
        .eval_expr("COLL_SUM([1, 2, COLL_MAX(<<3, 4>>)])")
        .unwrap();
    assert_eq!(v, sqlpp_value::Value::Int(7));
}

#[test]
fn unpivot_a_constructed_tuple() {
    check(
        "SELECT a AS attr, v AS val \
         FROM UNPIVOT {'x': 1, 'y': 2} AS v AT a",
        "{{ {'attr': 'x', 'val': 1}, {'attr': 'y', 'val': 2} }}",
    );
}

#[test]
fn pivot_a_subquery() {
    // PIVOT over the result of a grouped aggregation: per-order totals
    // computed by a composable COLL_SUM in an inner block, summed per
    // customer, pivoted into one tuple. (An order with no lines has a
    // NULL total — COLL_SUM of an empty bag — so bo's sum is NULL.)
    check(
        "PIVOT row.total AT row.cust FROM \
         (SELECT t.cust AS cust, SUM(t.amount) AS total FROM \
           (SELECT o.cust AS cust, \
                   COLL_SUM(SELECT VALUE l.qty * l.unit FROM o.lines AS l) AS amount \
            FROM shop.orders AS o) AS t \
          GROUP BY t.cust) AS row",
        "{'ann': 130, 'bo': null}",
    );
}

#[test]
fn nested_group_as_two_levels() {
    // Group the groups: customers → orders → lines, re-nested the other
    // way around from the storage nesting.
    check(
        "FROM shop.orders AS o \
         GROUP BY o.cust AS cust GROUP AS g \
         SELECT cust, \
                (FROM g AS v \
                 GROUP BY COLL_COUNT(v.o.lines) AS n_lines GROUP AS g2 \
                 SELECT VALUE {'n_lines': n_lines, \
                               'order_ids': (FROM g2 AS w SELECT VALUE w.v.o.id)}) \
                AS orders_by_size",
        r#"{{
            {'cust': 'ann', 'orders_by_size': {{
                {'n_lines': 2, 'order_ids': {{1}}},
                {'n_lines': 1, 'order_ids': {{2}}}
            }}},
            {'cust': 'bo', 'orders_by_size': {{
                {'n_lines': 0, 'order_ids': {{3}}}
            }}}
        }}"#,
    );
}

#[test]
fn exists_correlated_through_two_levels() {
    check(
        "SELECT VALUE o.id FROM shop.orders AS o \
         WHERE EXISTS (SELECT VALUE l FROM o.lines AS l WHERE l.unit >= 100)",
        "{{1}}",
    );
}

#[test]
fn from_over_scalar_and_tuple_values() {
    // "FROM clause variables … can bind to any type of SQL++ data" —
    // including singletons in permissive mode.
    let engine = engine();
    let v = engine.query("SELECT VALUE x FROM 42 AS x").unwrap();
    assert_eq!(v.value().to_string(), "{{42}}");
    let v = engine
        .query("SELECT VALUE x.k FROM {'k': 'v'} AS x")
        .unwrap();
    assert_eq!(v.value().to_string(), "{{'v'}}");
}

#[test]
fn select_value_of_select_value() {
    check(
        "SELECT VALUE (SELECT VALUE l.qty FROM o.lines AS l) \
         FROM shop.orders AS o WHERE o.id = 1",
        "{{ {{2, 1}} }}",
    );
}

#[test]
fn order_by_deep_path_into_constructed_output() {
    let engine = engine();
    let r = engine
        .query(
            "SELECT o.id AS id, \
                    COLL_SUM(SELECT VALUE l.qty * l.unit FROM o.lines AS l) AS total \
             FROM shop.orders AS o \
             ORDER BY total DESC NULLS LAST",
        )
        .unwrap();
    let ids: Vec<i64> = r
        .rows()
        .iter()
        .map(|t| t.path("id").as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![1, 2, 3], "NULL total (empty lines) sorts last");
}

#[test]
fn union_of_unpivot_and_unnest() {
    check(
        "SELECT VALUE l.sku FROM shop.orders AS o, o.lines AS l \
         UNION SELECT VALUE a FROM UNPIVOT {'c': 1, 'd': 2} AS v AT a",
        "{{'a', 'b', 'c', 'd'}}",
    );
}

#[test]
fn group_by_a_nested_collection_key() {
    // Grouping keys may themselves be non-scalar: group orders by their
    // full set of SKUs (structural equality of bags).
    check(
        "SELECT g_key AS skus, COUNT(*) AS n FROM shop.orders AS o \
         GROUP BY (SELECT VALUE l.sku FROM o.lines AS l) AS g_key",
        r#"{{
            {'skus': {{'a', 'b'}}, 'n': 1},
            {'skus': {{'a'}}, 'n': 1},
            {'skus': {{}}, 'n': 1}
        }}"#,
    );
}
