//! Golden-file suite for the structured diagnostics pipeline: a gallery
//! of broken queries whose full caret-underlined multi-error reports are
//! pinned byte-for-byte under `tests/golden/diagnostics/`.
//!
//! Regenerate after an intentional rendering or recovery change with
//!
//! ```text
//! SQLPP_UPDATE_GOLDEN=1 cargo test --test diagnostics
//! ```
//!
//! and review the diff like any other code change.

use std::fs;
use std::path::Path;

use sqlpp_syntax::token::Tok;
use sqlpp_syntax::{lex, parse_expr, parse_statement_recovering, render_report};

/// The gallery: one entry per failure family the front end recovers
/// from. Names are the golden file stems.
const CASES: &[(&str, &str)] = &[
    ("missing_select_expr", "SELECT FROM t AS t"),
    (
        "three_broken_clauses",
        "SELECT 1 + FROM t AS t WHERE ORDER BY",
    ),
    ("unterminated_string", "SELECT 'oops FROM t AS t"),
    (
        "unterminated_string_resumes_next_line",
        "SELECT 'broken FROM x\nFROM t AS t WHERE",
    ),
    ("unterminated_backtick", "SELECT `motd FROM t AS t"),
    ("bad_escape", "SELECT 'a\\qb' FROM t AS t"),
    ("bad_number", "SELECT 1e FROM t AS t"),
    ("stray_characters", "SELECT # FROM ~ WHERE @"),
    ("trailing_garbage", "SELECT 1; SELECT 2"),
    (
        "depth_guard",
        "SELECT ((((((((((((((((((((((((((((((((((((((((((((((((((((((((((((1",
    ),
    ("missing_from_source", "SELECT x FROM WHERE x = 1"),
    ("empty_group_by", "SELECT x FROM t AS t GROUP BY"),
    (
        "join_without_condition",
        "SELECT * FROM a AS a JOIN b AS b ON",
    ),
    ("snowman", "SELECT \u{2603} FROM t AS t"),
    ("incomplete_case", "SELECT CASE WHEN x THEN FROM t AS t"),
    ("lonely_order_by", "ORDER BY x"),
];

fn report_for(src: &str) -> String {
    let rec = parse_statement_recovering(src);
    render_report(src, &rec.diags)
}

fn golden_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/diagnostics")
}

#[test]
fn golden_reports_match() {
    let dir = golden_dir();
    let update = std::env::var_os("SQLPP_UPDATE_GOLDEN").is_some();
    if update {
        fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for (name, src) in CASES {
        let got = format!("--- query\n{src}\n--- report\n{}", report_for(src));
        let path = dir.join(format!("{name}.txt"));
        if update {
            fs::write(&path, &got).expect("write golden");
            continue;
        }
        match fs::read_to_string(&path) {
            Ok(want) if want == got => {}
            Ok(want) => failures.push(format!(
                "{name}: report drifted from golden\n--- want\n{want}\n--- got\n{got}"
            )),
            Err(_) => failures.push(format!(
                "{name}: missing golden file {} (SQLPP_UPDATE_GOLDEN=1 to create)",
                path.display()
            )),
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn every_gallery_case_yields_spanned_diagnostics() {
    for (name, src) in CASES {
        let rec = parse_statement_recovering(src);
        assert!(!rec.diags.is_empty(), "{name}: no diagnostics for {src:?}");
        for d in &rec.diags {
            assert!(!d.code.is_empty(), "{name}: codeless diagnostic");
            assert!(
                d.span.end <= src.len() + 1,
                "{name}: span out of bounds: {d}"
            );
        }
    }
}

#[test]
fn three_independent_clause_errors_surface_in_one_parse() {
    let src = "SELECT 1 + FROM t AS t WHERE ORDER BY";
    let rec = parse_statement_recovering(src);
    assert_eq!(rec.diags.len(), 3, "{:?}", rec.diags);
    let hints: Vec<&str> = rec.diags.iter().filter_map(|d| d.hint.as_deref()).collect();
    for clause in ["SELECT clause", "WHERE clause", "ORDER BY clause"] {
        assert!(
            hints.iter().any(|h| h.contains(clause)),
            "no diagnostic names the {clause}: {hints:?}"
        );
    }
}

/// Satellite guarantee: every compatibility-corpus query with its last
/// token chopped off is reported gracefully — no panic, and when the
/// truncation actually breaks the query, the diagnostics name the
/// clause being parsed in at least 80% of cases.
#[test]
fn corpus_queries_with_the_last_token_deleted_report_the_clause() {
    let mut with_diags = 0u32;
    let mut clause_named = 0u32;
    for case in sqlpp_compat_kit::corpus() {
        let src = case.query;
        let Ok(tokens) = lex(src) else {
            continue; // corpus queries all lex today; stay robust
        };
        let Some(last) = tokens.iter().rev().find(|t| t.tok != Tok::Eof) else {
            continue;
        };
        let truncated = src[..last.span.start].trim_end().to_string();
        if truncated.is_empty() {
            continue;
        }
        let rec = std::panic::catch_unwind(|| parse_statement_recovering(&truncated))
            .unwrap_or_else(|_| panic!("{}: panicked on {truncated:?}", case.id));
        // Truncation can leave a *valid* query (e.g. dropping a final
        // DESC) or a valid bare expression; only broken ones count.
        if rec.diags.is_empty() || parse_expr(&truncated).is_ok() {
            continue;
        }
        with_diags += 1;
        let named = rec.diags.iter().any(|d| {
            d.hint
                .as_deref()
                .is_some_and(|h| h.contains("clause") || h.contains("statement"))
        });
        if named {
            clause_named += 1;
        }
    }
    assert!(
        with_diags >= 25,
        "only {with_diags} truncations broke a query"
    );
    assert!(
        clause_named * 100 >= with_diags * 80,
        "only {clause_named}/{with_diags} truncated queries named the clause being parsed"
    );
}
