//! Golden reproduction of every paper listing: the compatibility-kit
//! corpus, run in both modes, must pass completely. (The kit is also a
//! library; this test locks the workspace build to a green kit.)

use sqlpp::TypingMode;
use sqlpp_compat_kit::{corpus, run_all, Check};

#[test]
fn every_listing_and_kit_case_passes_in_both_modes() {
    let report = run_all(TypingMode::Permissive);
    let failures: Vec<String> = report
        .results
        .iter()
        .filter(|r| !r.passed)
        .map(|r| {
            format!(
                "{} [{:?}] expected {} got {}",
                r.id, r.mode, r.expected, r.actual
            )
        })
        .collect();
    assert!(failures.is_empty(), "failures:\n{}", failures.join("\n"));
}

#[test]
fn the_corpus_covers_every_queryable_listing() {
    // Listings with queries/results: 2, 4, 8, 9, 10/11, 12/13, 14, 15,
    // 16, 17, 18, 20/21, 22, 24/25, 26/28. (1, 3, 5, 6, 7, 19, 23, 27 are
    // data; 5 is DDL covered by sqlpp-schema's Hive tests.)
    let ids: Vec<&str> = corpus().iter().map(|c| c.id).collect();
    for required in [
        "L2", "L4", "L8", "L9", "L10", "L12", "L14", "L15", "L16", "L17", "L18", "L20", "L22",
        "L24", "L26",
    ] {
        assert!(ids.contains(&required), "missing listing case {required}");
    }
}

#[test]
fn error_cases_error_and_value_cases_parse() {
    for case in corpus() {
        if case.check != Check::Errors {
            assert!(
                !case.expected.trim().is_empty(),
                "case {} has an empty expectation",
                case.id
            );
        }
    }
}
