//! Workspace umbrella package: integration tests live in `tests/`, runnable examples in `examples/`. See the `sqlpp` crate for the library.
