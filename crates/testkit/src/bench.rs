//! A dependency-free micro-benchmark harness.
//!
//! Replaces criterion for this workspace's needs: warmup, automatic
//! per-sample iteration calibration, robust statistics (median, MAD,
//! p95 — chosen over mean/stddev because scheduler noise is one-sided),
//! and a machine-readable JSON report (`BENCH_<name>.json`) so perf PRs
//! can diff against a committed baseline.
//!
//! ```ignore
//! let mut h = Harness::new("seed", BenchConfig::from_args());
//! h.bench("agg_pipeline/pipelined/1000", || plan.execute(&engine).unwrap());
//! h.finish().unwrap();
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration. `from_args` understands `--quick` (shrink
/// warmup/samples for CI smoke runs) and `--name <s>` (report name).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Warmup duration per benchmark.
    pub warmup: Duration,
    /// Number of timed samples per benchmark.
    pub samples: usize,
    /// Target wall time per sample (iteration count is calibrated to it).
    pub target_sample_time: Duration,
    /// Quick mode: fewer/shorter samples, scaled-down workloads.
    pub quick: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(300),
            samples: 15,
            target_sample_time: Duration::from_millis(60),
            quick: false,
        }
    }
}

impl BenchConfig {
    /// The quick-mode configuration.
    pub fn quick() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(30),
            samples: 7,
            target_sample_time: Duration::from_millis(10),
            quick: true,
        }
    }

    /// Parses process arguments: `--quick`, `--name <report-name>`.
    /// Returns the config and the report name (default `"seed"`).
    pub fn from_args() -> (Self, String) {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick");
        let name = args
            .iter()
            .position(|a| a == "--name")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "seed".to_string());
        let cfg = if quick {
            BenchConfig::quick()
        } else {
            BenchConfig::default()
        };
        (cfg, name)
    }
}

/// One benchmark's robust summary statistics (all in nanoseconds per
/// iteration).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark identifier, e.g. `"agg_pipeline/pipelined/1000"`.
    pub id: String,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Median absolute deviation — robust spread.
    pub mad_ns: f64,
    /// 95th percentile per-iteration time.
    pub p95_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (calibrated).
    pub iters: u64,
    /// Optional named operator counters attached by the suite (e.g.
    /// SQL++ `ExecStats` probe counts) — reported alongside the timings.
    pub counters: Vec<(String, u64)>,
}

/// Collects [`BenchResult`]s and writes the JSON report.
pub struct Harness {
    name: String,
    cfg: BenchConfig,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness whose report will be written to `BENCH_<name>.json`.
    pub fn new(name: impl Into<String>, cfg: BenchConfig) -> Self {
        Harness {
            name: name.into(),
            cfg,
            results: Vec::new(),
        }
    }

    /// Whether quick mode is on — suites use this to scale workloads.
    pub fn quick(&self) -> bool {
        self.cfg.quick
    }

    /// Times `f`, printing one summary line and recording the result.
    /// The closure's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the work.
    pub fn bench<R>(&mut self, id: impl Into<String>, mut f: impl FnMut() -> R) {
        let id = id.into();
        // Calibration: find an iteration count filling the target sample
        // time (at least 1; growing geometrically like criterion).
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.cfg.target_sample_time || iters >= 1 << 20 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (self.cfg.target_sample_time.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 16)
                    as u64
            };
            iters = iters.saturating_mul(grow);
        }

        let warmup_deadline = Instant::now() + self.cfg.warmup;
        while Instant::now() < warmup_deadline {
            black_box(f());
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.cfg.samples);
        for _ in 0..self.cfg.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }

        let median = percentile(&mut per_iter_ns, 50.0);
        let mut deviations: Vec<f64> = per_iter_ns.iter().map(|x| (x - median).abs()).collect();
        let mad = percentile(&mut deviations, 50.0);
        let p95 = percentile(&mut per_iter_ns, 95.0);

        println!(
            "bench {id:<44} median {:>10}  mad {:>9}  p95 {:>10}  ({} x {iters} iters)",
            fmt_ns(median),
            fmt_ns(mad),
            fmt_ns(p95),
            per_iter_ns.len(),
        );
        self.results.push(BenchResult {
            id,
            median_ns: median,
            mad_ns: mad,
            p95_ns: p95,
            samples: per_iter_ns.len(),
            iters,
            counters: Vec::new(),
        });
    }

    /// Attaches named counters to the most recent benchmark (e.g. operator
    /// statistics from one instrumented execution of the same workload).
    /// No-op if nothing has been benchmarked yet.
    pub fn attach_counters(&mut self, counters: impl IntoIterator<Item = (String, u64)>) {
        if let Some(last) = self.results.last_mut() {
            last.counters.extend(counters);
            let rendered: Vec<String> = last
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            println!("      counters {}", rendered.join(" "));
        }
    }

    /// The results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes `BENCH_<name>.json` into the current directory (or
    /// `$SQLPP_BENCH_DIR`) and returns its path.
    pub fn finish(self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::env::var_os("SQLPP_BENCH_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        println!(
            "report: {} ({} benchmarks)",
            path.display(),
            self.results.len()
        );
        Ok(path)
    }

    /// The report as a JSON document (hand-rolled — hermetic build, no
    /// serde; the schema is flat so escaping identifiers suffices).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.results.len() * 160);
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": {},\n", json_string(&self.name)));
        out.push_str(&format!("  \"quick\": {},\n", self.cfg.quick));
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        out.push_str(&format!("  \"created_unix\": {unix},\n"));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let mut counters = String::new();
            if !r.counters.is_empty() {
                counters.push_str(", \"counters\": {");
                for (j, (k, v)) in r.counters.iter().enumerate() {
                    if j > 0 {
                        counters.push_str(", ");
                    }
                    counters.push_str(&format!("{}: {v}", json_string(k)));
                }
                counters.push('}');
            }
            out.push_str(&format!(
                "    {{\"id\": {}, \"median_ns\": {:.1}, \"mad_ns\": {:.1}, \
                 \"p95_ns\": {:.1}, \"samples\": {}, \"iters\": {}{counters}}}{}\n",
                json_string(&r.id),
                r.median_ns,
                r.mad_ns,
                r.p95_ns,
                r.samples,
                r.iters,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Nearest-rank-with-interpolation percentile; sorts in place.
fn percentile(xs: &mut [f64], p: f64) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let rank = (p / 100.0) * (xs.len() - 1) as f64;
    let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
    if lo == hi {
        xs[lo]
    } else {
        let frac = rank - lo as f64;
        xs[lo] * (1.0 - frac) + xs[hi] * frac
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(1),
            samples: 5,
            target_sample_time: Duration::from_micros(200),
            quick: true,
        }
    }

    #[test]
    fn bench_produces_sane_statistics() {
        let mut h = Harness::new("unit", tiny_cfg());
        h.bench("busy_loop", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i * i));
            }
            acc
        });
        let r = &h.results()[0];
        assert_eq!(r.id, "busy_loop");
        assert!(r.median_ns > 0.0);
        assert!(r.p95_ns >= r.median_ns);
        assert!(r.mad_ns >= 0.0);
        assert!(r.samples == 5 && r.iters >= 1);
    }

    #[test]
    fn json_report_is_well_formed() {
        let mut h = Harness::new("unit", tiny_cfg());
        h.bench("a/b\"c", || black_box(1 + 1));
        let json = h.to_json();
        assert!(json.contains("\"name\": \"unit\""));
        assert!(json.contains("\\\"c\""));
        assert!(json.contains("\"median_ns\""));
        // Balanced braces/brackets — cheap structural sanity.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn attached_counters_reach_the_json_report() {
        let mut h = Harness::new("unit", tiny_cfg());
        h.bench("with_counters", || black_box(2 + 2));
        h.attach_counters([("setop_probes".to_string(), 128u64)]);
        let json = h.to_json();
        assert!(
            json.contains("\"counters\": {\"setop_probes\": 128}"),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn percentile_is_correct_on_known_data() {
        let mut xs = vec![4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(percentile(&mut xs, 50.0), 3.0);
        assert_eq!(percentile(&mut xs, 0.0), 1.0);
        assert_eq!(percentile(&mut xs, 100.0), 5.0);
        let mut two = vec![10.0, 20.0];
        assert_eq!(percentile(&mut two, 50.0), 15.0);
    }
}
