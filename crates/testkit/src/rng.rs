//! Seedable, dependency-free pseudo-random number generation.
//!
//! Two generators, both public domain algorithms by Blackman & Vigna:
//!
//! * [`SplitMix64`] — a tiny 64-bit mixer used to expand one `u64` seed
//!   into the 256-bit state of the main generator (and useful on its own
//!   for hashing-style decorrelation of seeds).
//! * [`Rng`] — xoshiro256**, the workspace's workhorse generator:
//!   sub-nanosecond next, 2^256−1 period, passes BigCrush. Not
//!   cryptographic — it exists so workloads and property tests are
//!   deterministic and reproducible from a single printed seed.
//!
//! The API mirrors the small part of the `rand` crate the workspace used:
//! `gen_range`, `shuffle`, `choose`, `gen_bool`.

/// SplitMix64: one multiply-xorshift round per output.
///
/// Used to seed [`Rng`] so that close-together seeds (0, 1, 2, …) still
/// produce decorrelated streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One round of SplitMix64 as a pure function: mixes `seed` with `salt`.
/// Handy for deriving per-case seeds from a run seed.
pub fn mix(seed: u64, salt: u64) -> u64 {
    let mut sm = SplitMix64::new(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

/// xoshiro256**: the main deterministic generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// A generator whose 256-bit state is expanded from `seed` via
    /// SplitMix64 (the seeding procedure the algorithm's authors specify).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is the one invalid state; SplitMix64 cannot
        // produce four zero outputs in a row, but keep the guard explicit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output (upper bits, which are the strongest).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// An independent generator forked from this one's stream — use to
    /// give a sub-task its own stream without sharing `&mut`.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// A uniform `u64` in `[0, bound)` via Lemire's unbiased
    /// multiply-shift rejection method. `bound` must be nonzero.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut m = u128::from(self.next_u64()) * u128::from(bound);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                m = u128::from(self.next_u64()) * u128::from(bound);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform sample from `range`, which may be half-open (`lo..hi`)
    /// or inclusive (`lo..=hi`) over any primitive integer type, or a
    /// half-open `f64` range. Panics on empty ranges, like `rand`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.to_inclusive();
        T::sample_inclusive(self, lo, hi)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.bounded_u64(items.len() as u64) as usize])
        }
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from the inclusive range `[lo, hi]`.
    fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self;
    /// The predecessor, for converting `lo..hi` into `[lo, hi−1]`.
    fn prev(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                // Width as u64 offset; `span == 0` encodes the full u64
                // domain (only reachable for 64-bit types).
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                let offset = rng.bounded_u64(span as u64);
                ((lo as i128) + offset as i128) as $t
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty float range");
        lo + rng.next_f64() * (hi - lo)
    }
    fn prev(self) -> Self {
        self // float ranges stay half-open; `..=` and `..` coincide
    }
}

impl SampleUniform for char {
    fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty char range");
        // Sample code points, skipping the surrogate gap by resampling.
        loop {
            let cp = u32::sample_inclusive(rng, lo as u32, hi as u32);
            if let Some(c) = char::from_u32(cp) {
                return c;
            }
        }
    }
    fn prev(self) -> Self {
        char::from_u32(self as u32 - 1).unwrap_or('\0')
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// The inclusive `[lo, hi]` bounds of the range.
    fn to_inclusive(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn to_inclusive(self) -> (T, T) {
        (self.start, self.end.prev())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn to_inclusive(self) -> (T, T) {
        self.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the canonical C
        // implementation (Vigna, 2015).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_both_ends() {
        let mut r = Rng::new(7);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2000 {
            let v = r.gen_range(3..=9i64);
            assert!((3..=9).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 9;
        }
        assert!(saw_lo && saw_hi);
        for _ in 0..100 {
            let v = r.gen_range(0..5usize);
            assert!(v < 5);
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        // Extremes do not overflow.
        let _ = r.gen_range(i64::MIN..=i64::MAX);
        let _ = r.gen_range(u64::MIN..=u64::MAX);
        assert_eq!(r.gen_range(5..6u32), 5);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Rng::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        assert_ne!(v, orig, "50 elements staying put is ~impossible");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(orig.contains(r.choose(&orig).unwrap()));
        assert!(r.choose::<u32>(&[]).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::new(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
