//! A minimal, dependency-free property-testing framework.
//!
//! Design (Hypothesis-style "choice stream" shrinking):
//!
//! * A [`Gen<T>`] is a composable recipe that draws raw `u64`s from a
//!   [`Source`] and turns them into a `T`. All randomness flows through
//!   [`Source::draw`], which **records** the raw choices.
//! * When a property fails, the recorded choice stream is **shrunk**
//!   directly — chunks deleted, values zeroed and halved — and the
//!   generator replayed over the shrunk stream. Because every generator
//!   maps the zero draw to its simplest output (shortest vec, smallest
//!   int, first alternative), stream-level shrinking yields structurally
//!   minimal counterexamples without per-type shrinkers.
//! * Replay past the end of a shrunk stream yields zero draws, so every
//!   candidate stream decodes to *some* value and shrinking always
//!   terminates.
//!
//! The fixed [`DEFAULT_SEED`] makes `cargo test` deterministic; set
//! `SQLPP_PROP_SEED` to explore, `SQLPP_PROP_CASES` to scale case counts.
//! Failures are persisted (seed per property) under
//! `target/sqlpp-prop/`, and re-run first on the next invocation.
//!
//! The [`sqlpp_prop!`](crate::sqlpp_prop) macro gives `proptest!`-like
//! surface syntax; see the workspace `tests/` for ports.

use std::cell::Cell;
use std::fmt::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;

use crate::rng::{mix, Rng};

pub mod gen;
pub mod values;

/// The workspace-wide default seed: reproducible runs out of the box.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_2024;

/// Runtime configuration for one property.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run (default 64; env `SQLPP_PROP_CASES`
    /// overrides upward or downward).
    pub cases: u32,
    /// Base seed for the run (default [`DEFAULT_SEED`]; env
    /// `SQLPP_PROP_SEED` overrides).
    pub seed: u64,
    /// Cap on shrink candidate evaluations after a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("SQLPP_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let seed = std::env::var("SQLPP_PROP_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(DEFAULT_SEED);
        Config {
            cases,
            seed,
            max_shrink_iters: 4096,
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The tape of raw choices a generator draws from.
///
/// In *random* mode draws come from the PRNG and are recorded; in
/// *replay* mode they come from a (possibly shrunk) recorded stream,
/// padded with zeros past its end.
pub struct Source {
    rng: Option<Rng>,
    replay: Vec<u64>,
    pos: usize,
    record: Vec<u64>,
    collect_repr: bool,
    reprs: Vec<String>,
}

impl Source {
    /// A recording source drawing fresh randomness from `seed`.
    pub fn random(seed: u64) -> Self {
        Source {
            rng: Some(Rng::new(seed)),
            replay: Vec::new(),
            pos: 0,
            record: Vec::new(),
            collect_repr: false,
            reprs: Vec::new(),
        }
    }

    /// A source replaying a recorded stream (zero-padded past the end).
    pub fn replay(data: Vec<u64>) -> Self {
        Source {
            rng: None,
            replay: data,
            pos: 0,
            record: Vec::new(),
            collect_repr: false,
            reprs: Vec::new(),
        }
    }

    /// One raw choice. This is the *only* randomness entry point — every
    /// combinator builds on it, which is what makes stream shrinking
    /// universal.
    pub fn draw(&mut self) -> u64 {
        let v = match &mut self.rng {
            Some(rng) => rng.next_u64(),
            None => {
                let v = self.replay.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                v
            }
        };
        self.record.push(v);
        v
    }

    /// A draw mapped into `[0, bound)` such that the zero draw maps to 0
    /// (the "simplest" choice — shrinking relies on this monotonicity).
    /// The modulo bias is irrelevant at test-generation bound sizes.
    pub fn draw_below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            // Consume no entropy for forced choices: keeps streams short.
            return 0;
        }
        self.draw() % bound
    }

    /// An integer in `[lo, hi]`, zero-draw ↦ `lo`.
    pub fn draw_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128) as u128 + 1;
        if span > u128::from(u64::MAX) {
            return self.draw() as i64;
        }
        lo.wrapping_add(self.draw_below(span as u64) as i64)
    }

    /// A length/size in `[lo, hi]`, zero-draw ↦ `lo`.
    pub fn draw_len(&mut self, lo: usize, hi: usize) -> usize {
        self.draw_range_i64(lo as i64, hi as i64) as usize
    }

    /// A float in `[lo, hi)`, zero-draw ↦ `lo`.
    pub fn draw_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    /// Generates one argument of a property, recording its `Debug` repr
    /// when the runner is assembling a counterexample report. Used by the
    /// `sqlpp_prop!` macro; rarely called by hand.
    pub fn arg<T: std::fmt::Debug + 'static>(&mut self, name: &str, g: &Gen<T>) -> T {
        let v = g.generate(self);
        if self.collect_repr {
            self.reprs.push(format!("{name} = {v:?}"));
        }
        v
    }

    fn into_record(self) -> Vec<u64> {
        self.record
    }
}

/// A composable generator of `T` values.
///
/// Cheap to clone (an `Rc` around the closure). Build them from the
/// combinators in [`gen`] and [`values`], or from [`Gen::new`].
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            f: Rc::clone(&self.f),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a raw drawing function.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Runs the generator against a source.
    pub fn generate(&self, src: &mut Source) -> T {
        (self.f)(src)
    }

    /// Applies a pure function to every generated value.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |src| f(self.generate(src)))
    }

    /// A dependent generator: feed each value to `f` and run the
    /// generator it returns.
    pub fn flat_map<U: 'static>(self, f: impl Fn(T) -> Gen<U> + 'static) -> Gen<U> {
        Gen::new(move |src| f(self.generate(src)).generate(src))
    }
}

thread_local! {
    /// True while a property body is executing under the runner; the
    /// process-global panic hook stays quiet for those panics (each shrink
    /// candidate fails on purpose — hundreds of backtraces help nobody).
    static IN_PROPERTY: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_PROPERTY.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, converting a panic into the panic message.
fn run_case(f: &dyn Fn(&mut Source), src: &mut Source) -> Result<(), String> {
    install_quiet_hook();
    IN_PROPERTY.with(|flag| flag.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(src)));
    IN_PROPERTY.with(|flag| flag.set(false));
    match outcome {
        Ok(()) => Ok(()),
        Err(payload) => Err(payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string())),
    }
}

/// Replays `data`; `Some(message)` when the property still fails.
fn fails_on(f: &dyn Fn(&mut Source), data: &[u64]) -> Option<String> {
    let mut src = Source::replay(data.to_vec());
    run_case(f, &mut src).err()
}

/// Hashes one choice stream for the shrink cache.
fn stream_hash(data: &[u64]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    data.hash(&mut h);
    h.finish()
}

/// Greedy choice-stream shrinking: repeatedly tries structurally smaller
/// streams, keeping any candidate on which the property still fails,
/// until a full pass makes no progress (or the iteration budget runs
/// out). Returns the minimal stream and its failure message.
///
/// The different passes (and successive sweeps) often propose the same
/// candidate stream more than once — deleting index 0 of `[0, 1]` and
/// zeroing index 1 both yield `[0, …]` after replay padding, and every
/// sweep re-proposes the tail truncations. Replaying the property is the
/// expensive part, so a cache of already-tried stream hashes skips exact
/// duplicates without spending any of the iteration budget. (A 64-bit
/// hash collision would silently skip one novel candidate — harmless:
/// shrinking stays correct, at worst one step less minimal.)
fn shrink(
    f: &dyn Fn(&mut Source),
    mut data: Vec<u64>,
    mut message: String,
    budget: u32,
) -> (Vec<u64>, String) {
    let mut spent = 0u32;
    let mut tried: std::collections::HashSet<u64> = std::collections::HashSet::new();
    tried.insert(stream_hash(&data));
    let try_candidate = |candidate: &[u64],
                         data: &mut Vec<u64>,
                         message: &mut String,
                         spent: &mut u32,
                         tried: &mut std::collections::HashSet<u64>|
     -> bool {
        if *spent >= budget {
            return false;
        }
        if !tried.insert(stream_hash(candidate)) {
            return false; // exact stream already tried — skip for free
        }
        *spent += 1;
        if let Some(msg) = fails_on(f, candidate) {
            *data = candidate.to_vec();
            *message = msg;
            true
        } else {
            false
        }
    };

    let mut progressed = true;
    while progressed && spent < budget {
        progressed = false;

        // Pass 1: delete chunks, largest first (drops whole generated
        // substructures — vec elements, tuple attributes — because their
        // draws disappear from the stream).
        for chunk in [64usize, 16, 8, 4, 2, 1] {
            let mut i = 0;
            while i + chunk <= data.len() {
                let mut candidate = data.clone();
                candidate.drain(i..i + chunk);
                if try_candidate(&candidate, &mut data, &mut message, &mut spent, &mut tried) {
                    progressed = true;
                    // Stay at the same index: the next chunk shifted in.
                } else {
                    i += 1;
                }
            }
        }

        // Pass 2: zero out draws (zero is every combinator's simplest
        // choice), then binary-search values downward.
        for i in 0..data.len() {
            if data[i] == 0 {
                continue;
            }
            let mut candidate = data.clone();
            candidate[i] = 0;
            if try_candidate(&candidate, &mut data, &mut message, &mut spent, &mut tried) {
                progressed = true;
                continue;
            }
            while data[i] > 1 {
                let mut candidate = data.clone();
                candidate[i] /= 2;
                if !try_candidate(&candidate, &mut data, &mut message, &mut spent, &mut tried) {
                    break;
                }
                progressed = true;
            }
            if data[i] > 0 {
                let mut candidate = data.clone();
                candidate[i] -= 1;
                progressed |=
                    try_candidate(&candidate, &mut data, &mut message, &mut spent, &mut tried);
            }
        }

        // Pass 3: truncate the tail entirely.
        while !data.is_empty() {
            let candidate = data[..data.len() - 1].to_vec();
            if try_candidate(&candidate, &mut data, &mut message, &mut spent, &mut tried) {
                progressed = true;
            } else {
                break;
            }
        }
    }
    (data, message)
}

/// Replays the minimal stream once more, collecting the `Debug` reprs of
/// the property's arguments for the failure report.
fn describe(f: &dyn Fn(&mut Source), data: &[u64]) -> Vec<String> {
    let mut src = Source::replay(data.to_vec());
    src.collect_repr = true;
    let _ = run_case(f, &mut src);
    src.reprs
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn persist_dir() -> std::path::PathBuf {
    std::env::var_os("SQLPP_PROP_PERSIST_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/sqlpp-prop"))
}

/// Records a failing seed so the next run re-checks it first.
fn persist_failure(name: &str, seed: u64, repr: &str) {
    let dir = persist_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{}.seeds", sanitize(name)));
    let mut line = format!("0x{seed:016x}");
    let _ = write!(line, " # {}", repr.replace('\n', " "));
    line.truncate(240);
    line.push('\n');
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    if !existing.lines().any(|l| l.starts_with(&line[..18])) {
        let _ = std::fs::write(&path, existing + &line);
    }
}

/// Previously persisted failing seeds for this property.
fn persisted_seeds(name: &str) -> Vec<u64> {
    let path = persist_dir().join(format!("{}.seeds", sanitize(name)));
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter_map(|l| parse_seed(l.split('#').next().unwrap_or("")))
        .collect()
}

/// Runs a property: `cfg.cases` random cases (after replaying any
/// persisted regression seeds). On failure, shrinks the choice stream,
/// persists the seed, and panics with the minimal counterexample and
/// reproduction instructions.
///
/// Usually invoked via [`sqlpp_prop!`](crate::sqlpp_prop).
pub fn check(name: &str, cfg: &Config, property: impl Fn(&mut Source)) {
    let f: &dyn Fn(&mut Source) = &property;
    let mut case_seeds: Vec<(u64, &'static str)> = persisted_seeds(name)
        .into_iter()
        .map(|s| (s, "persisted regression"))
        .collect();
    case_seeds.extend((0..cfg.cases).map(|i| (mix(cfg.seed, u64::from(i)), "random")));

    for (i, (case_seed, kind)) in case_seeds.into_iter().enumerate() {
        let mut src = Source::random(case_seed);
        let Err(first_message) = run_case(f, &mut src) else {
            continue;
        };
        let record = src.into_record();
        let (minimal, message) = shrink(f, record, first_message, cfg.max_shrink_iters);
        let reprs = describe(f, &minimal);
        let counterexample = if reprs.is_empty() {
            "<no generated arguments>".to_string()
        } else {
            reprs.join("\n    ")
        };
        persist_failure(name, case_seed, &counterexample);
        panic!(
            "property {name} failed ({kind} case {i}, case seed 0x{case_seed:016x})\n\
             \x20 minimal counterexample (after shrinking):\n    {counterexample}\n\
             \x20 failure: {message}\n\
             \x20 reproduce: SQLPP_PROP_SEED=0x{run_seed:016x} cargo test -q {short}\n\
             \x20 (the failing seed is also persisted under {dir})",
            run_seed = cfg.seed,
            short = name.rsplit("::").next().unwrap_or(name),
            dir = persist_dir().display(),
        );
    }
}

/// `proptest!`-style surface syntax over [`check`].
///
/// ```ignore
/// sqlpp_prop! {
///     #![config(cases = 64)]
///     fn reverse_is_involutive(xs in gen::vec_of(gen::any_i64(), 0..=8)) {
///         let mut once = xs.clone();
///         once.reverse();
///         once.reverse();
///         prop_assert_eq!(once, xs);
///     }
/// }
/// ```
#[macro_export]
macro_rules! sqlpp_prop {
    (#![config($($key:ident = $val:expr),* $(,)?)] $($rest:tt)*) => {
        $crate::__sqlpp_prop_fns! { { $($key = $val),* } $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__sqlpp_prop_fns! { { } $($rest)* }
    };
}

/// Implementation detail of [`sqlpp_prop!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __sqlpp_prop_fns {
    ( { $($key:ident = $val:expr),* } ) => {};
    (
        { $($key:ident = $val:expr),* }
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $gen:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            #[allow(unused_mut)]
            let mut __cfg = $crate::prop::Config::default();
            $( __cfg.$key = $val; )*
            let __gens = ( $( $gen, )* );
            #[allow(non_snake_case, unused_variables)]
            {
                let ( $( $arg, )* ) = &__gens;
                $crate::prop::check(
                    concat!(module_path!(), "::", stringify!($name)),
                    &__cfg,
                    |__src| {
                        $( let $arg = __src.arg(stringify!($arg), $arg); )*
                        $body
                    },
                );
            }
        }
        $crate::__sqlpp_prop_fns! { { $($key = $val),* } $($rest)* }
    };
}

/// Asserts a condition inside a property; on failure the case is
/// reported, shrunk and persisted by the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A property that fails only on the exact stream `[0, 1]` never
    /// shrinks — and the duplicate candidates the passes propose
    /// (`[0]` via delete-index-1, truncate; `[0, 0]` via zero and
    /// decrement) must each replay only once.
    #[test]
    fn shrink_cache_skips_duplicate_candidate_streams() {
        let calls = Cell::new(0u32);
        let f = |src: &mut Source| {
            calls.set(calls.get() + 1);
            let a = src.draw();
            let b = src.draw();
            assert!(!(a == 0 && b == 1), "boom");
        };
        let (minimal, message) = shrink(&f, vec![0, 1], "boom".to_string(), 4096);
        assert_eq!(minimal, vec![0, 1], "no smaller stream fails");
        assert!(message.contains("boom"));
        // Distinct candidates: [], [1], [0], [0, 0]. Without the cache
        // the passes would replay [0] and [0, 0] twice each (6 runs).
        assert_eq!(calls.get(), 4, "duplicate candidate streams replayed");
    }

    /// The cache must never block progress: an always-failing property
    /// still shrinks to the empty stream.
    #[test]
    fn shrink_cache_preserves_minimization() {
        let f = |src: &mut Source| {
            let _ = src.draw();
            panic!("always");
        };
        let (minimal, _) = shrink(&f, vec![7, 7, 7, 7], "always".to_string(), 4096);
        assert!(minimal.is_empty(), "expected full shrink, got {minimal:?}");
    }
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}
