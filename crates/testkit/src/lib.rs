//! # sqlpp-testkit — hermetic, first-party test infrastructure
//!
//! This workspace builds with **zero external dependencies** (see
//! README.md, "Hermetic builds"); the price is that the testing stack —
//! previously `rand`, `proptest` and `criterion` — must live in-tree.
//! This crate is that stack, cut down to exactly what a deterministic,
//! reproducible verification of the paper's claims needs:
//!
//! | module | replaces | provides |
//! |---|---|---|
//! | [`rng`] | `rand` | SplitMix64 + xoshiro256\*\* with `gen_range` / `shuffle` / `choose` |
//! | [`prop`] | `proptest` | composable [`prop::Gen`] combinators, fixed-seed case iteration, choice-stream shrinking, persisted regression seeds, the [`sqlpp_prop!`] macro |
//! | [`bench`] | `criterion` | warmup + calibrated iteration timing, median/MAD/p95, `BENCH_<name>.json` reports |
//! | [`fault`] | (chaos harness) | seeded, deterministic [`fault::FaultPlan`]s — "fail the k-th visit to site S" — for the engine's fault-injection hooks |
//!
//! The paper's methodology leans on exactly these tools: differential
//! testing against a reference nested-loop semantics (the original SQL++
//! formation) and algebraic NULL/MISSING laws, both of which need a
//! generator + shrinker harness to be worth anything. Determinism is the
//! design center: every random stream is reproducible from one printed
//! `u64` seed.

#![warn(missing_docs)]

pub mod bench;
pub mod fault;
pub mod prop;
pub mod rng;

pub use prop::gen::{self as gen};
pub use prop::{Config as PropConfig, Gen, Source};
pub use rng::Rng;
