//! Generator combinators: the building blocks property tests compose.
//!
//! Every combinator maps the all-zero choice stream to its *simplest*
//! output — smallest number, empty collection, first alternative — which
//! is the contract the stream shrinker in [`super`] relies on.

use super::{Gen, Source};

/// Always the same value.
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone())
}

/// A lazily constructed generator — the building block for recursive
/// generators (construct the sub-generator only when a case needs it).
pub fn lazy<T: 'static>(build: impl Fn() -> Gen<T> + 'static) -> Gen<T> {
    Gen::new(move |src| build().generate(src))
}

/// A uniform `bool` (shrinks toward `false`).
pub fn any_bool() -> Gen<bool> {
    Gen::new(|src| src.draw_below(2) == 1)
}

/// The full `i64` domain, biased toward small magnitudes and the
/// classic boundary values (shrinks toward 0).
pub fn any_i64() -> Gen<i64> {
    Gen::new(|src| match src.draw_below(8) {
        0 => src.draw_range_i64(-16, 16),
        1 => *src_choose(src, &[0, 1, -1, i64::MAX, i64::MIN, 42]),
        _ => src.draw() as i64,
    })
}

fn src_choose<'a, T>(src: &mut Source, items: &'a [T]) -> &'a T {
    &items[src.draw_below(items.len() as u64) as usize]
}

/// An integer in `[lo, hi]` (shrinks toward `lo`).
pub fn i64_range(range: std::ops::Range<i64>) -> Gen<i64> {
    assert!(range.start < range.end, "empty range");
    let (lo, hi) = (range.start, range.end - 1);
    Gen::new(move |src| src.draw_range_i64(lo, hi))
}

/// A `u32` in `[lo, hi)` (shrinks toward `lo`).
pub fn u32_range(range: std::ops::Range<u32>) -> Gen<u32> {
    i64_range(i64::from(range.start)..i64::from(range.end)).map(|v| v as u32)
}

/// A `usize` in `[lo, hi)` (shrinks toward `lo`).
pub fn usize_range(range: std::ops::Range<usize>) -> Gen<usize> {
    i64_range(range.start as i64..range.end as i64).map(|v| v as usize)
}

/// A float in `[lo, hi)` (shrinks toward `lo`).
pub fn f64_range(range: std::ops::Range<f64>) -> Gen<f64> {
    let (lo, hi) = (range.start, range.end);
    Gen::new(move |src| src.draw_f64(lo, hi))
}

/// One of the alternatives, uniformly (shrinks toward the *first* —
/// order alternatives simplest-first, as with `prop_oneof!`).
pub fn one_of<T: 'static>(alternatives: Vec<Gen<T>>) -> Gen<T> {
    assert!(
        !alternatives.is_empty(),
        "one_of needs at least one alternative"
    );
    Gen::new(move |src| {
        let idx = src.draw_below(alternatives.len() as u64) as usize;
        alternatives[idx].generate(src)
    })
}

/// `None` or `Some` (shrinks toward `None`).
pub fn option_of<T: 'static>(inner: Gen<T>) -> Gen<Option<T>> {
    Gen::new(move |src| {
        if src.draw_below(2) == 1 {
            Some(inner.generate(src))
        } else {
            None
        }
    })
}

/// A vector with a length drawn from `len` (shrinks toward shorter).
pub fn vec_of<T: 'static>(element: Gen<T>, len: std::ops::RangeInclusive<usize>) -> Gen<Vec<T>> {
    let (lo, hi) = len.into_inner();
    Gen::new(move |src| {
        let n = src.draw_len(lo, hi);
        (0..n).map(|_| element.generate(src)).collect()
    })
}

/// A byte vector (shrinks toward empty / zero bytes).
pub fn bytes(len: std::ops::RangeInclusive<usize>) -> Gen<Vec<u8>> {
    vec_of(i64_range(0..256).map(|b| b as u8), len)
}

/// A string of characters drawn from an inclusive character range —
/// `char_string('a'..='z', 0..=4)` stands in for regex classes like
/// `[a-z]{0,4}` (shrinks toward shorter strings of the low character).
pub fn char_string(
    chars: std::ops::RangeInclusive<char>,
    len: std::ops::RangeInclusive<usize>,
) -> Gen<String> {
    let (clo, chi) = chars.into_inner();
    let (llo, lhi) = len.into_inner();
    Gen::new(move |src| {
        let n = src.draw_len(llo, lhi);
        (0..n)
            .map(|_| loop {
                let cp = src.draw_range_i64(clo as i64, chi as i64) as u32;
                if let Some(c) = char::from_u32(cp) {
                    return c;
                }
            })
            .collect()
    })
}

/// A printable-ASCII string — the `[ -~]{…}` idiom.
pub fn ascii_string(len: std::ops::RangeInclusive<usize>) -> Gen<String> {
    char_string(' '..='~', len)
}

/// A string over (nearly) the whole of Unicode, standing in for the
/// `\PC` any-printable-char idiom of fuzz-style generators: mixes ASCII,
/// Latin-1, BMP and astral-plane characters (shrinks toward ASCII).
pub fn unicode_string(len: std::ops::RangeInclusive<usize>) -> Gen<String> {
    let (llo, lhi) = len.into_inner();
    Gen::new(move |src| {
        let n = src.draw_len(llo, lhi);
        (0..n)
            .map(|_| match src.draw_below(4) {
                0 => src.draw_range_i64(0x20, 0x7e) as u8 as char,
                1 => char::from_u32(src.draw_range_i64(0x00, 0xff) as u32).unwrap(),
                2 => loop {
                    let cp = src.draw_range_i64(0x100, 0xffff) as u32;
                    if let Some(c) = char::from_u32(cp) {
                        break c;
                    }
                },
                _ => char::from_u32(src.draw_range_i64(0x1_0000, 0x1_f9ff) as u32)
                    .unwrap_or('\u{1F600}'),
            })
            .collect()
    })
}

/// Pairs of independent generators.
pub fn pair<A: 'static, B: 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::new(move |src| (a.generate(src), b.generate(src)))
}

/// Triples of independent generators.
pub fn triple<A: 'static, B: 'static, C: 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    Gen::new(move |src| (a.generate(src), b.generate(src), c.generate(src)))
}

/// A uniformly chosen element of a fixed slice (shrinks toward the
/// first element).
pub fn element_of<T: Clone + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "element_of needs a non-empty pool");
    Gen::new(move |src| items[src.draw_below(items.len() as u64) as usize].clone())
}

/// A corpus entry corrupted by a few structural mutations — chunk
/// deletion, duplication, character swap, truncation, or insertion of a
/// random printable character — always at `char` boundaries, so the
/// result is valid UTF-8 but rarely still well-formed. The fuzz idiom
/// for "almost right" inputs, which reach far deeper into a parser than
/// byte soup (shrinks toward the first corpus entry, unmutated).
pub fn mutated_string(corpus: Vec<String>) -> Gen<String> {
    assert!(
        !corpus.is_empty(),
        "mutated_string needs a non-empty corpus"
    );
    Gen::new(move |src| {
        let picked = &corpus[src.draw_below(corpus.len() as u64) as usize];
        let mut s: Vec<char> = picked.chars().collect();
        let rounds = src.draw_len(0, 4);
        for _ in 0..rounds {
            if s.is_empty() {
                break;
            }
            let n = s.len();
            let at = src.draw_below(n as u64) as usize;
            let len = src.draw_len(1, 8).min(n - at);
            match src.draw_below(5) {
                0 => {
                    s.drain(at..at + len);
                }
                1 => {
                    let chunk: Vec<char> = s[at..at + len].to_vec();
                    s.splice(at..at, chunk);
                }
                2 => {
                    let other = src.draw_below(n as u64) as usize;
                    s.swap(at, other);
                }
                3 => s.truncate(at),
                _ => {
                    let c = src.draw_range_i64(0x20, 0x7e) as u8 as char;
                    s.insert(at, c);
                }
            }
        }
        s.into_iter().collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::Source;

    fn sample<T: 'static>(g: &Gen<T>, seed: u64) -> T {
        g.generate(&mut Source::random(seed))
    }

    #[test]
    fn zero_stream_produces_simplest_values() {
        // The shrinker's contract: an all-zero replay is the minimum.
        let mut z = Source::replay(vec![]);
        assert_eq!(vec_of(any_i64(), 0..=9).generate(&mut z), Vec::<i64>::new());
        assert_eq!(i64_range(5..50).generate(&mut z), 5);
        assert!(!any_bool().generate(&mut z));
        assert_eq!(option_of(any_i64()).generate(&mut z), None);
        assert_eq!(ascii_string(0..=9).generate(&mut z), "");
        assert_eq!(one_of(vec![just(1), just(2), just(3)]).generate(&mut z), 1);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = vec_of(pair(any_i64(), ascii_string(0..=6)), 0..=10);
        assert_eq!(sample(&g, 99), sample(&g, 99));
    }

    #[test]
    fn ranges_and_lengths_are_respected() {
        let g = vec_of(i64_range(-3..4), 2..=5);
        for seed in 0..50 {
            let v = sample(&g, seed);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|x| (-3..4).contains(x)));
        }
        for seed in 0..50 {
            let s = sample(&char_string('a'..='c', 1..=3), seed);
            assert!((1..=3).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn mutated_strings_start_from_the_corpus_and_stay_utf8() {
        let corpus = vec![
            "SELECT VALUE x FROM t AS x".to_string(),
            "1 + 2".to_string(),
        ];
        let g = mutated_string(corpus.clone());
        // Zero stream: first corpus entry, unmutated (the shrink target).
        let mut z = Source::replay(vec![]);
        assert_eq!(g.generate(&mut z), corpus[0]);
        // Mutations actually fire, deterministically per seed.
        let mut changed = false;
        for seed in 0..60 {
            let s = sample(&g, seed);
            assert_eq!(s, sample(&g, seed));
            changed |= !corpus.contains(&s);
        }
        assert!(changed, "60 seeds and no mutation ever fired");
    }

    #[test]
    fn unicode_strings_are_valid_and_varied() {
        let g = unicode_string(0..=40);
        let mut non_ascii = false;
        for seed in 0..40 {
            let s = sample(&g, seed);
            non_ascii |= s.chars().any(|c| !c.is_ascii());
            assert!(s.chars().count() <= 40);
        }
        assert!(non_ascii, "40 unicode strings with no non-ASCII char");
    }
}
