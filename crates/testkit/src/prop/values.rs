//! Generators for SQL++ [`Value`]s — scalars, options, and recursively
//! nested arrays / bags / tuples — mirroring the shapes the paper's data
//! model allows (§II), including the awkward ones: NULL vs MISSING,
//! heterogeneous collections, duplicate attribute names.

use sqlpp_value::{Decimal, Tuple, Value};

use super::gen::{self};
use super::Gen;

/// Tunable distribution for [`nested_value`]. The defaults reproduce the
/// distribution the workspace's original proptest suites used.
#[derive(Debug, Clone)]
pub struct ValueProfile {
    /// Maximum nesting depth of arrays/bags/tuples.
    pub depth: u32,
    /// Maximum elements per collection / attributes per tuple.
    pub width: usize,
    /// Attribute-name alphabet (inclusive) — small on purpose so
    /// duplicate names actually occur.
    pub key_chars: std::ops::RangeInclusive<char>,
    /// Maximum attribute-name length.
    pub key_len: usize,
    /// Include `MISSING` among the scalar leaves.
    pub with_missing: bool,
    /// Include floats / decimals / bytes among the scalar leaves.
    pub with_inexact: bool,
}

impl Default for ValueProfile {
    fn default() -> Self {
        ValueProfile {
            depth: 3,
            width: 4,
            key_chars: 'a'..='e',
            key_len: 2,
            with_missing: true,
            with_inexact: true,
        }
    }
}

/// A scalar SQL++ value (no collections, no tuples).
pub fn scalar(profile: &ValueProfile) -> Gen<Value> {
    let mut leaves: Vec<Gen<Value>> = vec![
        gen::just(Value::Null),
        gen::any_bool().map(Value::Bool),
        gen::any_i64().map(Value::Int),
        gen::ascii_string(0..=8).map(Value::Str),
    ];
    if profile.with_missing {
        leaves.push(gen::just(Value::Missing));
    }
    if profile.with_inexact {
        leaves.push(gen::f64_range(-1e6..1e6).map(Value::Float));
        leaves.push(
            gen::pair(gen::i64_range(-10_000..10_000), gen::u32_range(0..6))
                .map(|(m, s)| Value::Decimal(Decimal::new(i128::from(m), s))),
        );
        leaves.push(gen::bytes(0..=4).map(Value::Bytes));
    }
    gen::one_of(leaves)
}

/// A small scalar: the restricted leaf set differential-style suites use
/// (`NULL`, bools, small ints, short lowercase strings).
pub fn small_scalar() -> Gen<Value> {
    gen::one_of(vec![
        gen::just(Value::Null),
        gen::any_bool().map(Value::Bool),
        gen::i64_range(-100..100).map(Value::Int),
        gen::char_string('a'..='c', 0..=3).map(Value::Str),
    ])
}

/// A recursively nested value under the given profile: nested value with
/// its own leaf distribution.
pub fn nested_value(profile: ValueProfile) -> Gen<Value> {
    let leaf = scalar(&profile);
    nested_value_with(profile, leaf)
}

/// [`nested_value`] with a custom leaf generator (e.g. [`small_scalar`]).
pub fn nested_value_with(profile: ValueProfile, leaf: Gen<Value>) -> Gen<Value> {
    Gen::new(move |src| generate_nested(src, &leaf, &profile, profile.depth))
}

/// [`nested_value`] with the default profile: the workhorse `arb_value()`
/// equivalent.
pub fn any_value() -> Gen<Value> {
    nested_value(ValueProfile::default())
}

fn generate_nested(
    src: &mut super::Source,
    leaf: &Gen<Value>,
    profile: &ValueProfile,
    depth: u32,
) -> Value {
    // Half the weight on leaves even when nesting is allowed, so
    // generated documents stay bounded in expectation.
    if depth == 0 || src.draw_below(2) == 0 {
        return leaf.generate(src);
    }
    match src.draw_below(3) {
        0 => Value::Array(
            (0..src.draw_len(0, profile.width))
                .map(|_| generate_nested(src, leaf, profile, depth - 1))
                .collect(),
        ),
        1 => Value::Bag(
            (0..src.draw_len(0, profile.width))
                .map(|_| generate_nested(src, leaf, profile, depth - 1))
                .collect(),
        ),
        _ => {
            let n = src.draw_len(0, profile.width);
            let (klo, khi) = profile.key_chars.clone().into_inner();
            let mut t = Tuple::new();
            for _ in 0..n {
                let klen = src.draw_len(1, profile.key_len.max(1));
                let key: String = (0..klen)
                    .map(|_| loop {
                        let cp = src.draw_range_i64(klo as i64, khi as i64) as u32;
                        if let Some(c) = char::from_u32(cp) {
                            break c;
                        }
                    })
                    .collect();
                t.insert(key, generate_nested(src, leaf, profile, depth - 1));
            }
            Value::Tuple(t)
        }
    }
}

/// A bag of flat tuples with the given attribute generators — the
/// "rows" shape SQL-compat suites generate. Attribute values come from
/// the paired generators; the row count from `rows`.
pub fn rows_of(
    attrs: Vec<(&'static str, Gen<Value>)>,
    rows: std::ops::RangeInclusive<usize>,
) -> Gen<Value> {
    let (lo, hi) = rows.into_inner();
    Gen::new(move |src| {
        let n = src.draw_len(lo, hi);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut t = Tuple::with_capacity(attrs.len());
            for (name, g) in &attrs {
                t.insert(*name, g.generate(src));
            }
            out.push(Value::Tuple(t));
        }
        Value::Bag(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::Source;

    #[test]
    fn zero_stream_is_a_simple_leaf() {
        let v = any_value().generate(&mut Source::replay(vec![]));
        assert_eq!(v, Value::Null, "all-zero stream must yield the first leaf");
    }

    #[test]
    fn nested_values_respect_the_depth_bound() {
        fn depth(v: &Value) -> u32 {
            match v {
                Value::Array(items) | Value::Bag(items) => {
                    1 + items.iter().map(depth).max().unwrap_or(0)
                }
                Value::Tuple(t) => 1 + t.iter().map(|(_, v)| depth(v)).max().unwrap_or(0),
                _ => 0,
            }
        }
        let g = any_value();
        let mut max_seen = 0;
        for seed in 0..200 {
            let v = g.generate(&mut Source::random(seed));
            let d = depth(&v);
            assert!(d <= 3, "depth {d} exceeds profile bound: {v:?}");
            max_seen = max_seen.max(d);
        }
        assert!(max_seen >= 2, "distribution never nests (max {max_seen})");
    }

    #[test]
    fn missing_can_be_generated_but_only_where_legal() {
        // MISSING may appear as a collection element but Tuple::insert
        // drops MISSING attributes, so no generated tuple stores one.
        fn contains_missing(v: &Value) -> bool {
            match v {
                Value::Missing => true,
                Value::Array(items) | Value::Bag(items) => items.iter().any(contains_missing),
                Value::Tuple(t) => t.iter().any(|(_, v)| contains_missing(v)),
                _ => false,
            }
        }
        let g = any_value();
        let mut saw_missing = false;
        for seed in 0..300 {
            let v = g.generate(&mut Source::random(seed));
            saw_missing |= contains_missing(&v);
        }
        assert!(saw_missing, "leaf distribution never produced MISSING");
    }

    #[test]
    fn rows_of_generates_flat_bags() {
        let g = rows_of(
            vec![
                ("id", gen::i64_range(0..10).map(Value::Int)),
                ("name", gen::char_string('a'..='z', 1..=4).map(Value::Str)),
            ],
            1..=6,
        );
        for seed in 0..40 {
            let v = g.generate(&mut Source::random(seed));
            let items = v.as_elements().unwrap();
            assert!((1..=6).contains(&items.len()));
            for item in items {
                let t = item.as_tuple().unwrap();
                assert!(t.contains("id") && t.contains("name"));
            }
        }
    }
}
