//! Deterministic fault injection — the chaos half of the resource
//! governor story.
//!
//! A [`FaultPlan`] decides, reproducibly from one printed `u64` seed,
//! *which* occurrence of *which* site fails: "the 7th buffer admission",
//! "the 2nd catalog read". The engine side exposes matching hooks (the
//! evaluator's `FaultInjector` consults a closure at each site visit);
//! tests bridge the two by capturing a shared plan in that closure and
//! keying on the site's stable string name (`"buffer"`, `"catalog"`,
//! `"operator"`).
//!
//! The plan is `Sync` (counters behind a `Mutex`) so a closure holding it
//! can satisfy the engine's `Send + Sync` hook bound, and deliberately
//! knows nothing about the engine — this crate stays dependency-free in
//! both directions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::rng::Rng;

/// A deterministic "fail the k-th visit to site S" plan.
///
/// Sites are identified by caller-chosen string keys. Each visit to a
/// site increments its hit counter; the visit whose 1-based ordinal
/// equals the planned `k` fails (once — a plan fires at most one fault,
/// which is what "the engine survives *a* mid-query failure" needs, and
/// keeps every chaos run's blast radius attributable to one site).
#[derive(Debug)]
pub struct FaultPlan {
    /// The targeted site and the 1-based ordinal of the failing visit.
    site: String,
    k: u64,
    /// Visits observed so far, per site key.
    hits: Mutex<HashMap<String, u64>>,
    /// Whether the planned fault has fired.
    fired: AtomicBool,
}

impl FaultPlan {
    /// Fails the `k`-th (1-based) visit to `site`. `k = 0` never fires
    /// (a convenient "no fault" plan).
    pub fn fail_kth(site: &str, k: u64) -> Self {
        FaultPlan {
            site: site.to_string(),
            k,
            hits: Mutex::new(HashMap::new()),
            fired: AtomicBool::new(false),
        }
    }

    /// A seed-derived plan: picks one of `sites` and an ordinal in
    /// `1..=max_k`, uniformly. The same seed always yields the same plan,
    /// so a failing chaos case reproduces from its printed seed.
    pub fn seeded(seed: u64, sites: &[&str], max_k: u64) -> Self {
        assert!(!sites.is_empty(), "seeded plan needs at least one site");
        assert!(max_k >= 1, "seeded plan needs max_k >= 1");
        let mut rng = Rng::new(seed);
        let site = *rng.choose(sites).expect("sites is non-empty");
        let k = rng.gen_range(1..=max_k);
        FaultPlan::fail_kth(site, k)
    }

    /// Records one visit to `site`; true when this visit is the planned
    /// failure. Sites other than the targeted one count but never fail.
    pub fn should_fail(&self, site: &str) -> bool {
        let mut hits = self.hits.lock().unwrap_or_else(|e| e.into_inner());
        let n = hits.entry(site.to_string()).or_insert(0);
        *n += 1;
        let fire = site == self.site && *n == self.k;
        if fire {
            self.fired.store(true, Ordering::Relaxed);
        }
        fire
    }

    /// Whether the planned fault has fired yet. A plan that never fires
    /// means the workload didn't reach the k-th visit — the run completes
    /// normally, which chaos suites should treat as a (boring) pass.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// The targeted site key.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The 1-based ordinal of the failing visit.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Visits observed at `site` so far.
    pub fn hits(&self, site: &str) -> u64 {
        self.hits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(site)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kth_visit_fails_exactly_once() {
        let plan = FaultPlan::fail_kth("buffer", 3);
        assert!(!plan.should_fail("buffer"));
        assert!(!plan.should_fail("catalog"), "other sites never fail");
        assert!(!plan.should_fail("buffer"));
        assert!(!plan.fired());
        assert!(plan.should_fail("buffer"), "3rd buffer visit fails");
        assert!(plan.fired());
        assert!(!plan.should_fail("buffer"), "a plan fires at most once");
        assert_eq!(plan.hits("buffer"), 4);
        assert_eq!(plan.hits("catalog"), 1);
    }

    #[test]
    fn k_zero_never_fires() {
        let plan = FaultPlan::fail_kth("operator", 0);
        for _ in 0..100 {
            assert!(!plan.should_fail("operator"));
        }
        assert!(!plan.fired());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let sites = ["buffer", "catalog", "operator"];
        let mut seen_sites = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed, &sites, 10);
            let b = FaultPlan::seeded(seed, &sites, 10);
            assert_eq!((a.site(), a.k()), (b.site(), b.k()), "seed {seed}");
            assert!(sites.contains(&a.site()));
            assert!((1..=10).contains(&a.k()));
            seen_sites.insert(a.site().to_string());
        }
        assert_eq!(seen_sites.len(), 3, "64 seeds should cover all sites");
    }
}
