//! Lexical scopes for variable resolution during lowering.
//!
//! "The explicit denotation of variables is essential to SQL++ Core"
//! (§III). The planner resolves every identifier head against the scope
//! stack; unresolved heads become catalog references — unless a schema is
//! attached to a variable, in which case the paper's *schema-based
//! disambiguation* applies: "if schema is available, then SQL++ also
//! allows expressions that are disambiguated using the schema. Formally,
//! disambiguation results in the rewriting of the user-provided SQL++
//! query into a SQL++ Core query that explicitly denotes the variables
//! that were omitted."

use std::collections::HashMap;

use sqlpp_schema::SqlppType;

/// How a bare identifier resolved against variable schemas.
#[derive(Debug, Clone, PartialEq)]
pub enum Disambiguation {
    /// No schema'd variable declares the attribute.
    None,
    /// Exactly one variable declares it: rewrite `attr` → `var.attr`.
    Unique(String),
    /// More than one does — a compile-time ambiguity, as in SQL.
    Ambiguous(Vec<String>),
}

/// A stack of variable-name frames, each variable optionally carrying the
/// structural type of the values it binds to. Inner frames shadow outer
/// ones, which is what makes left-correlation and nested subqueries
/// compose.
#[derive(Debug, Default, Clone)]
pub struct Scope {
    frames: Vec<HashMap<String, Option<SqlppType>>>,
}

impl Scope {
    /// An empty scope.
    pub fn new() -> Self {
        Scope::default()
    }

    /// Pushes a fresh frame (entering a query block or FROM item chain).
    pub fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    /// Pops the innermost frame.
    pub fn pop(&mut self) {
        self.frames.pop();
    }

    /// Adds an untyped variable to the innermost frame.
    pub fn add(&mut self, name: impl Into<String>) {
        self.frames
            .last_mut()
            .expect("scope must have a frame before adding variables")
            .insert(name.into(), None);
    }

    /// Adds a variable with a known element type (the collection it
    /// ranges over had a schema).
    pub fn add_typed(&mut self, name: impl Into<String>, ty: SqlppType) {
        self.frames
            .last_mut()
            .expect("scope must have a frame before adding variables")
            .insert(name.into(), Some(ty));
    }

    /// True when any frame binds `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.frames.iter().rev().any(|f| f.contains_key(name))
    }

    /// Schema-based disambiguation of a bare identifier: which visible
    /// (non-shadowed) variables have a tuple schema declaring `attr`?
    pub fn disambiguate(&self, attr: &str) -> Disambiguation {
        let mut seen: Vec<&str> = Vec::new();
        let mut owners: Vec<String> = Vec::new();
        for frame in self.frames.iter().rev() {
            for (name, ty) in frame {
                if seen.contains(&name.as_str()) {
                    continue; // shadowed by an inner frame
                }
                seen.push(name);
                if let Some(SqlppType::Tuple(tt)) = ty {
                    if tt.field(attr).is_some() {
                        owners.push(name.clone());
                    }
                }
            }
        }
        match owners.len() {
            0 => Disambiguation::None,
            1 => Disambiguation::Unique(owners.pop().expect("len 1")),
            _ => {
                owners.sort();
                Disambiguation::Ambiguous(owners)
            }
        }
    }

    /// Runs `f` inside a fresh frame and pops it afterwards.
    pub fn scoped<T>(&mut self, f: impl FnOnce(&mut Scope) -> T) -> T {
        self.push();
        let r = f(self);
        self.pop();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_schema::TupleType;

    fn emp_type() -> SqlppType {
        SqlppType::Tuple(TupleType::closed([
            ("name", SqlppType::Str),
            ("salary", SqlppType::Int),
        ]))
    }

    #[test]
    fn shadowing_and_popping() {
        let mut s = Scope::new();
        s.push();
        s.add("e");
        assert!(s.contains("e"));
        s.scoped(|inner| {
            inner.add("p");
            assert!(inner.contains("e"), "outer frames remain visible");
            assert!(inner.contains("p"));
        });
        assert!(!s.contains("p"), "inner frame is gone");
        s.pop();
        assert!(!s.contains("e"));
    }

    #[test]
    fn disambiguation_finds_the_unique_owner() {
        let mut s = Scope::new();
        s.push();
        s.add_typed("e", emp_type());
        s.add("x"); // untyped vars never own attributes
        assert_eq!(s.disambiguate("salary"), Disambiguation::Unique("e".into()));
        assert_eq!(s.disambiguate("unknown"), Disambiguation::None);
    }

    #[test]
    fn disambiguation_reports_ambiguity() {
        let mut s = Scope::new();
        s.push();
        s.add_typed("a", emp_type());
        s.add_typed("b", emp_type());
        match s.disambiguate("name") {
            Disambiguation::Ambiguous(owners) => {
                assert_eq!(owners, vec!["a".to_string(), "b".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shadowed_typed_variables_do_not_count() {
        let mut s = Scope::new();
        s.push();
        s.add_typed("e", emp_type());
        s.push();
        s.add("e"); // untyped shadow
        assert_eq!(s.disambiguate("name"), Disambiguation::None);
        s.pop();
        assert_eq!(s.disambiguate("name"), Disambiguation::Unique("e".into()));
    }
}
