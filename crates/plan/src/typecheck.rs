//! Static type checking of Core plans against optional schemas.
//!
//! "Typing rules are dynamically checked in SQL++, with the possibility of
//! static type checking when the optional schema is present" (§I
//! relaxation 2). This pass is that possibility: given element schemas for
//! the scanned collections, it propagates structural types through the
//! plan and reports *warnings* for expressions that are certain (or, for
//! union types, certain in some branch) to misbehave at runtime —
//! navigation into attributes a closed tuple can never have, arithmetic on
//! attributes that are never numbers, FROM over scalars.
//!
//! It is deliberately **advisory**: SQL++ queries over schemaless data are
//! legal by design, so nothing here rejects a query — warnings inform, the
//! permissive runtime decides (§IV). Soundness bar: a warning is only
//! emitted when the schema *guarantees* the anomaly, never on `Any`.

use std::collections::HashMap;

use sqlpp_schema::{SqlppType, TupleType};
use sqlpp_syntax::ast::BinOp;

use crate::core::{CoreExpr, CoreFrom, CoreOp, CoreQuery};

/// One advisory finding.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeWarning {
    /// Human-readable description with the offending expression.
    pub message: String,
    /// The source identifier (attribute or variable) the warning is
    /// about, when the checker knows it — lets the analysis layer locate
    /// a span in the original query text.
    pub name: Option<String>,
}

/// Statically checks a plan against `(dotted name, element type)` schema
/// attachments. Returns advisory warnings (possibly empty).
pub fn check(plan: &CoreQuery, schemas: &[(String, SqlppType)]) -> Vec<TypeWarning> {
    let mut checker = Checker {
        schemas,
        warnings: Vec::new(),
    };
    checker.op(&plan.op, &TypeEnv::default());
    checker.warnings
}

#[derive(Debug, Clone, Default)]
struct TypeEnv {
    vars: HashMap<String, SqlppType>,
}

impl TypeEnv {
    fn bind(&self, name: &str, ty: SqlppType) -> TypeEnv {
        let mut next = self.clone();
        next.vars.insert(name.to_string(), ty);
        next
    }

    fn get(&self, name: &str) -> SqlppType {
        self.vars.get(name).cloned().unwrap_or(SqlppType::Any)
    }
}

struct Checker<'a> {
    schemas: &'a [(String, SqlppType)],
    warnings: Vec<TypeWarning>,
}

impl Checker<'_> {
    fn warn(&mut self, message: String) {
        self.warn_named(message, None);
    }

    fn warn_named(&mut self, message: String, name: Option<String>) {
        if !self.warnings.iter().any(|w| w.message == message) {
            self.warnings.push(TypeWarning { message, name });
        }
    }

    /// Walks an operator, returning the environment downstream clauses
    /// see (bindings added by FROM/GROUP/WINDOW).
    fn op(&mut self, op: &CoreOp, env: &TypeEnv) -> TypeEnv {
        match op {
            CoreOp::Single => env.clone(),
            CoreOp::From { item } => self.from_item(item, env),
            CoreOp::Filter { input, pred } => {
                let env = self.op(input, env);
                self.expr(pred, &env);
                env
            }
            CoreOp::Group {
                input,
                keys,
                group_var,
                ..
            } => {
                let inner = self.op(input, env);
                let mut out = env.clone();
                for (alias, key) in keys {
                    let ty = self.expr(key, &inner);
                    out = out.bind(alias, ty);
                }
                out.bind(group_var, SqlppType::Bag(Box::new(SqlppType::Any)))
            }
            CoreOp::Append { inputs } => {
                let mut out = env.clone();
                for i in inputs {
                    out = self.op(i, env);
                }
                out
            }
            CoreOp::Sort { input, keys } => {
                let env = self.op(input, env);
                for k in keys {
                    self.expr(&k.expr, &env);
                }
                env
            }
            CoreOp::SortValues { input, keys } => {
                let env = self.op(input, env);
                for k in keys {
                    self.expr(&k.expr, &env);
                }
                env
            }
            CoreOp::LimitOffset {
                input,
                limit,
                offset,
            } => {
                let env = self.op(input, env);
                if let Some(l) = limit {
                    self.expr(l, &env);
                }
                if let Some(o) = offset {
                    self.expr(o, &env);
                }
                env
            }
            CoreOp::TopK {
                input,
                keys,
                limit,
                offset,
                ..
            } => {
                let env = self.op(input, env);
                for k in keys {
                    self.expr(&k.expr, &env);
                }
                self.expr(limit, &env);
                if let Some(o) = offset {
                    self.expr(o, &env);
                }
                env
            }
            CoreOp::Project { input, expr, .. } => {
                let env = self.op(input, env);
                self.expr(expr, &env);
                env
            }
            CoreOp::Pivot { input, value, name } => {
                let env = self.op(input, env);
                self.expr(value, &env);
                self.expr(name, &env);
                env
            }
            CoreOp::SetOp { left, right, .. } => {
                self.op(left, env);
                self.op(right, env);
                env.clone()
            }
            CoreOp::Window { input, defs } => {
                let mut env = self.op(input, env);
                for def in defs {
                    for a in &def.args {
                        self.expr(a, &env);
                    }
                    for p in &def.partition {
                        self.expr(p, &env);
                    }
                    for k in &def.order {
                        self.expr(&k.expr, &env);
                    }
                    env = env.bind(&def.var, SqlppType::Any);
                }
                env
            }
            CoreOp::With { bindings, body } => {
                let mut env = env.clone();
                for (name, q) in bindings {
                    self.op(&q.op, &env);
                    env = env.bind(name, SqlppType::Any);
                }
                self.op(body, &env)
            }
        }
    }

    #[allow(clippy::wrong_self_convention)] // "from" is the SQL clause
    fn from_item(&mut self, item: &CoreFrom, env: &TypeEnv) -> TypeEnv {
        match item {
            CoreFrom::Scan {
                expr,
                as_var,
                at_var,
            } => {
                let source_ty = self.expr(expr, env);
                let elem = match &source_ty {
                    SqlppType::Array(e) | SqlppType::Bag(e) => (**e).clone(),
                    SqlppType::Any | SqlppType::Union(_) => SqlppType::Any,
                    scalar => {
                        self.warn(format!(
                            "FROM source {expr} is a {scalar}, not a collection \
                             (it will bind as a singleton in permissive mode)"
                        ));
                        scalar.clone()
                    }
                };
                let mut out = env.bind(as_var, elem);
                if let Some(at) = at_var {
                    out = out.bind(at, SqlppType::Int);
                }
                out
            }
            CoreFrom::Unpivot {
                expr,
                value_var,
                name_var,
            } => {
                self.expr(expr, env);
                env.bind(value_var, SqlppType::Any)
                    .bind(name_var, SqlppType::Str)
            }
            CoreFrom::Let { expr, var } => {
                let ty = self.expr(expr, env);
                env.bind(var, ty)
            }
            CoreFrom::Correlate { left, right } => {
                let env = self.from_item(left, env);
                self.from_item(right, &env)
            }
            CoreFrom::Join {
                left, right, on, ..
            } => {
                let env = self.from_item(left, env);
                let env = self.from_item(right, &env);
                self.expr(on, &env);
                env
            }
            CoreFrom::HashJoin {
                left,
                right,
                keys,
                left_pred,
                right_pred,
                residual,
                ..
            } => {
                let env = self.from_item(left, env);
                let env = self.from_item(right, &env);
                for (l, r) in keys {
                    self.expr(l, &env);
                    self.expr(r, &env);
                }
                for pred in [left_pred, right_pred, residual].into_iter().flatten() {
                    self.expr(pred, &env);
                }
                env
            }
        }
    }

    /// Infers an expression's structural type, warning on guaranteed
    /// anomalies along the way.
    fn expr(&mut self, e: &CoreExpr, env: &TypeEnv) -> SqlppType {
        match e {
            CoreExpr::Const(v) => sqlpp_schema::infer_value(v),
            CoreExpr::Var(name) => env.get(name),
            CoreExpr::Param(_) | CoreExpr::Dynamic(_) => SqlppType::Any,
            CoreExpr::Global(segments) => {
                let dotted = segments.join(".");
                self.schemas
                    .iter()
                    .find(|(n, _)| *n == dotted)
                    .map(|(_, ty)| SqlppType::Bag(Box::new(ty.clone())))
                    .unwrap_or(SqlppType::Any)
            }
            CoreExpr::Path(base, attr) => {
                let base_ty = self.expr(base, env);
                self.navigate(&base_ty, attr, e)
            }
            CoreExpr::Index(base, idx) => {
                let base_ty = self.expr(base, env);
                self.expr(idx, env);
                match base_ty {
                    SqlppType::Array(elem) => *elem,
                    SqlppType::Any | SqlppType::Union(_) => SqlppType::Any,
                    other => {
                        self.warn(format!("indexing a {other} in {e} is always MISSING"));
                        SqlppType::Missing
                    }
                }
            }
            CoreExpr::Bin(op, l, r) => {
                let lt = self.expr(l, env);
                let rt = self.expr(r, env);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        for (side, ty) in [("left", &lt), ("right", &rt)] {
                            if never_numeric(ty) {
                                self.warn(format!(
                                    "arithmetic in {e}: the {side} operand is \
                                     always a {ty}, never a number"
                                ));
                            }
                        }
                        numeric_join(&lt, &rt)
                    }
                    BinOp::Concat => {
                        for (side, ty) in [("left", &lt), ("right", &rt)] {
                            if never_string(ty) {
                                self.warn(format!(
                                    "|| in {e}: the {side} operand is always a \
                                     {ty}, never a string"
                                ));
                            }
                        }
                        SqlppType::Str
                    }
                    _ => SqlppType::Bool,
                }
            }
            CoreExpr::Un(_, inner) => {
                self.expr(inner, env);
                SqlppType::Any
            }
            CoreExpr::Like {
                expr,
                pattern,
                escape,
                ..
            } => {
                let t = self.expr(expr, env);
                if never_string(&t) {
                    self.warn(format!(
                        "LIKE in {e}: the matched value is always a {t}, \
                         never a string"
                    ));
                }
                self.expr(pattern, env);
                if let Some(esc) = escape {
                    self.expr(esc, env);
                }
                SqlppType::Bool
            }
            CoreExpr::Between {
                expr, low, high, ..
            } => {
                self.expr(expr, env);
                self.expr(low, env);
                self.expr(high, env);
                SqlppType::Bool
            }
            CoreExpr::In {
                expr, collection, ..
            } => {
                self.expr(expr, env);
                self.expr(collection, env);
                SqlppType::Bool
            }
            CoreExpr::Is { expr, .. } => {
                self.expr(expr, env);
                SqlppType::Bool
            }
            CoreExpr::Case { arms, else_expr } => {
                let mut ty: Option<SqlppType> = None;
                for (when, then) in arms {
                    self.expr(when, env);
                    let t = self.expr(then, env);
                    ty = Some(match ty {
                        None => t,
                        Some(prev) => prev.unify(t),
                    });
                }
                let e_ty = self.expr(else_expr, env);
                match ty {
                    None => e_ty,
                    Some(t) => t.unify(e_ty),
                }
            }
            CoreExpr::Call { args, .. } => {
                for a in args {
                    self.expr(a, env);
                }
                SqlppType::Any
            }
            CoreExpr::CollAgg { input, .. } => {
                self.expr(input, env);
                SqlppType::Any
            }
            CoreExpr::Subquery { plan, .. } => {
                self.op(&plan.op, env);
                SqlppType::Bag(Box::new(SqlppType::Any))
            }
            CoreExpr::Exists(q) => {
                self.op(&q.op, env);
                SqlppType::Bool
            }
            CoreExpr::TupleCtor(pairs) => {
                let mut fields = Vec::new();
                for (name, value) in pairs {
                    let vt = self.expr(value, env);
                    if let CoreExpr::Const(sqlpp_value::Value::Str(n)) = name {
                        fields.push(sqlpp_schema::Field {
                            name: n.clone(),
                            ty: vt,
                            optional: false,
                        });
                    }
                }
                SqlppType::Tuple(TupleType {
                    fields,
                    open: false,
                })
            }
            CoreExpr::ArrayCtor(items) => {
                let elem = self.elements_type(items, env);
                SqlppType::Array(Box::new(elem))
            }
            CoreExpr::BagCtor(items) => {
                let elem = self.elements_type(items, env);
                SqlppType::Bag(Box::new(elem))
            }
            CoreExpr::Cast { expr, ty } => {
                self.expr(expr, env);
                match ty.as_str() {
                    "INT" | "INTEGER" | "BIGINT" => SqlppType::Int,
                    "FLOAT" | "DOUBLE" | "REAL" => SqlppType::Float,
                    "DECIMAL" | "NUMERIC" => SqlppType::Decimal,
                    "STRING" | "VARCHAR" | "CHAR" | "TEXT" => SqlppType::Str,
                    "BOOLEAN" | "BOOL" => SqlppType::Bool,
                    _ => SqlppType::Any,
                }
            }
        }
    }

    fn elements_type(&mut self, items: &[CoreExpr], env: &TypeEnv) -> SqlppType {
        let mut ty: Option<SqlppType> = None;
        for item in items {
            let t = self.expr(item, env);
            ty = Some(match ty {
                None => t,
                Some(prev) => prev.unify(t),
            });
        }
        ty.unwrap_or(SqlppType::Any)
    }

    fn navigate(&mut self, base: &SqlppType, attr: &str, at: &CoreExpr) -> SqlppType {
        match base {
            SqlppType::Any => SqlppType::Any,
            SqlppType::Tuple(tt) => match tt.field(attr) {
                Some(f) => f.ty.clone(),
                None if tt.open => SqlppType::Any,
                None => {
                    self.warn_named(
                        format!(
                            "navigation {at}: the schema declares no attribute \
                             {attr:?} (always MISSING)"
                        ),
                        Some(attr.to_string()),
                    );
                    SqlppType::Missing
                }
            },
            SqlppType::Union(alts) => {
                // MISSING only if no alternative can carry the attribute.
                let viable: Vec<SqlppType> = alts
                    .iter()
                    .filter_map(|a| match a {
                        SqlppType::Tuple(tt) => tt
                            .field(attr)
                            .map(|f| f.ty.clone())
                            .or(if tt.open { Some(SqlppType::Any) } else { None }),
                        SqlppType::Any => Some(SqlppType::Any),
                        _ => None,
                    })
                    .collect();
                if viable.is_empty() {
                    self.warn_named(
                        format!(
                            "navigation {at}: no branch of {base} has attribute \
                             {attr:?} (always MISSING)"
                        ),
                        Some(attr.to_string()),
                    );
                    SqlppType::Missing
                } else {
                    SqlppType::Any
                }
            }
            SqlppType::Null | SqlppType::Missing => base.clone(),
            other => {
                self.warn(format!(
                    "navigation {at}: the value is always a {other}, which \
                     has no attributes (always MISSING)"
                ));
                SqlppType::Missing
            }
        }
    }
}

fn never_numeric(ty: &SqlppType) -> bool {
    match ty {
        SqlppType::Any
        | SqlppType::Int
        | SqlppType::Float
        | SqlppType::Decimal
        | SqlppType::Null
        | SqlppType::Missing => false,
        SqlppType::Union(alts) => alts.iter().all(never_numeric),
        _ => true,
    }
}

fn never_string(ty: &SqlppType) -> bool {
    match ty {
        SqlppType::Any | SqlppType::Str | SqlppType::Null | SqlppType::Missing => false,
        SqlppType::Union(alts) => alts.iter().all(never_string),
        _ => true,
    }
}

fn numeric_join(l: &SqlppType, r: &SqlppType) -> SqlppType {
    use SqlppType::*;
    match (l, r) {
        (Float, _) | (_, Float) => Float,
        (Decimal, _) | (_, Decimal) => Decimal,
        (Int, Int) => Int,
        _ => Any,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_query, PlanConfig};
    use sqlpp_schema::infer_collection;
    use sqlpp_syntax::parse_query;

    fn schema() -> Vec<(String, SqlppType)> {
        let data = sqlpp_value::rows![
            {"id" => 1i64, "name" => "a", "tags" => sqlpp_value::array!["x"]},
        ];
        vec![("emp".to_string(), infer_collection(&data).unwrap())]
    }

    fn warnings(src: &str) -> Vec<String> {
        let schemas = schema();
        let config = PlanConfig {
            compat: Default::default(),
            schemas: schemas.clone(),
        };
        let plan = lower_query(&parse_query(src).unwrap(), &config).unwrap();
        check(&plan, &schemas)
            .into_iter()
            .map(|w| w.message)
            .collect()
    }

    #[test]
    fn clean_queries_have_no_warnings() {
        assert!(warnings("SELECT e.name AS n FROM emp AS e WHERE e.id > 0").is_empty());
        assert!(warnings("SELECT VALUE t FROM emp AS e, e.tags AS t").is_empty());
    }

    #[test]
    fn unknown_attribute_on_closed_tuple_warns() {
        let w = warnings("SELECT VALUE e.salary FROM emp AS e");
        assert_eq!(w.len(), 1, "{w:?}");
        assert!(w[0].contains("salary"), "{w:?}");
        assert!(w[0].contains("MISSING"), "{w:?}");
    }

    #[test]
    fn arithmetic_on_never_numeric_warns() {
        let w = warnings("SELECT VALUE e.name * 2 FROM emp AS e");
        assert!(w.iter().any(|m| m.contains("never a number")), "{w:?}");
    }

    #[test]
    fn navigation_into_scalar_warns() {
        let w = warnings("SELECT VALUE e.id.sub FROM emp AS e");
        assert!(w.iter().any(|m| m.contains("no attributes")), "{w:?}");
    }

    #[test]
    fn from_over_scalar_attribute_warns() {
        let w = warnings("SELECT VALUE x FROM emp AS e, e.id AS x");
        assert!(w.iter().any(|m| m.contains("not a collection")), "{w:?}");
    }

    #[test]
    fn schemaless_collections_never_warn() {
        // `other` has no schema: everything is Any, nothing is certain.
        let schemas = schema();
        let config = PlanConfig {
            compat: Default::default(),
            schemas: schemas.clone(),
        };
        let plan = lower_query(
            &parse_query("SELECT VALUE o.whatever.deep * 3 FROM other AS o").unwrap(),
            &config,
        )
        .unwrap();
        assert!(check(&plan, &schemas).is_empty());
    }

    #[test]
    fn union_types_warn_only_when_no_branch_fits() {
        let schemas = vec![(
            "mixed".to_string(),
            SqlppType::Union(vec![
                SqlppType::Tuple(TupleType::closed([("a", SqlppType::Int)])),
                SqlppType::Str,
            ]),
        )];
        let config = PlanConfig {
            compat: Default::default(),
            schemas: schemas.clone(),
        };
        // `.a` exists on one branch: no warning.
        let plan = lower_query(
            &parse_query("SELECT VALUE m.a FROM mixed AS m").unwrap(),
            &config,
        )
        .unwrap();
        assert!(check(&plan, &schemas).is_empty());
        // `.b` exists on no branch: warn.
        let plan = lower_query(
            &parse_query("SELECT VALUE m.b FROM mixed AS m").unwrap(),
            &config,
        )
        .unwrap();
        assert_eq!(check(&plan, &schemas).len(), 1);
    }
}
