//! Lowering: the surface language → SQL++ Core.
//!
//! This module is the paper's central construction. Every SQL-compatibility
//! feature is a *rewriting* into the fully composable Core:
//!
//! * `SELECT e1 AS a1, …` ⇒ `SELECT VALUE {a1: e1, …}` (§V-A);
//! * SQL aggregates ⇒ (implicit) `GROUP … GROUP AS g` + `COLL_*` over a
//!   `FROM g AS $gi SELECT VALUE …` subquery (§V-C, Listings 15–18);
//! * SQL subqueries ⇒ subqueries with a context-chosen [`Coercion`] in
//!   SQL-compatibility mode — never for `SELECT VALUE` (§V-A);
//! * `SELECT *` ⇒ a tuple merge of the FROM variables;
//! * simple `CASE x WHEN v …` ⇒ searched CASE;
//! * `RIGHT JOIN` ⇒ mirrored `LEFT JOIN`.
//!
//! Toggling [`CompatMode`] literally toggles which rewritings apply — "a
//! SQL compatibility flag in SQL++ whose setting can be toggled between
//! prioritizing composability or prioritizing SQL compatibility" (§I).

use sqlpp_syntax::ast::{
    self, Expr, FromItem, GroupBy, JoinKind, OrderItem, Query, SelectClause, SelectItem, SetExpr,
    SetQuantifier, TypeExpr,
};
use sqlpp_value::Value;

use crate::core::{
    AggFunc, Coercion, CoreExpr, CoreFrom, CoreJoinKind, CoreOp, CoreQuery, CoreSetOp, CoreSortKey,
    WindowDef, WindowFunc,
};
use crate::error::PlanError;
use crate::scope::{Disambiguation, Scope};

/// The paper's SQL-compatibility flag (§I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompatMode {
    /// Prioritize SQL compatibility: SELECT-list subqueries coerce by
    /// context, and SQL queries behave exactly as in SQL.
    #[default]
    SqlCompat,
    /// Prioritize composability: `SELECT` is a pure shorthand for
    /// `SELECT VALUE` and subqueries always denote their bag.
    Composable,
}

/// Planner configuration.
#[derive(Debug, Clone, Default)]
pub struct PlanConfig {
    /// Compatibility flag.
    pub compat: CompatMode,
    /// `(dotted catalog name, element type)` schema attachments enabling
    /// the paper's §III schema-based disambiguation of bare identifiers.
    pub schemas: Vec<(String, sqlpp_schema::SqlppType)>,
}

/// Lowers a parsed query to Core.
pub fn lower_query(q: &Query, config: &PlanConfig) -> Result<CoreQuery, PlanError> {
    let mut scope = Scope::new();
    scope.push();
    lower_with_scope(q, config, &mut scope)
}

/// Lowers with a caller-provided scope that may already declare variables
/// (used by embedding evaluators, e.g. the Pseudocode reference oracle).
pub fn lower_with_scope(
    q: &Query,
    config: &PlanConfig,
    scope: &mut Scope,
) -> Result<CoreQuery, PlanError> {
    Planner { config }.query(q, scope)
}

/// Expression contexts that drive subquery coercion (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// Ordinary value position: SQL scalar-subquery coercion applies.
    Scalar,
    /// Right-hand side of IN: collection coercion applies.
    CollectionRhs,
    /// FROM sources and other collection positions: no coercion.
    Source,
}

struct Planner<'a> {
    config: &'a PlanConfig,
}

/// Internal name of the synthesized group variable when the query spelled
/// no `GROUP AS`.
const SYNTH_GROUP: &str = "$group";
/// Internal name of the per-group element variable in rewritten aggregates.
const SYNTH_GROUP_ITEM: &str = "$gi";

impl Planner<'_> {
    // -----------------------------------------------------------------
    // Queries and blocks
    // -----------------------------------------------------------------

    fn query(&self, q: &Query, scope: &mut Scope) -> Result<CoreQuery, PlanError> {
        scope.scoped(|scope| {
            let mut ctes = Vec::new();
            for cte in &q.ctes {
                let lowered = self.query(&cte.query, scope)?;
                scope.add(cte.name.clone());
                ctes.push((cte.name.clone(), lowered));
            }
            let op = match &q.body {
                SetExpr::Block(block) => {
                    self.block(block, scope, &q.order_by, &q.limit, &q.offset)?
                }
                se @ SetExpr::SetOp { .. } => {
                    let mut op = self.set_expr(se, scope)?;
                    if !q.order_by.is_empty() {
                        let keys = self.value_sort_keys(&q.order_by, scope)?;
                        op = CoreOp::SortValues {
                            input: Box::new(op),
                            keys,
                        };
                    }
                    self.wrap_limit(op, &q.limit, &q.offset, scope)?
                }
            };
            let op = if ctes.is_empty() {
                op
            } else {
                CoreOp::With {
                    bindings: ctes,
                    body: Box::new(op),
                }
            };
            Ok(CoreQuery { op })
        })
    }

    fn set_expr(&self, se: &SetExpr, scope: &mut Scope) -> Result<CoreOp, PlanError> {
        match se {
            SetExpr::Block(block) => self.block(block, scope, &[], &None, &None),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => Ok(CoreOp::SetOp {
                op: match op {
                    ast::SetOp::Union => CoreSetOp::Union,
                    ast::SetOp::Intersect => CoreSetOp::Intersect,
                    ast::SetOp::Except => CoreSetOp::Except,
                },
                all: *all,
                left: Box::new(self.set_expr(left, scope)?),
                right: Box::new(self.set_expr(right, scope)?),
            }),
        }
    }

    fn wrap_limit(
        &self,
        op: CoreOp,
        limit: &Option<Expr>,
        offset: &Option<Expr>,
        scope: &mut Scope,
    ) -> Result<CoreOp, PlanError> {
        if limit.is_none() && offset.is_none() {
            return Ok(op);
        }
        Ok(CoreOp::LimitOffset {
            input: Box::new(op),
            limit: limit
                .as_ref()
                .map(|e| self.expr(e, scope, Ctx::Scalar))
                .transpose()?,
            offset: offset
                .as_ref()
                .map(|e| self.expr(e, scope, Ctx::Scalar))
                .transpose()?,
        })
    }

    /// Lowers one query block with the paper's clause pipeline:
    /// FROM → LET → WHERE → GROUP → HAVING → ORDER → SELECT → LIMIT.
    fn block(
        &self,
        block: &ast::QueryBlock,
        scope: &mut Scope,
        order_by: &[OrderItem],
        limit: &Option<Expr>,
        offset: &Option<Expr>,
    ) -> Result<CoreOp, PlanError> {
        scope.scoped(|scope| {
            // ---- FROM + LET -------------------------------------------
            let mut from_vars: Vec<String> = Vec::new();
            let mut from_tree: Option<CoreFrom> = None;
            for item in &block.from {
                let lowered = self.from_item(item, scope, &mut from_vars)?;
                from_tree = Some(match from_tree {
                    None => lowered,
                    Some(left) => CoreFrom::Correlate {
                        left: Box::new(left),
                        right: Box::new(lowered),
                    },
                });
            }
            for l in &block.lets {
                let expr = self.expr(&l.expr, scope, Ctx::Scalar)?;
                scope.add(l.name.clone());
                from_vars.push(l.name.clone());
                let binding = CoreFrom::Let {
                    expr,
                    var: l.name.clone(),
                };
                from_tree = Some(match from_tree {
                    None => binding,
                    Some(left) => CoreFrom::Correlate {
                        left: Box::new(left),
                        right: Box::new(binding),
                    },
                });
            }
            let mut op = match from_tree {
                Some(item) => CoreOp::From { item },
                None => CoreOp::Single,
            };

            // ---- WHERE ------------------------------------------------
            if let Some(w) = &block.where_clause {
                let pred = self.expr(w, scope, Ctx::Scalar)?;
                op = CoreOp::Filter {
                    input: Box::new(op),
                    pred,
                };
            }

            // ---- GROUP BY (explicit or implicit) ----------------------
            // An implicit group forms when SQL aggregates appear with no
            // GROUP BY (Listing 15 → 16).
            let has_sql_agg = select_has_sql_aggregate(&block.select)
                || block.having.as_ref().is_some_and(expr_has_sql_aggregate)
                || order_by.iter().any(|o| expr_has_sql_aggregate(&o.expr));
            let group_ctx = if let Some(gb) = &block.group_by {
                Some(self.lower_group(gb, scope, &from_vars, &mut op)?)
            } else if has_sql_agg {
                let gb = GroupBy {
                    keys: Vec::new(),
                    modifier: ast::GroupModifier::Plain,
                    group_as: None,
                };
                Some(self.lower_group(&gb, scope, &from_vars, &mut op)?)
            } else {
                None
            };

            // A rewriting context for post-group clauses.
            let rewrite = |e: &Expr| -> Result<Expr, PlanError> {
                match &group_ctx {
                    Some(g) => rewrite_grouped(e, g),
                    None => Ok(e.clone()),
                }
            };

            // ---- HAVING -----------------------------------------------
            if let Some(h) = &block.having {
                if group_ctx.is_none() {
                    return Err(PlanError::new("HAVING requires GROUP BY or an aggregate"));
                }
                let pred = self.expr(&rewrite(h)?, scope, Ctx::Scalar)?;
                op = CoreOp::Filter {
                    input: Box::new(op),
                    pred,
                };
            }

            // ---- window extraction ------------------------------------
            // SQL window functions in the SELECT list and ORDER BY are
            // pulled into a Window stage whose computed variables the
            // later clauses reference (§V-B: windows are "wholly
            // compatible" with SQL++). AST-level rewriting happens first
            // (grouping + alias substitution), then extraction.
            let mut window_asts: Vec<(String, Expr)> = Vec::new();

            let block_order: Vec<OrderItem> =
                block.order_by.iter().chain(order_by).cloned().collect();
            let aliases = select_aliases(&block.select);
            let mut order_key_asts: Vec<(Expr, bool, bool)> = Vec::new();
            for item in &block_order {
                let substituted = substitute_alias(&item.expr, &aliases);
                let rewritten = rewrite(&substituted)?;
                let extracted = extract_windows(&rewritten, &mut window_asts);
                order_key_asts.push((extracted, item.desc, item.nulls_first.unwrap_or(!item.desc)));
            }

            enum PreparedSelect {
                Value {
                    expr: Expr,
                    distinct: bool,
                },
                List {
                    items: Vec<SelectItem>,
                    distinct: bool,
                },
                Pivot {
                    value: Expr,
                    name: Expr,
                },
            }
            let prepared = match &block.select {
                SelectClause::SelectValue { quantifier, expr } => PreparedSelect::Value {
                    expr: extract_windows(&rewrite(expr)?, &mut window_asts),
                    distinct: *quantifier == SetQuantifier::Distinct,
                },
                SelectClause::Select { quantifier, items } => {
                    let mut prepared_items = Vec::with_capacity(items.len());
                    for item in items {
                        prepared_items.push(match item {
                            SelectItem::Expr { expr, alias } => SelectItem::Expr {
                                expr: extract_windows(&rewrite(expr)?, &mut window_asts),
                                alias: alias
                                    .clone()
                                    .or_else(|| expr.derived_alias().map(str::to_string)),
                            },
                            other => other.clone(),
                        });
                    }
                    PreparedSelect::List {
                        items: prepared_items,
                        distinct: *quantifier == SetQuantifier::Distinct,
                    }
                }
                SelectClause::Pivot { value, name } => PreparedSelect::Pivot {
                    value: extract_windows(&rewrite(value)?, &mut window_asts),
                    name: extract_windows(&rewrite(name)?, &mut window_asts),
                },
            };

            if !window_asts.is_empty() {
                let mut defs = Vec::with_capacity(window_asts.len());
                for (var, w) in &window_asts {
                    defs.push(self.lower_window(var, w, scope)?);
                    scope.add(var.clone());
                }
                op = CoreOp::Window {
                    input: Box::new(op),
                    defs,
                };
            }

            // ---- ORDER BY (pre-projection keys) -----------------------
            if !order_key_asts.is_empty() {
                let mut keys = Vec::new();
                for (expr, desc, nulls_first) in &order_key_asts {
                    keys.push(CoreSortKey {
                        expr: self.expr(expr, scope, Ctx::Scalar)?,
                        desc: *desc,
                        nulls_first: *nulls_first,
                    });
                }
                op = CoreOp::Sort {
                    input: Box::new(op),
                    keys,
                };
            }

            // ---- SELECT -----------------------------------------------
            let identity = |e: &Expr| -> Result<Expr, PlanError> { Ok(e.clone()) };
            op = match prepared {
                PreparedSelect::Value { expr, distinct } => {
                    let core = self.expr(&expr, scope, Ctx::Scalar)?;
                    CoreOp::Project {
                        input: Box::new(op),
                        expr: core,
                        distinct,
                    }
                }
                PreparedSelect::List { items, distinct } => {
                    let expr = self.lower_select_list(&items, &from_vars, &identity, scope)?;
                    CoreOp::Project {
                        input: Box::new(op),
                        expr,
                        distinct,
                    }
                }
                PreparedSelect::Pivot { value, name } => {
                    let value = self.expr(&value, scope, Ctx::Scalar)?;
                    let name = self.expr(&name, scope, Ctx::Scalar)?;
                    CoreOp::Pivot {
                        input: Box::new(op),
                        value,
                        name,
                    }
                }
            };

            // ---- LIMIT / OFFSET ---------------------------------------
            // Block-level modifiers (parenthesized blocks) take precedence
            // over the query-level ones passed in; a block is never given
            // both.
            let eff_limit = block.limit.clone().or_else(|| limit.clone());
            let eff_offset = block.offset.clone().or_else(|| offset.clone());
            self.wrap_limit(op, &eff_limit, &eff_offset, scope)
        })
    }

    /// `SELECT a, b.* , *` → a Core tuple constructor or, when wildcards
    /// are present, the internal `$MERGE` call.
    fn lower_select_list(
        &self,
        items: &[SelectItem],
        from_vars: &[String],
        rewrite: &dyn Fn(&Expr) -> Result<Expr, PlanError>,
        scope: &mut Scope,
    ) -> Result<CoreExpr, PlanError> {
        let has_wildcard = items
            .iter()
            .any(|i| matches!(i, SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)));
        if !has_wildcard {
            // Plain tuple constructor: SELECT e1 AS a1 … ⇒ {a1: e1, …}.
            let mut pairs = Vec::new();
            for (i, item) in items.iter().enumerate() {
                let SelectItem::Expr { expr, alias } = item else {
                    unreachable!("wildcards handled above");
                };
                let name = alias
                    .clone()
                    .or_else(|| expr.derived_alias().map(str::to_string))
                    .unwrap_or_else(|| format!("_{}", i + 1));
                let value = self.expr(&rewrite(expr)?, scope, Ctx::Scalar)?;
                pairs.push((CoreExpr::Const(Value::Str(name)), value));
            }
            return Ok(CoreExpr::TupleCtor(pairs));
        }
        // $MERGE(marker1, value1, marker2, value2, …): a "*" marker spreads
        // a tuple (or binds a non-tuple under its variable name, passed as
        // "*name"); any other marker is a plain attribute name.
        let mut args = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for v in from_vars {
                        args.push(CoreExpr::Const(Value::Str(format!("*{v}"))));
                        args.push(CoreExpr::Var(v.clone()));
                    }
                }
                SelectItem::QualifiedWildcard(v) => {
                    args.push(CoreExpr::Const(Value::Str(format!("*{v}"))));
                    args.push(self.expr(&Expr::var(v.clone()), scope, Ctx::Scalar)?);
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias
                        .clone()
                        .or_else(|| expr.derived_alias().map(str::to_string))
                        .unwrap_or_else(|| format!("_{}", i + 1));
                    args.push(CoreExpr::Const(Value::Str(name)));
                    args.push(self.expr(&rewrite(expr)?, scope, Ctx::Scalar)?);
                }
            }
        }
        Ok(CoreExpr::Call {
            name: "$MERGE".to_string(),
            args,
        })
    }

    /// Lowers an explicit GROUP BY, leaving `op` wrapped in a Group
    /// operator — or, for ROLLUP/CUBE/GROUPING SETS, an Append of one
    /// Group per grouping set — and the scope holding the post-group
    /// variables. Returns the rewrite context for post-group clauses.
    fn lower_group(
        &self,
        gb: &GroupBy,
        scope: &mut Scope,
        from_vars: &[String],
        op: &mut CoreOp,
    ) -> Result<GroupCtx, PlanError> {
        let mut lowered_keys: Vec<(String, CoreExpr)> = Vec::new();
        let mut ast_keys = Vec::new();
        for (i, key) in gb.keys.iter().enumerate() {
            let alias = key
                .alias
                .clone()
                .or_else(|| key.expr.derived_alias().map(str::to_string))
                .unwrap_or_else(|| format!("$key{}", i + 1));
            let lowered = self.expr(&key.expr, scope, Ctx::Scalar)?;
            lowered_keys.push((alias.clone(), lowered));
            ast_keys.push((alias, key.expr.clone()));
        }
        let group_var = gb
            .group_as
            .clone()
            .unwrap_or_else(|| SYNTH_GROUP.to_string());
        let captured: Vec<String> = from_vars.to_vec();

        // Which keys participate in each grouping set.
        let n = gb.keys.len();
        let sets: Vec<Vec<bool>> = match &gb.modifier {
            ast::GroupModifier::Plain => vec![vec![true; n]],
            ast::GroupModifier::Rollup => (0..=n)
                .rev()
                .map(|k| (0..n).map(|i| i < k).collect())
                .collect(),
            ast::GroupModifier::Cube => {
                if n > 10 {
                    return Err(PlanError::new(
                        "CUBE over more than 10 keys (2^n grouping sets) is \
                         not supported",
                    ));
                }
                (0..(1u32 << n))
                    .rev()
                    .map(|mask| (0..n).map(|i| mask & (1 << (n - 1 - i)) != 0).collect())
                    .collect()
            }
            ast::GroupModifier::GroupingSets(sets) => sets
                .iter()
                .map(|set| (0..n).map(|i| set.contains(&i)).collect())
                .collect(),
        };
        let multi = gb.modifier != ast::GroupModifier::Plain;

        let input = std::mem::replace(op, CoreOp::Single);
        let make_group = |include: &[bool]| -> CoreOp {
            let mut keys: Vec<(String, CoreExpr)> =
                Vec::with_capacity(lowered_keys.len() * if multi { 2 } else { 1 });
            for (i, (alias, expr)) in lowered_keys.iter().enumerate() {
                // An excluded key is a constant NULL: it surfaces as a
                // NULL key value and does not partition.
                keys.push((
                    alias.clone(),
                    if include[i] {
                        expr.clone()
                    } else {
                        CoreExpr::Const(Value::Null)
                    },
                ));
            }
            if multi {
                // GROUPING(key) support: a constant 0/1 per set.
                for (i, (alias, _)) in lowered_keys.iter().enumerate() {
                    keys.push((
                        format!("$grouping${alias}"),
                        CoreExpr::Const(Value::Int(i64::from(!include[i]))),
                    ));
                }
            }
            CoreOp::Group {
                input: Box::new(input.clone()),
                keys,
                group_var: group_var.clone(),
                captured: captured.clone(),
                // SQL emits the grand-total row even over empty input.
                emit_empty_group: n == 0 || include.iter().all(|b| !b),
            }
        };
        *op = if sets.len() == 1 {
            make_group(&sets[0])
        } else {
            CoreOp::Append {
                inputs: sets.iter().map(|s| make_group(s)).collect(),
            }
        };
        // Post-group scope: key aliases + the group variable (+ GROUPING
        // flags). (The frame also still contains the pre-group variables;
        // rewrite_grouped is responsible for rejecting stray references
        // to them.)
        for (alias, _) in &ast_keys {
            scope.add(alias.clone());
            if multi {
                scope.add(format!("$grouping${alias}"));
            }
        }
        scope.add(group_var.clone());
        Ok(GroupCtx {
            keys: ast_keys,
            captured,
            group_var,
            multi,
        })
    }

    // -----------------------------------------------------------------
    // FROM items
    // -----------------------------------------------------------------

    #[allow(clippy::wrong_self_convention)] // "from" is the SQL clause
    fn from_item(
        &self,
        item: &FromItem,
        scope: &mut Scope,
        vars: &mut Vec<String>,
    ) -> Result<CoreFrom, PlanError> {
        match item {
            FromItem::Collection {
                expr,
                as_var,
                at_var,
            } => {
                let lowered = self.expr(expr, scope, Ctx::Source)?;
                let as_var = as_var
                    .clone()
                    .or_else(|| expr.derived_alias().map(str::to_string))
                    .ok_or_else(|| {
                        PlanError::new("FROM item needs an AS alias (cannot derive one)")
                    })?;
                // §III schema-based disambiguation: when the scanned
                // collection has an attached schema, the range variable
                // carries its element type.
                match self.source_schema(&lowered) {
                    Some(ty) => scope.add_typed(as_var.clone(), ty),
                    None => scope.add(as_var.clone()),
                }
                vars.push(as_var.clone());
                if let Some(at) = at_var {
                    scope.add(at.clone());
                    vars.push(at.clone());
                }
                Ok(CoreFrom::Scan {
                    expr: lowered,
                    as_var,
                    at_var: at_var.clone(),
                })
            }
            FromItem::Unpivot {
                expr,
                value_var,
                name_var,
            } => {
                let lowered = self.expr(expr, scope, Ctx::Source)?;
                scope.add(value_var.clone());
                scope.add(name_var.clone());
                vars.push(value_var.clone());
                vars.push(name_var.clone());
                Ok(CoreFrom::Unpivot {
                    expr: lowered,
                    value_var: value_var.clone(),
                    name_var: name_var.clone(),
                })
            }
            FromItem::Join {
                kind,
                left,
                right,
                on,
            } => {
                // RIGHT is a mirrored LEFT; FULL is not supported (the
                // paper never uses it and its Core encoding would obscure
                // the listings this repo reproduces).
                let (kind, left, right) = match kind {
                    JoinKind::Right => (CoreJoinKind::Left, right, left),
                    JoinKind::Left => (CoreJoinKind::Left, left, right),
                    JoinKind::Inner | JoinKind::Cross => (CoreJoinKind::Inner, left, right),
                    JoinKind::Full => {
                        return Err(PlanError::new(
                            "FULL OUTER JOIN is not supported; rewrite as \
                             LEFT JOIN UNION ALL anti-joined RIGHT side",
                        ));
                    }
                };
                let l = self.from_item(left, scope, vars)?;
                let mut right_vars = Vec::new();
                let r = self.from_item(right, scope, &mut right_vars)?;
                vars.extend(right_vars.iter().cloned());
                let on = match on {
                    Some(e) => self.expr(e, scope, Ctx::Scalar)?,
                    None => CoreExpr::bool(true),
                };
                Ok(CoreFrom::Join {
                    kind,
                    left: Box::new(l),
                    right: Box::new(r),
                    on,
                    right_vars,
                })
            }
        }
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    fn expr(&self, e: &Expr, scope: &mut Scope, ctx: Ctx) -> Result<CoreExpr, PlanError> {
        Ok(match e {
            Expr::Lit(lit) => CoreExpr::Const(lit_value(lit)),
            Expr::Param(i) => CoreExpr::Param(*i),
            Expr::Path { head, steps } => self.lower_path(head, steps, scope)?,
            Expr::Bin { op, left, right } => CoreExpr::Bin(
                *op,
                Box::new(self.expr(left, scope, Ctx::Scalar)?),
                Box::new(self.expr(right, scope, Ctx::Scalar)?),
            ),
            Expr::Un { op, expr } => {
                CoreExpr::Un(*op, Box::new(self.expr(expr, scope, Ctx::Scalar)?))
            }
            Expr::Like {
                expr,
                pattern,
                escape,
                negated,
            } => CoreExpr::Like {
                expr: Box::new(self.expr(expr, scope, Ctx::Scalar)?),
                pattern: Box::new(self.expr(pattern, scope, Ctx::Scalar)?),
                escape: escape
                    .as_ref()
                    .map(|e| self.expr(e, scope, Ctx::Scalar).map(Box::new))
                    .transpose()?,
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => CoreExpr::Between {
                expr: Box::new(self.expr(expr, scope, Ctx::Scalar)?),
                low: Box::new(self.expr(low, scope, Ctx::Scalar)?),
                high: Box::new(self.expr(high, scope, Ctx::Scalar)?),
                negated: *negated,
            },
            Expr::In { expr, rhs, negated } => {
                let collection = match rhs.as_ref() {
                    ast::InRhs::List(items) => CoreExpr::ArrayCtor(
                        items
                            .iter()
                            .map(|i| self.expr(i, scope, Ctx::Scalar))
                            .collect::<Result<_, _>>()?,
                    ),
                    ast::InRhs::Expr(e) => self.expr(e, scope, Ctx::CollectionRhs)?,
                };
                CoreExpr::In {
                    expr: Box::new(self.expr(expr, scope, Ctx::Scalar)?),
                    collection: Box::new(collection),
                    negated: *negated,
                }
            }
            Expr::Is {
                expr,
                test,
                negated,
            } => CoreExpr::Is {
                expr: Box::new(self.expr(expr, scope, Ctx::Scalar)?),
                test: test.clone(),
                negated: *negated,
            },
            Expr::Case {
                operand,
                arms,
                else_expr,
            } => {
                let mut core_arms = Vec::new();
                for (when, then) in arms {
                    // Simple CASE sugar: `CASE x WHEN v` ⇒ `WHEN x = v`.
                    let cond = match operand {
                        Some(op) => Expr::bin(ast::BinOp::Eq, op.as_ref().clone(), when.clone()),
                        None => when.clone(),
                    };
                    core_arms.push((
                        self.expr(&cond, scope, Ctx::Scalar)?,
                        self.expr(then, scope, Ctx::Scalar)?,
                    ));
                }
                let else_core = match else_expr {
                    Some(e) => self.expr(e, scope, Ctx::Scalar)?,
                    None => CoreExpr::Const(Value::Null),
                };
                CoreExpr::Case {
                    arms: core_arms,
                    else_expr: Box::new(else_core),
                }
            }
            Expr::Call {
                name,
                args,
                distinct,
                star,
            } => self.lower_call(name, args, *distinct, *star, scope)?,
            Expr::Cast { expr, ty } => CoreExpr::Cast {
                expr: Box::new(self.expr(expr, scope, Ctx::Scalar)?),
                ty: type_name(ty)?,
            },
            Expr::Exists(q) => CoreExpr::Exists(Box::new(self.query(q, scope)?)),
            Expr::Subquery(q) => {
                let plan = self.query(q, scope)?;
                let coercion =
                    if self.config.compat == CompatMode::SqlCompat && query_is_sugar_select(q) {
                        match ctx {
                            Ctx::Scalar => Coercion::Scalar,
                            Ctx::CollectionRhs => Coercion::Collection,
                            Ctx::Source => Coercion::Bag,
                        }
                    } else {
                        Coercion::Bag
                    };
                CoreExpr::Subquery {
                    plan: Box::new(plan),
                    coercion,
                }
            }
            Expr::Window { .. } => {
                return Err(PlanError::new(
                    "window functions (OVER) are only allowed in the SELECT \
                     clause or ORDER BY",
                ));
            }
            Expr::TupleCtor(pairs) => CoreExpr::TupleCtor(
                pairs
                    .iter()
                    .map(|(n, v)| {
                        Ok((
                            self.expr(n, scope, Ctx::Scalar)?,
                            self.expr(v, scope, Ctx::Scalar)?,
                        ))
                    })
                    .collect::<Result<_, PlanError>>()?,
            ),
            Expr::ArrayCtor(items) => CoreExpr::ArrayCtor(
                items
                    .iter()
                    .map(|i| self.expr(i, scope, Ctx::Scalar))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::BagCtor(items) => CoreExpr::BagCtor(
                items
                    .iter()
                    .map(|i| self.expr(i, scope, Ctx::Scalar))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }

    /// Resolves a path head: in-scope variable, else a catalog/global
    /// reference taking as many leading attribute steps as possible.
    fn lower_path(
        &self,
        head: &str,
        steps: &[ast::PathStep],
        scope: &mut Scope,
    ) -> Result<CoreExpr, PlanError> {
        let mut base;
        let mut rest: &[ast::PathStep] = steps;
        if scope.contains(head) {
            base = CoreExpr::Var(head.to_string());
        } else if let Some(resolved) = self.disambiguate_head(head, scope)? {
            // §III: "disambiguation results in the rewriting of the
            // user-provided SQL++ query into a SQL++ Core query that
            // explicitly denotes the variables that were omitted."
            base = resolved;
        } else {
            // Collect the dotted prefix for longest-match catalog
            // resolution (e.g. `hr.emp_nest_tuples`).
            let mut segments = vec![head.to_string()];
            let mut taken = 0;
            for step in steps {
                match step {
                    ast::PathStep::Attr(a) => {
                        segments.push(a.clone());
                        taken += 1;
                    }
                    ast::PathStep::Index(_) => break,
                }
            }
            base = CoreExpr::Global(segments);
            rest = &steps[taken..];
        }
        for step in rest {
            base = match step {
                ast::PathStep::Attr(a) => CoreExpr::Path(Box::new(base), a.clone()),
                ast::PathStep::Index(i) => {
                    CoreExpr::Index(Box::new(base), Box::new(self.expr(i, scope, Ctx::Scalar)?))
                }
            };
        }
        Ok(base)
    }

    /// Lowers one extracted window expression into a [`WindowDef`].
    fn lower_window(&self, var: &str, w: &Expr, scope: &mut Scope) -> Result<WindowDef, PlanError> {
        let Expr::Window {
            func,
            args,
            star,
            partition_by,
            order_by,
        } = w
        else {
            unreachable!("extract_windows only collects Window nodes");
        };
        let func = WindowFunc::parse(func).ok_or_else(|| {
            PlanError::new(format!("unknown window function {func}")).with_name(func)
        })?;
        if matches!(
            func,
            WindowFunc::RowNumber | WindowFunc::Rank | WindowFunc::DenseRank
        ) && order_by.is_empty()
        {
            return Err(PlanError::new(format!(
                "{} requires ORDER BY in its window",
                func.name()
            )));
        }
        let args = if *star {
            Vec::new() // COUNT(*) OVER (…): count rows, no argument
        } else {
            args.iter()
                .map(|a| self.expr(a, scope, Ctx::Scalar))
                .collect::<Result<_, _>>()?
        };
        if matches!(func, WindowFunc::Agg(AggFunc::Count)) && args.len() > 1
            || matches!(func, WindowFunc::Lag | WindowFunc::Lead) && !(1..=3).contains(&args.len())
        {
            return Err(PlanError::new(format!(
                "wrong number of arguments for window function {}",
                func.name()
            )));
        }
        Ok(WindowDef {
            var: var.to_string(),
            func,
            args,
            partition: partition_by
                .iter()
                .map(|p| self.expr(p, scope, Ctx::Scalar))
                .collect::<Result<_, _>>()?,
            order: order_by
                .iter()
                .map(|item| {
                    Ok(CoreSortKey {
                        expr: self.expr(&item.expr, scope, Ctx::Scalar)?,
                        desc: item.desc,
                        nulls_first: item.nulls_first.unwrap_or(!item.desc),
                    })
                })
                .collect::<Result<_, PlanError>>()?,
        })
    }

    /// The element type of a FROM source, when it statically names a
    /// schema'd catalog collection.
    fn source_schema(&self, source: &CoreExpr) -> Option<sqlpp_schema::SqlppType> {
        let CoreExpr::Global(segments) = source else {
            return None;
        };
        let dotted = segments.join(".");
        self.config
            .schemas
            .iter()
            .find(|(name, _)| *name == dotted)
            .map(|(_, ty)| ty.clone())
    }

    /// Schema-based disambiguation of an out-of-scope head identifier.
    fn disambiguate_head(&self, head: &str, scope: &Scope) -> Result<Option<CoreExpr>, PlanError> {
        match scope.disambiguate(head) {
            Disambiguation::None => Ok(None),
            Disambiguation::Unique(var) => Ok(Some(CoreExpr::Path(
                Box::new(CoreExpr::Var(var)),
                head.to_string(),
            ))),
            Disambiguation::Ambiguous(owners) => Err(PlanError::new(format!(
                "ambiguous reference {head:?}: declared by variables {}",
                owners.join(", ")
            ))
            .with_name(head)),
        }
    }

    fn lower_call(
        &self,
        name: &str,
        args: &[Expr],
        distinct: bool,
        star: bool,
        scope: &mut Scope,
    ) -> Result<CoreExpr, PlanError> {
        // Internal navigation pseudo-functions from the parser.
        if name == "$PATH" && args.len() == 2 {
            if let Expr::Lit(ast::Lit::Str(attr)) = &args[1] {
                return Ok(CoreExpr::Path(
                    Box::new(self.expr(&args[0], scope, Ctx::Scalar)?),
                    attr.clone(),
                ));
            }
        }
        if name == "$INDEX" && args.len() == 2 {
            return Ok(CoreExpr::Index(
                Box::new(self.expr(&args[0], scope, Ctx::Scalar)?),
                Box::new(self.expr(&args[1], scope, Ctx::Scalar)?),
            ));
        }
        if let Some((func, is_coll)) = AggFunc::parse(name) {
            if is_coll {
                if args.len() != 1 {
                    return Err(PlanError::new(format!(
                        "{name} takes exactly one collection argument"
                    )));
                }
                return Ok(CoreExpr::CollAgg {
                    func,
                    distinct,
                    input: Box::new(self.expr(&args[0], scope, Ctx::Source)?),
                });
            }
            // A SQL aggregate surviving to this point was not rewritten by
            // a grouping context — it is misplaced.
            if star {
                return Err(PlanError::new(
                    "COUNT(*) is only allowed with GROUP BY or in an \
                     aggregated SELECT",
                ));
            }
            return Err(PlanError::new(format!(
                "aggregate function {name} requires a grouping context \
                 (use {} over a collection for the composable form)",
                func.coll_name()
            )));
        }
        Ok(CoreExpr::Call {
            name: name.to_string(),
            args: args
                .iter()
                .map(|a| self.expr(a, scope, Ctx::Scalar))
                .collect::<Result<_, _>>()?,
        })
    }

    fn value_sort_keys(
        &self,
        items: &[OrderItem],
        scope: &mut Scope,
    ) -> Result<Vec<CoreSortKey>, PlanError> {
        // Above a set operation the only scope is the output element: its
        // attributes become dynamic lookups at runtime.
        items
            .iter()
            .map(|item| {
                Ok(CoreSortKey {
                    expr: self.expr(&item.expr, scope, Ctx::Scalar)?,
                    desc: item.desc,
                    nulls_first: item.nulls_first.unwrap_or(!item.desc),
                })
            })
            .collect()
    }
}

/// The information needed to rewrite post-group clauses.
struct GroupCtx {
    /// `(alias, original AST key expr)` pairs.
    keys: Vec<(String, Expr)>,
    /// Pre-group variables captured into group elements.
    captured: Vec<String>,
    /// The GROUP AS variable.
    group_var: String,
    /// Multiple grouping sets (ROLLUP/CUBE/GROUPING SETS): GROUPING()
    /// flags are available.
    multi: bool,
}

fn lit_value(lit: &ast::Lit) -> Value {
    match lit {
        ast::Lit::Null => Value::Null,
        ast::Lit::Missing => Value::Missing,
        ast::Lit::Bool(b) => Value::Bool(*b),
        ast::Lit::Int(i) => Value::Int(*i),
        ast::Lit::Decimal(d) => Value::Decimal(*d),
        ast::Lit::Float(f) => Value::Float(*f),
        ast::Lit::Str(s) => Value::Str(s.clone()),
    }
}

fn type_name(ty: &TypeExpr) -> Result<String, PlanError> {
    match ty {
        TypeExpr::Named(n) => Ok(n.clone()),
        other => Err(PlanError::new(format!(
            "CAST target must be a scalar type name, found {other:?}"
        ))),
    }
}

/// Is this a sugar (`SELECT` list) query whose subquery occurrences coerce
/// in compat mode?
fn query_is_sugar_select(q: &Query) -> bool {
    match &q.body {
        SetExpr::Block(b) => matches!(b.select, SelectClause::Select { .. }),
        SetExpr::SetOp { .. } => false,
    }
}

fn select_has_sql_aggregate(select: &SelectClause) -> bool {
    match select {
        SelectClause::Select { items, .. } => items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr_has_sql_aggregate(expr),
            _ => false,
        }),
        SelectClause::SelectValue { expr, .. } => expr_has_sql_aggregate(expr),
        SelectClause::Pivot { value, name } => {
            expr_has_sql_aggregate(value) || expr_has_sql_aggregate(name)
        }
    }
}

/// Does this expression contain a SQL-style aggregate call (not COLL_*) at
/// a depth not shielded by a subquery?
fn expr_has_sql_aggregate(e: &Expr) -> bool {
    use Expr::*;
    match e {
        Call {
            name, args, star, ..
        } => {
            if *star {
                return true; // COUNT(*)
            }
            if matches!(AggFunc::parse(name), Some((_, false))) {
                return true;
            }
            args.iter().any(expr_has_sql_aggregate)
        }
        Bin { left, right, .. } => expr_has_sql_aggregate(left) || expr_has_sql_aggregate(right),
        Un { expr, .. } => expr_has_sql_aggregate(expr),
        Like {
            expr,
            pattern,
            escape,
            ..
        } => {
            expr_has_sql_aggregate(expr)
                || expr_has_sql_aggregate(pattern)
                || escape.as_deref().is_some_and(expr_has_sql_aggregate)
        }
        Between {
            expr, low, high, ..
        } => {
            expr_has_sql_aggregate(expr)
                || expr_has_sql_aggregate(low)
                || expr_has_sql_aggregate(high)
        }
        In { expr, rhs, .. } => {
            expr_has_sql_aggregate(expr)
                || match rhs.as_ref() {
                    ast::InRhs::List(items) => items.iter().any(expr_has_sql_aggregate),
                    ast::InRhs::Expr(e) => expr_has_sql_aggregate(e),
                }
        }
        Is { expr, .. } => expr_has_sql_aggregate(expr),
        Case {
            operand,
            arms,
            else_expr,
        } => {
            operand.as_deref().is_some_and(expr_has_sql_aggregate)
                || arms
                    .iter()
                    .any(|(w, t)| expr_has_sql_aggregate(w) || expr_has_sql_aggregate(t))
                || else_expr.as_deref().is_some_and(expr_has_sql_aggregate)
        }
        Cast { expr, .. } => expr_has_sql_aggregate(expr),
        TupleCtor(pairs) => pairs
            .iter()
            .any(|(n, v)| expr_has_sql_aggregate(n) || expr_has_sql_aggregate(v)),
        ArrayCtor(items) | BagCtor(items) => items.iter().any(expr_has_sql_aggregate),
        // A window call is NOT itself a grouping aggregate, but its
        // inputs may contain one (SUM(SUM(x)) OVER …).
        Window {
            args,
            partition_by,
            order_by,
            ..
        } => {
            args.iter().any(expr_has_sql_aggregate)
                || partition_by.iter().any(expr_has_sql_aggregate)
                || order_by.iter().any(|o| expr_has_sql_aggregate(&o.expr))
        }
        // Subqueries form their own aggregation scope.
        Subquery(_) | Exists(_) => false,
        Lit(_) | Path { .. } | Param(_) => false,
    }
}

/// Replaces every window expression with a fresh `$winN` variable
/// reference, collecting the definitions (deduplicated structurally).
/// Subqueries are opaque — their windows belong to their own blocks.
fn extract_windows(e: &Expr, defs: &mut Vec<(String, Expr)>) -> Expr {
    use Expr::*;
    match e {
        Window { .. } => {
            if let Some((var, _)) = defs.iter().find(|(_, w)| w == e) {
                return Expr::var(var.clone());
            }
            let var = format!("$win{}", defs.len());
            defs.push((var.clone(), e.clone()));
            Expr::var(var)
        }
        Bin { op, left, right } => Bin {
            op: *op,
            left: Box::new(extract_windows(left, defs)),
            right: Box::new(extract_windows(right, defs)),
        },
        Un { op, expr } => Un {
            op: *op,
            expr: Box::new(extract_windows(expr, defs)),
        },
        Like {
            expr,
            pattern,
            escape,
            negated,
        } => Like {
            expr: Box::new(extract_windows(expr, defs)),
            pattern: Box::new(extract_windows(pattern, defs)),
            escape: escape.as_ref().map(|x| Box::new(extract_windows(x, defs))),
            negated: *negated,
        },
        Between {
            expr,
            low,
            high,
            negated,
        } => Between {
            expr: Box::new(extract_windows(expr, defs)),
            low: Box::new(extract_windows(low, defs)),
            high: Box::new(extract_windows(high, defs)),
            negated: *negated,
        },
        In { expr, rhs, negated } => In {
            expr: Box::new(extract_windows(expr, defs)),
            rhs: Box::new(match rhs.as_ref() {
                ast::InRhs::List(items) => {
                    ast::InRhs::List(items.iter().map(|i| extract_windows(i, defs)).collect())
                }
                ast::InRhs::Expr(x) => ast::InRhs::Expr(extract_windows(x, defs)),
            }),
            negated: *negated,
        },
        Is {
            expr,
            test,
            negated,
        } => Is {
            expr: Box::new(extract_windows(expr, defs)),
            test: test.clone(),
            negated: *negated,
        },
        Case {
            operand,
            arms,
            else_expr,
        } => Case {
            operand: operand.as_ref().map(|o| Box::new(extract_windows(o, defs))),
            arms: arms
                .iter()
                .map(|(w, t)| (extract_windows(w, defs), extract_windows(t, defs)))
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|x| Box::new(extract_windows(x, defs))),
        },
        Cast { expr, ty } => Cast {
            expr: Box::new(extract_windows(expr, defs)),
            ty: ty.clone(),
        },
        Call {
            name,
            args,
            distinct,
            star,
        } => Call {
            name: name.clone(),
            args: args.iter().map(|a| extract_windows(a, defs)).collect(),
            distinct: *distinct,
            star: *star,
        },
        TupleCtor(pairs) => TupleCtor(
            pairs
                .iter()
                .map(|(n, v)| (extract_windows(n, defs), extract_windows(v, defs)))
                .collect(),
        ),
        ArrayCtor(items) => ArrayCtor(items.iter().map(|i| extract_windows(i, defs)).collect()),
        BagCtor(items) => BagCtor(items.iter().map(|i| extract_windows(i, defs)).collect()),
        Subquery(_) | Exists(_) | Lit(_) | Path { .. } | Param(_) => e.clone(),
    }
}

/// Substitutes a SELECT alias referenced by ORDER BY with its defining
/// expression (`SELECT a+b AS s … ORDER BY s`).
fn substitute_alias(e: &Expr, aliases: &[(String, Expr)]) -> Expr {
    if let Expr::Path { head, steps } = e {
        if let Some((_, def)) = aliases.iter().find(|(a, _)| a == head) {
            if steps.is_empty() {
                return def.clone();
            }
        }
    }
    e.clone()
}

fn select_aliases(select: &SelectClause) -> Vec<(String, Expr)> {
    match select {
        SelectClause::Select { items, .. } => items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Expr { expr, alias } => alias
                    .clone()
                    .or_else(|| expr.derived_alias().map(str::to_string))
                    .map(|a| (a, expr.clone())),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// The paper's §V-C rewriting, applied to post-group clauses:
///
/// * a key expression occurrence becomes its alias variable;
/// * `AGG(arg)` becomes `COLL_AGG(SELECT VALUE arg' FROM g AS $gi)` with
///   every captured variable `v` in `arg` replaced by `$gi.v`;
/// * `COUNT(*)` becomes `COLL_COUNT(g)`;
/// * remaining references to pre-group variables are rejected, exactly as
///   SQL rejects non-grouped column references.
fn rewrite_grouped(e: &Expr, g: &GroupCtx) -> Result<Expr, PlanError> {
    // Key-expression occurrence?
    for (alias, key) in &g.keys {
        if e == key {
            return Ok(Expr::var(alias.clone()));
        }
    }
    use Expr::*;
    Ok(match e {
        Call {
            name,
            args,
            distinct,
            star,
        } => {
            // GROUPING(key): 1 when the key is aggregated away by the
            // current grouping set, else 0.
            if name == "GROUPING" && args.len() == 1 {
                let Some((alias, _)) = g.keys.iter().find(|(_, k)| *k == args[0]) else {
                    return Err(PlanError::new("GROUPING() argument must be a grouping key"));
                };
                return Ok(if g.multi {
                    Expr::var(format!("$grouping${alias}"))
                } else {
                    Expr::Lit(ast::Lit::Int(0))
                });
            }
            if *star && AggFunc::parse(name).is_some() {
                // COUNT(*) ⇒ COLL_COUNT(g)
                return Ok(Call {
                    name: "COLL_COUNT".to_string(),
                    args: vec![Expr::var(g.group_var.clone())],
                    distinct: false,
                    star: false,
                });
            }
            if let Some((func, false)) = AggFunc::parse(name) {
                if args.len() != 1 {
                    return Err(PlanError::new(format!("{name} takes exactly one argument")));
                }
                // AGG(x) ⇒ COLL_AGG(FROM g AS $gi SELECT VALUE x[$gi.v/v])
                let body = substitute_captured(&args[0], &g.captured);
                let sub = make_group_scan_query(&g.group_var, body);
                return Ok(Call {
                    name: func.coll_name().to_string(),
                    args: vec![Subquery(Box::new(sub))],
                    distinct: *distinct,
                    star: false,
                });
            }
            Call {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| rewrite_grouped(a, g))
                    .collect::<Result<_, _>>()?,
                distinct: *distinct,
                star: *star,
            }
        }
        Path { head, .. } => {
            let shadowed = g.keys.iter().any(|(a, _)| a == head) || *head == g.group_var;
            if !shadowed && g.captured.iter().any(|c| c == head) {
                return Err(PlanError::new(format!(
                    "variable {head} must appear in the GROUP BY clause or \
                     be used in an aggregate function"
                ))
                .with_name(head));
            }
            e.clone()
        }
        Bin { op, left, right } => Bin {
            op: *op,
            left: Box::new(rewrite_grouped(left, g)?),
            right: Box::new(rewrite_grouped(right, g)?),
        },
        Un { op, expr } => Un {
            op: *op,
            expr: Box::new(rewrite_grouped(expr, g)?),
        },
        Like {
            expr,
            pattern,
            escape,
            negated,
        } => Like {
            expr: Box::new(rewrite_grouped(expr, g)?),
            pattern: Box::new(rewrite_grouped(pattern, g)?),
            escape: match escape {
                Some(esc) => Some(Box::new(rewrite_grouped(esc, g)?)),
                None => None,
            },
            negated: *negated,
        },
        Between {
            expr,
            low,
            high,
            negated,
        } => Between {
            expr: Box::new(rewrite_grouped(expr, g)?),
            low: Box::new(rewrite_grouped(low, g)?),
            high: Box::new(rewrite_grouped(high, g)?),
            negated: *negated,
        },
        In { expr, rhs, negated } => In {
            expr: Box::new(rewrite_grouped(expr, g)?),
            rhs: Box::new(match rhs.as_ref() {
                ast::InRhs::List(items) => ast::InRhs::List(
                    items
                        .iter()
                        .map(|i| rewrite_grouped(i, g))
                        .collect::<Result<_, _>>()?,
                ),
                ast::InRhs::Expr(e) => ast::InRhs::Expr(rewrite_grouped(e, g)?),
            }),
            negated: *negated,
        },
        Is {
            expr,
            test,
            negated,
        } => Is {
            expr: Box::new(rewrite_grouped(expr, g)?),
            test: test.clone(),
            negated: *negated,
        },
        Case {
            operand,
            arms,
            else_expr,
        } => Case {
            operand: match operand {
                Some(op) => Some(Box::new(rewrite_grouped(op, g)?)),
                None => None,
            },
            arms: arms
                .iter()
                .map(|(w, t)| Ok((rewrite_grouped(w, g)?, rewrite_grouped(t, g)?)))
                .collect::<Result<_, PlanError>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(rewrite_grouped(e, g)?)),
                None => None,
            },
        },
        Cast { expr, ty } => Cast {
            expr: Box::new(rewrite_grouped(expr, g)?),
            ty: ty.clone(),
        },
        TupleCtor(pairs) => TupleCtor(
            pairs
                .iter()
                .map(|(n, v)| Ok((rewrite_grouped(n, g)?, rewrite_grouped(v, g)?)))
                .collect::<Result<_, PlanError>>()?,
        ),
        ArrayCtor(items) => ArrayCtor(
            items
                .iter()
                .map(|i| rewrite_grouped(i, g))
                .collect::<Result<_, _>>()?,
        ),
        BagCtor(items) => BagCtor(
            items
                .iter()
                .map(|i| rewrite_grouped(i, g))
                .collect::<Result<_, _>>()?,
        ),
        Window {
            func,
            args,
            star,
            partition_by,
            order_by,
        } => Window {
            func: func.clone(),
            args: args
                .iter()
                .map(|a| rewrite_grouped(a, g))
                .collect::<Result<_, _>>()?,
            star: *star,
            partition_by: partition_by
                .iter()
                .map(|p| rewrite_grouped(p, g))
                .collect::<Result<_, _>>()?,
            order_by: order_by
                .iter()
                .map(|o| {
                    Ok(ast::OrderItem {
                        expr: rewrite_grouped(&o.expr, g)?,
                        desc: o.desc,
                        nulls_first: o.nulls_first,
                    })
                })
                .collect::<Result<_, PlanError>>()?,
        },
        // Subqueries are their own scope; they may legitimately reference
        // the group variable and key aliases (Listing 12), which resolve
        // through the normal scope mechanism.
        Subquery(_) | Exists(_) | Lit(_) | Param(_) => e.clone(),
    })
}

/// Replaces references to captured pre-group variables `v` with `$gi.v`.
fn substitute_captured(e: &Expr, captured: &[String]) -> Expr {
    use Expr::*;
    match e {
        Path { head, steps } if captured.iter().any(|c| c == head) => {
            let mut new_steps = vec![ast::PathStep::Attr(head.clone())];
            new_steps.extend(steps.iter().cloned());
            Path {
                head: SYNTH_GROUP_ITEM.to_string(),
                steps: new_steps,
            }
        }
        Path { .. } | Lit(_) | Param(_) => e.clone(),
        Bin { op, left, right } => Bin {
            op: *op,
            left: Box::new(substitute_captured(left, captured)),
            right: Box::new(substitute_captured(right, captured)),
        },
        Un { op, expr } => Un {
            op: *op,
            expr: Box::new(substitute_captured(expr, captured)),
        },
        Like {
            expr,
            pattern,
            escape,
            negated,
        } => Like {
            expr: Box::new(substitute_captured(expr, captured)),
            pattern: Box::new(substitute_captured(pattern, captured)),
            escape: escape
                .as_ref()
                .map(|e| Box::new(substitute_captured(e, captured))),
            negated: *negated,
        },
        Between {
            expr,
            low,
            high,
            negated,
        } => Between {
            expr: Box::new(substitute_captured(expr, captured)),
            low: Box::new(substitute_captured(low, captured)),
            high: Box::new(substitute_captured(high, captured)),
            negated: *negated,
        },
        In { expr, rhs, negated } => In {
            expr: Box::new(substitute_captured(expr, captured)),
            rhs: Box::new(match rhs.as_ref() {
                ast::InRhs::List(items) => ast::InRhs::List(
                    items
                        .iter()
                        .map(|i| substitute_captured(i, captured))
                        .collect(),
                ),
                ast::InRhs::Expr(e) => ast::InRhs::Expr(substitute_captured(e, captured)),
            }),
            negated: *negated,
        },
        Is {
            expr,
            test,
            negated,
        } => Is {
            expr: Box::new(substitute_captured(expr, captured)),
            test: test.clone(),
            negated: *negated,
        },
        Case {
            operand,
            arms,
            else_expr,
        } => Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(substitute_captured(o, captured))),
            arms: arms
                .iter()
                .map(|(w, t)| {
                    (
                        substitute_captured(w, captured),
                        substitute_captured(t, captured),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(substitute_captured(e, captured))),
        },
        Cast { expr, ty } => Cast {
            expr: Box::new(substitute_captured(expr, captured)),
            ty: ty.clone(),
        },
        Call {
            name,
            args,
            distinct,
            star,
        } => Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute_captured(a, captured))
                .collect(),
            distinct: *distinct,
            star: *star,
        },
        TupleCtor(pairs) => TupleCtor(
            pairs
                .iter()
                .map(|(n, v)| {
                    (
                        substitute_captured(n, captured),
                        substitute_captured(v, captured),
                    )
                })
                .collect(),
        ),
        ArrayCtor(items) => ArrayCtor(
            items
                .iter()
                .map(|i| substitute_captured(i, captured))
                .collect(),
        ),
        BagCtor(items) => BagCtor(
            items
                .iter()
                .map(|i| substitute_captured(i, captured))
                .collect(),
        ),
        Window {
            func,
            args,
            star,
            partition_by,
            order_by,
        } => Window {
            func: func.clone(),
            args: args
                .iter()
                .map(|a| substitute_captured(a, captured))
                .collect(),
            star: *star,
            partition_by: partition_by
                .iter()
                .map(|p| substitute_captured(p, captured))
                .collect(),
            order_by: order_by
                .iter()
                .map(|o| ast::OrderItem {
                    expr: substitute_captured(&o.expr, captured),
                    desc: o.desc,
                    nulls_first: o.nulls_first,
                })
                .collect(),
        },
        // Correlated subqueries inside aggregate arguments are out of
        // SQL's (and this implementation's) scope; left untouched.
        Subquery(_) | Exists(_) => e.clone(),
    }
}

/// Builds the AST for `FROM <group_var> AS $gi SELECT VALUE <body>`.
fn make_group_scan_query(group_var: &str, body: Expr) -> Query {
    let mut block = ast::QueryBlock::with_select(SelectClause::SelectValue {
        quantifier: SetQuantifier::All,
        expr: body,
    });
    block.from.push(FromItem::Collection {
        expr: Expr::var(group_var.to_string()),
        as_var: Some(SYNTH_GROUP_ITEM.to_string()),
        at_var: None,
    });
    block.placement = ast::SelectPlacement::Trailing;
    Query {
        ctes: Vec::new(),
        body: SetExpr::Block(Box::new(block)),
        order_by: Vec::new(),
        limit: None,
        offset: None,
    }
}

/// Used by tests and the REPL: lower with default config.
pub fn lower_default(q: &Query) -> Result<CoreQuery, PlanError> {
    lower_query(q, &PlanConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_syntax::parse_query;

    fn lower(src: &str) -> CoreQuery {
        let q = parse_query(src).unwrap();
        lower_query(&q, &PlanConfig::default()).unwrap()
    }

    fn lower_composable(src: &str) -> CoreQuery {
        let q = parse_query(src).unwrap();
        lower_query(
            &q,
            &PlanConfig {
                compat: CompatMode::Composable,
                ..PlanConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn select_list_becomes_tuple_constructor() {
        let q = lower("SELECT e.name AS emp_name FROM hr.emp AS e");
        match q.op {
            CoreOp::Project {
                expr: CoreExpr::TupleCtor(pairs),
                ..
            } => {
                assert_eq!(pairs.len(), 1);
                assert_eq!(pairs[0].0, CoreExpr::Const(Value::Str("emp_name".into())));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn from_comma_items_left_correlate() {
        let q = lower("SELECT VALUE p FROM hr.emp AS e, e.projects AS p");
        match q.op {
            CoreOp::Project { input, .. } => match *input {
                CoreOp::From {
                    item: CoreFrom::Correlate { left, right },
                } => {
                    assert!(matches!(*left, CoreFrom::Scan { ref as_var, .. } if as_var == "e"));
                    match *right {
                        CoreFrom::Scan { expr, as_var, .. } => {
                            assert_eq!(as_var, "p");
                            // e is in scope, so e.projects is Var + Path,
                            // not a Global.
                            assert_eq!(
                                expr,
                                CoreExpr::Path(
                                    Box::new(CoreExpr::Var("e".into())),
                                    "projects".into()
                                )
                            );
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unresolved_heads_become_globals_with_longest_prefix() {
        let q = lower("SELECT VALUE e FROM hr.emp_nest_tuples AS e");
        match q.op {
            CoreOp::Project { input, .. } => match *input {
                CoreOp::From {
                    item: CoreFrom::Scan { expr, .. },
                } => {
                    assert_eq!(
                        expr,
                        CoreExpr::Global(vec!["hr".into(), "emp_nest_tuples".into()])
                    );
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn listing_15_gets_an_implicit_group() {
        // SELECT AVG(e.salary) AS avgsal FROM hr.emp AS e WHERE …
        let q = lower("SELECT AVG(e.salary) AS avgsal FROM hr.emp AS e WHERE e.title = 'Engineer'");
        let text = q.explain();
        assert!(text.contains("group by <all>"), "{text}");
        assert!(text.contains("COLL_AVG"), "{text}");
        assert!(text.contains("$gi.e.salary"), "{text}");
    }

    #[test]
    fn listing_17_grouped_aggregate_rewrites_to_coll_avg() {
        let q = lower(
            "SELECT e.deptno, AVG(e.salary) AS avgsal FROM hr.emp AS e \
             WHERE e.title = 'Engineer' GROUP BY e.deptno",
        );
        let text = q.explain();
        // The deptno key occurrence becomes its alias variable.
        assert!(text.contains("group by e.deptno AS deptno"), "{text}");
        assert!(text.contains("'deptno': deptno"), "{text}");
        assert!(text.contains("COLL_AVG"), "{text}");
    }

    #[test]
    fn count_star_becomes_coll_count_of_group() {
        let q = lower("SELECT COUNT(*) AS n FROM t AS x");
        let text = q.explain();
        assert!(text.contains("COLL_COUNT($group)"), "{text}");
    }

    #[test]
    fn group_as_variable_is_in_scope_for_subqueries() {
        // Listing 12.
        let q = lower(
            "FROM hr.emp_nest_scalars AS e, e.projects AS p \
             WHERE p LIKE '%Security%' GROUP BY LOWER(p) AS p GROUP AS g \
             SELECT p AS proj_name, (FROM g AS v SELECT VALUE v.e.name) AS employees",
        );
        let text = q.explain();
        assert!(text.contains("group as g capturing [e, p]"), "{text}");
        // The subquery scans Var(g), not a global.
        assert!(text.contains("scan g as v"), "{text}");
    }

    #[test]
    fn ungrouped_column_reference_is_rejected() {
        let q = parse_query("SELECT e.name, AVG(e.salary) AS a FROM hr.emp AS e").unwrap();
        let err = lower_query(&q, &PlanConfig::default()).unwrap_err();
        assert!(err.message().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn bare_aggregate_in_where_is_rejected() {
        let q = parse_query("SELECT VALUE e FROM t AS e WHERE AVG(e.x) > 1").unwrap();
        let err = lower_query(&q, &PlanConfig::default()).unwrap_err();
        assert!(err.message().contains("grouping context"), "{err}");
    }

    #[test]
    fn subquery_coercion_follows_the_compat_flag() {
        let src = "SELECT VALUE x FROM t AS x WHERE x.a = (SELECT m.v AS v FROM m AS m)";
        let compat = lower(src);
        let composable = lower_composable(src);
        let find_coercion = |q: &CoreQuery| -> Coercion {
            fn walk_expr(e: &CoreExpr, out: &mut Vec<Coercion>) {
                match e {
                    CoreExpr::Subquery { coercion, .. } => out.push(*coercion),
                    CoreExpr::Bin(_, l, r) => {
                        walk_expr(l, out);
                        walk_expr(r, out);
                    }
                    _ => {}
                }
            }
            fn walk(op: &CoreOp, out: &mut Vec<Coercion>) {
                match op {
                    CoreOp::Filter { input, pred } => {
                        walk_expr(pred, out);
                        walk(input, out);
                    }
                    CoreOp::Project { input, .. } => walk(input, out),
                    _ => {}
                }
            }
            let mut v = Vec::new();
            walk(&q.op, &mut v);
            v[0]
        };
        assert_eq!(find_coercion(&compat), Coercion::Scalar);
        assert_eq!(find_coercion(&composable), Coercion::Bag);
    }

    #[test]
    fn select_value_subqueries_never_coerce() {
        let src = "SELECT VALUE x FROM t AS x WHERE x.a = (SELECT VALUE m.v FROM m AS m)";
        let q = lower(src);
        let text = q.explain();
        assert!(!text.contains("scalar:"), "{text}");
    }

    #[test]
    fn in_subquery_gets_collection_coercion() {
        let q = lower("SELECT VALUE x FROM t AS x WHERE x.a IN (SELECT m.v AS v FROM m AS m)");
        assert!(q.explain().contains("coll:subquery"), "{}", q.explain());
    }

    #[test]
    fn select_star_merges_from_variables() {
        let q = lower("SELECT * FROM a AS a, b AS b");
        let text = q.explain();
        assert!(text.contains("$MERGE"), "{text}");
        assert!(text.contains("'*a'"), "{text}");
        assert!(text.contains("'*b'"), "{text}");
    }

    #[test]
    fn simple_case_desugars_to_searched() {
        let q = lower("SELECT VALUE CASE x.k WHEN 1 THEN 'a' ELSE 'b' END FROM t AS x");
        assert!(q.explain().contains("WHEN (x.k = 1)"), "{}", q.explain());
    }

    #[test]
    fn order_by_alias_is_substituted() {
        let q = lower("SELECT x.a + x.b AS s FROM t AS x ORDER BY s DESC");
        let text = q.explain();
        assert!(text.contains("sort (x.a + x.b) desc"), "{text}");
    }

    #[test]
    fn right_join_mirrors_to_left() {
        let q = lower("SELECT * FROM a AS a RIGHT JOIN b AS b ON a.id = b.id");
        let text = q.explain();
        assert!(text.contains("left nested-loop join"), "{text}");
        // b is now the preserved (left) side.
        let scan_b = text.find("scan @b").unwrap();
        let scan_a = text.find("scan @a").unwrap();
        assert!(scan_b < scan_a, "{text}");
    }

    #[test]
    fn unpivot_and_pivot_lower() {
        let q = lower(
            "SELECT sym AS symbol, price AS price \
             FROM closing_prices AS c, UNPIVOT c AS price AT sym",
        );
        assert!(q.explain().contains("unpivot c as price at sym"));
        let q = lower("PIVOT sp.price AT sp.symbol FROM today_stock_prices AS sp");
        assert!(q.explain().contains("pivot sp.price at sp.symbol"));
    }

    #[test]
    fn lets_become_bindings() {
        let q = lower("FROM t AS x LET y = x.a + 1 WHERE y > 2 SELECT VALUE y");
        assert!(q.explain().contains("let y = (x.a + 1)"), "{}", q.explain());
    }

    #[test]
    fn with_ctes_lower() {
        let q = lower("WITH eng AS (SELECT VALUE e FROM hr.emp AS e) SELECT VALUE x FROM eng AS x");
        let text = q.explain();
        assert!(text.contains("with"), "{text}");
        assert!(text.contains("eng :="), "{text}");
        assert!(text.contains("scan eng as x"), "{text}");
    }

    #[test]
    fn having_without_group_is_rejected() {
        let q = parse_query("SELECT VALUE x FROM t AS x HAVING x > 1").unwrap();
        assert!(lower_query(&q, &PlanConfig::default()).is_err());
    }

    #[test]
    fn count_distinct_survives_rewriting() {
        let q = lower("SELECT COUNT(DISTINCT e.dept) AS n FROM t AS e");
        let text = q.explain();
        assert!(text.contains("COLL_COUNT(DISTINCT"), "{text}");
    }

    #[test]
    fn group_by_key_without_alias_derives_one() {
        let q = lower("SELECT e.deptno FROM t AS e GROUP BY e.deptno");
        assert!(
            q.explain().contains("e.deptno AS deptno"),
            "{}",
            q.explain()
        );
    }

    #[test]
    fn full_join_reports_a_clear_error() {
        let q = parse_query("SELECT * FROM a AS a FULL JOIN b AS b ON a.x = b.x").unwrap();
        let err = lower_query(&q, &PlanConfig::default()).unwrap_err();
        assert!(err.message().contains("FULL OUTER JOIN"));
    }
}
