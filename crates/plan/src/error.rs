//! Planning errors.

use std::fmt;

/// An error produced while lowering a query to SQL++ Core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    message: String,
}

impl PlanError {
    /// Creates a planning error.
    pub fn new(message: impl Into<String>) -> Self {
        PlanError {
            message: message.into(),
        }
    }

    /// The message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan error: {}", self.message)
    }
}

impl std::error::Error for PlanError {}
