//! Planning errors.

use std::fmt;

/// An error produced while lowering a query to SQL++ Core.
///
/// Carries a stable diagnostic `code` and, where lowering knows which
/// source identifier is at fault, the offending `name` — the analysis
/// layer uses it to locate a source span (the AST itself carries none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    message: String,
    code: &'static str,
    name: Option<String>,
}

impl PlanError {
    /// Creates a planning error.
    pub fn new(message: impl Into<String>) -> Self {
        PlanError {
            message: message.into(),
            code: "E_PLAN",
            name: None,
        }
    }

    /// Tags the error with the source identifier it is about.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The stable diagnostic code.
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// The offending source identifier, when lowering knows it.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan error: {}", self.message)
    }
}

impl std::error::Error for PlanError {}
