//! # sqlpp-plan — SQL++ Core and the sugar rewritings
//!
//! The paper reconciles SQL compatibility with composability by defining
//! "a SQL++ Core, consisting of fully composable operators", with SQL
//! itself as "'syntactic sugar' rewritings over the SQL++ Core" (§I).
//! This crate is that construction:
//!
//! * [`core`] — the Core algebra: binding-stream operators
//!   (FROM/WHERE/GROUP AS/ORDER/LIMIT/SELECT VALUE/PIVOT) and composable
//!   expressions with explicit variables and `COLL_*` aggregates;
//! * [`lower`] — the rewritings (SELECT lists, SQL aggregates, subquery
//!   coercion, wildcards), gated by the paper's [`CompatMode`] flag;
//! * [`optimize`] — conservative plan cleanup (constant folding, filter
//!   fusion);
//! * `EXPLAIN` — [`CoreQuery::explain`] prints the lowered pipeline, which
//!   is how the listing gallery shows Listings 15→16 and 17→18 as actual
//!   machine rewrites.

#![warn(missing_docs)]

pub mod core;
mod error;
pub mod lower;
mod optimize;
mod scope;
pub mod typecheck;

pub use crate::core::{
    AggFunc, Coercion, CoreExpr, CoreFrom, CoreJoinKind, CoreOp, CoreQuery, CoreSetOp, CoreSortKey,
    WindowDef, WindowFunc,
};
pub use error::PlanError;
pub use lower::{lower_query, CompatMode, PlanConfig};
pub use optimize::optimize;
pub use scope::Scope;
pub use typecheck::{check as typecheck, TypeWarning};

/// Parses, lowers, and optimizes in one step.
pub fn plan(src: &str, config: &PlanConfig) -> Result<CoreQuery, Box<dyn std::error::Error>> {
    let ast = sqlpp_syntax::parse_query(src)?;
    Ok(optimize(lower_query(&ast, config)?))
}
