//! A small rule-based optimizer over Core plans.
//!
//! The paper licenses engines to optimize behind the conceptual semantics
//! ("under the hood a SQL++ engine is free to optimize", §V-C). These
//! passes are deliberately conservative: they never change results, only
//! shapes. The benchmark `agg_pipeline_vs_materialize` measures the win
//! from the evaluator's pipelined aggregation; the passes here handle the
//! classical trivia.

use sqlpp_syntax::ast::BinOp;
use sqlpp_value::Value;

use crate::core::{CoreExpr, CoreOp, CoreQuery};

/// Applies all passes until a fixpoint (bounded).
pub fn optimize(q: CoreQuery) -> CoreQuery {
    let mut op = q.op;
    for _ in 0..4 {
        let before = format!("{op:?}");
        op = fold_op(op);
        if format!("{op:?}") == before {
            break;
        }
    }
    CoreQuery { op }
}

fn fold_op(op: CoreOp) -> CoreOp {
    match op {
        CoreOp::Filter { input, pred } => {
            let input = Box::new(fold_op(*input));
            let pred = fold_expr(pred);
            match pred {
                // WHERE TRUE: drop the filter.
                CoreExpr::Const(Value::Bool(true)) => *input,
                // Merge stacked filters into one AND.
                pred => match *input {
                    CoreOp::Filter {
                        input: inner,
                        pred: inner_pred,
                    } => CoreOp::Filter {
                        input: inner,
                        pred: CoreExpr::Bin(BinOp::And, Box::new(inner_pred), Box::new(pred)),
                    },
                    other => CoreOp::Filter {
                        input: Box::new(other),
                        pred,
                    },
                },
            }
        }
        CoreOp::Project {
            input,
            expr,
            distinct,
        } => CoreOp::Project {
            input: Box::new(fold_op(*input)),
            expr: fold_expr(expr),
            distinct,
        },
        CoreOp::Group {
            input,
            keys,
            group_var,
            captured,
            emit_empty_group,
        } => CoreOp::Group {
            input: Box::new(fold_op(*input)),
            keys: keys.into_iter().map(|(a, e)| (a, fold_expr(e))).collect(),
            group_var,
            captured,
            emit_empty_group,
        },
        CoreOp::Append { inputs } => CoreOp::Append {
            inputs: inputs.into_iter().map(fold_op).collect(),
        },
        CoreOp::Sort { input, keys } => CoreOp::Sort {
            input: Box::new(fold_op(*input)),
            keys,
        },
        CoreOp::SortValues { input, keys } => CoreOp::SortValues {
            input: Box::new(fold_op(*input)),
            keys,
        },
        CoreOp::LimitOffset {
            input,
            limit,
            offset,
        } => CoreOp::LimitOffset {
            input: Box::new(fold_op(*input)),
            limit: limit.map(fold_expr),
            offset: offset.map(fold_expr),
        },
        CoreOp::Pivot { input, value, name } => CoreOp::Pivot {
            input: Box::new(fold_op(*input)),
            value: fold_expr(value),
            name: fold_expr(name),
        },
        CoreOp::SetOp {
            op,
            all,
            left,
            right,
        } => CoreOp::SetOp {
            op,
            all,
            left: Box::new(fold_op(*left)),
            right: Box::new(fold_op(*right)),
        },
        CoreOp::Window { input, defs } => CoreOp::Window {
            input: Box::new(fold_op(*input)),
            defs: defs
                .into_iter()
                .map(|mut d| {
                    d.args = d.args.into_iter().map(fold_expr).collect();
                    d.partition = d.partition.into_iter().map(fold_expr).collect();
                    d
                })
                .collect(),
        },
        CoreOp::With { bindings, body } => CoreOp::With {
            bindings: bindings
                .into_iter()
                .map(|(n, q)| (n, optimize(q)))
                .collect(),
            body: Box::new(fold_op(*body)),
        },
        other @ (CoreOp::Single | CoreOp::From { .. }) => other,
    }
}

/// Constant folding limited to total, absent-value-free cases: integer
/// arithmetic without overflow, boolean AND/OR/NOT over constants, and
/// boolean short-circuits with one constant side (sound under three-valued
/// logic only in the directions applied here).
fn fold_expr(e: CoreExpr) -> CoreExpr {
    use CoreExpr::*;
    match e {
        Bin(op, l, r) => {
            let l = fold_expr(*l);
            let r = fold_expr(*r);
            if let (Const(Value::Int(a)), Const(Value::Int(b))) = (&l, &r) {
                let folded = match op {
                    BinOp::Add => a.checked_add(*b).map(Value::Int),
                    BinOp::Sub => a.checked_sub(*b).map(Value::Int),
                    BinOp::Mul => a.checked_mul(*b).map(Value::Int),
                    BinOp::Eq => Some(Value::Bool(a == b)),
                    BinOp::NotEq => Some(Value::Bool(a != b)),
                    BinOp::Lt => Some(Value::Bool(a < b)),
                    BinOp::LtEq => Some(Value::Bool(a <= b)),
                    BinOp::Gt => Some(Value::Bool(a > b)),
                    BinOp::GtEq => Some(Value::Bool(a >= b)),
                    _ => None,
                };
                if let Some(v) = folded {
                    return Const(v);
                }
            }
            match (op, &l, &r) {
                // TRUE AND x ⇒ x; x AND TRUE ⇒ x (sound in 3VL).
                (BinOp::And, Const(Value::Bool(true)), _) => r,
                (BinOp::And, _, Const(Value::Bool(true))) => l,
                // FALSE AND x ⇒ FALSE (sound: FALSE dominates NULL/MISSING).
                (BinOp::And, Const(Value::Bool(false)), _)
                | (BinOp::And, _, Const(Value::Bool(false))) => Const(Value::Bool(false)),
                // FALSE OR x ⇒ x; TRUE OR x ⇒ TRUE.
                (BinOp::Or, Const(Value::Bool(false)), _) => r,
                (BinOp::Or, _, Const(Value::Bool(false))) => l,
                (BinOp::Or, Const(Value::Bool(true)), _)
                | (BinOp::Or, _, Const(Value::Bool(true))) => Const(Value::Bool(true)),
                _ => Bin(op, Box::new(l), Box::new(r)),
            }
        }
        Un(op, inner) => {
            let inner = fold_expr(*inner);
            if let (sqlpp_syntax::ast::UnOp::Not, Const(Value::Bool(b))) = (op, &inner) {
                return Const(Value::Bool(!b));
            }
            Un(op, Box::new(inner))
        }
        Case { arms, else_expr } => Case {
            arms: arms
                .into_iter()
                .map(|(w, t)| (fold_expr(w), fold_expr(t)))
                .collect(),
            else_expr: Box::new(fold_expr(*else_expr)),
        },
        Path(base, attr) => Path(Box::new(fold_expr(*base)), attr),
        Index(base, idx) => Index(Box::new(fold_expr(*base)), Box::new(fold_expr(*idx))),
        Call { name, args } => Call {
            name,
            args: args.into_iter().map(fold_expr).collect(),
        },
        CollAgg {
            func,
            distinct,
            input,
        } => CollAgg {
            func,
            distinct,
            input: Box::new(fold_expr(*input)),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_query, PlanConfig};
    use sqlpp_syntax::parse_query;

    fn opt(src: &str) -> String {
        let q = parse_query(src).unwrap();
        optimize(lower_query(&q, &PlanConfig::default()).unwrap()).explain()
    }

    #[test]
    fn constant_arithmetic_folds() {
        let text = opt("SELECT VALUE x FROM t AS x WHERE x.a = 1 + 2 * 3");
        assert!(text.contains("(x.a = 7)"), "{text}");
    }

    #[test]
    fn where_true_is_dropped() {
        let text = opt("SELECT VALUE x FROM t AS x WHERE 1 = 1");
        assert!(!text.contains("filter"), "{text}");
    }

    #[test]
    fn stacked_filters_merge() {
        // HAVING after WHERE on a grouped query keeps separate stages, but
        // a WHERE TRUE AND x collapses.
        let text = opt("SELECT VALUE x FROM t AS x WHERE TRUE AND x.a > 0");
        assert!(text.contains("filter (x.a > 0)"), "{text}");
    }

    #[test]
    fn false_and_null_folds_to_false() {
        // Sound even though the other side is NULL: FALSE dominates.
        let text = opt("SELECT VALUE x FROM t AS x WHERE FALSE AND NULL");
        assert!(text.contains("filter false"), "{text}");
    }

    #[test]
    fn overflow_is_not_folded() {
        let text = opt(&format!(
            "SELECT VALUE x FROM t AS x WHERE x.a = {} + {}",
            i64::MAX,
            i64::MAX
        ));
        assert!(text.contains("+"), "{text}");
    }
}
