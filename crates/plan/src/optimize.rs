//! A small rule-based optimizer over Core plans.
//!
//! The paper licenses engines to optimize behind the conceptual semantics
//! ("under the hood a SQL++ engine is free to optimize", §V-C). These
//! passes are deliberately conservative: they never change results, only
//! shapes. The benchmark `agg_pipeline_vs_materialize` measures the win
//! from the evaluator's pipelined aggregation; the passes here handle the
//! classical trivia.

use std::collections::HashSet;

use sqlpp_syntax::ast::BinOp;
use sqlpp_value::Value;

use crate::core::{CoreExpr, CoreFrom, CoreJoinKind, CoreOp, CoreQuery};

/// Applies all passes until a fixpoint (bounded). Fixpoint detection is
/// structural (`PartialEq` on the plan tree), not textual.
pub fn optimize(q: CoreQuery) -> CoreQuery {
    let mut op = q.op;
    for _ in 0..4 {
        let before = op.clone();
        op = extract_joins_op(fold_op(op));
        if op == before {
            break;
        }
    }
    CoreQuery { op }
}

fn fold_op(op: CoreOp) -> CoreOp {
    match op {
        CoreOp::Filter { input, pred } => {
            let input = Box::new(fold_op(*input));
            let pred = fold_expr(pred);
            match pred {
                // WHERE TRUE: drop the filter.
                CoreExpr::Const(Value::Bool(true)) => *input,
                // Merge stacked filters into one AND.
                pred => match *input {
                    CoreOp::Filter {
                        input: inner,
                        pred: inner_pred,
                    } => CoreOp::Filter {
                        input: inner,
                        pred: CoreExpr::Bin(BinOp::And, Box::new(inner_pred), Box::new(pred)),
                    },
                    other => CoreOp::Filter {
                        input: Box::new(other),
                        pred,
                    },
                },
            }
        }
        CoreOp::Project {
            input,
            expr,
            distinct,
        } => CoreOp::Project {
            input: Box::new(fold_op(*input)),
            expr: fold_expr(expr),
            distinct,
        },
        CoreOp::Group {
            input,
            keys,
            group_var,
            captured,
            emit_empty_group,
        } => CoreOp::Group {
            input: Box::new(fold_op(*input)),
            keys: keys.into_iter().map(|(a, e)| (a, fold_expr(e))).collect(),
            group_var,
            captured,
            emit_empty_group,
        },
        CoreOp::Append { inputs } => CoreOp::Append {
            inputs: inputs.into_iter().map(fold_op).collect(),
        },
        CoreOp::Sort { input, keys } => CoreOp::Sort {
            input: Box::new(fold_op(*input)),
            keys,
        },
        CoreOp::SortValues { input, keys } => CoreOp::SortValues {
            input: Box::new(fold_op(*input)),
            keys,
        },
        CoreOp::LimitOffset {
            input,
            limit,
            offset,
        } => fuse_topk(fold_op(*input), limit.map(fold_expr), offset.map(fold_expr)),
        CoreOp::TopK {
            input,
            keys,
            limit,
            offset,
            on_values,
        } => CoreOp::TopK {
            input: Box::new(fold_op(*input)),
            keys,
            limit: fold_expr(limit),
            offset: offset.map(fold_expr),
            on_values,
        },
        CoreOp::Pivot { input, value, name } => CoreOp::Pivot {
            input: Box::new(fold_op(*input)),
            value: fold_expr(value),
            name: fold_expr(name),
        },
        CoreOp::SetOp {
            op,
            all,
            left,
            right,
        } => CoreOp::SetOp {
            op,
            all,
            left: Box::new(fold_op(*left)),
            right: Box::new(fold_op(*right)),
        },
        CoreOp::Window { input, defs } => CoreOp::Window {
            input: Box::new(fold_op(*input)),
            defs: defs
                .into_iter()
                .map(|mut d| {
                    d.args = d.args.into_iter().map(fold_expr).collect();
                    d.partition = d.partition.into_iter().map(fold_expr).collect();
                    d
                })
                .collect(),
        },
        CoreOp::With { bindings, body } => CoreOp::With {
            bindings: bindings
                .into_iter()
                .map(|(n, q)| (n, optimize(q)))
                .collect(),
            body: Box::new(fold_op(*body)),
        },
        other @ (CoreOp::Single | CoreOp::From { .. }) => other,
    }
}

/// ORDER BY + LIMIT fusion. A LIMIT directly over a sort only ever
/// observes the first `limit + offset` rows, so the full sort (a
/// pipeline breaker that materializes — and under memory pressure
/// spills — its whole input) is replaced by [`CoreOp::TopK`], a
/// bounded heap that holds at most that many rows and never spills.
///
/// Three shapes fuse:
/// * `limit(sort(..))` — binding-level sort, e.g. inside a lowered
///   subquery; TopK applies the offset skip itself.
/// * `limit(sort-values(..))` — value-level sort after a set-op;
///   likewise.
/// * `limit(project(sort(..)))` — the common `SELECT … ORDER BY …
///   LIMIT n` lowering. The projection must still see the rows an
///   OFFSET later skips (strict-mode errors in them are observable),
///   so the outer LIMIT/OFFSET stays and only the sort underneath is
///   bounded to `limit + offset` rows. To keep that bound a plain
///   constant this shape fuses only for literal limits.
fn fuse_topk(input: CoreOp, limit: Option<CoreExpr>, offset: Option<CoreExpr>) -> CoreOp {
    let Some(limit) = limit else {
        // OFFSET without LIMIT still needs every row: no fusion.
        return CoreOp::LimitOffset {
            input: Box::new(input),
            limit: None,
            offset,
        };
    };
    match input {
        CoreOp::Sort { input, keys } => CoreOp::TopK {
            input,
            keys,
            limit,
            offset,
            on_values: false,
        },
        CoreOp::SortValues { input, keys } => CoreOp::TopK {
            input,
            keys,
            limit,
            offset,
            on_values: true,
        },
        CoreOp::Project {
            input: sort,
            expr,
            distinct: false,
        } if matches!(*sort, CoreOp::Sort { .. })
            && const_nonneg(&limit).is_some()
            && offset.as_ref().is_none_or(|o| const_nonneg(o).is_some())
            && const_nonneg(&limit)
                .unwrap()
                .checked_add(offset.as_ref().map_or(Some(0), const_nonneg).unwrap())
                .is_some() =>
        {
            let CoreOp::Sort { input, keys } = *sort else {
                unreachable!()
            };
            let bound = const_nonneg(&limit).unwrap()
                + offset.as_ref().map_or(Some(0), const_nonneg).unwrap();
            CoreOp::LimitOffset {
                input: Box::new(CoreOp::Project {
                    input: Box::new(CoreOp::TopK {
                        input,
                        keys,
                        limit: CoreExpr::Const(Value::Int(bound)),
                        offset: None,
                        on_values: false,
                    }),
                    expr,
                    distinct: false,
                }),
                limit: Some(limit),
                offset,
            }
        }
        other => CoreOp::LimitOffset {
            input: Box::new(other),
            limit: Some(limit),
            offset,
        },
    }
}

/// The integer value of a non-negative literal LIMIT/OFFSET operand,
/// if it is one.
fn const_nonneg(e: &CoreExpr) -> Option<i64> {
    match e {
        CoreExpr::Const(Value::Int(n)) if *n >= 0 => Some(*n),
        _ => None,
    }
}

/// Constant folding limited to total, absent-value-free cases: integer
/// arithmetic without overflow, boolean AND/OR/NOT over constants, and
/// boolean short-circuits with one constant side (sound under three-valued
/// logic only in the directions applied here).
fn fold_expr(e: CoreExpr) -> CoreExpr {
    use CoreExpr::*;
    match e {
        Bin(op, l, r) => {
            let l = fold_expr(*l);
            let r = fold_expr(*r);
            if let (Const(Value::Int(a)), Const(Value::Int(b))) = (&l, &r) {
                let folded = match op {
                    BinOp::Add => a.checked_add(*b).map(Value::Int),
                    BinOp::Sub => a.checked_sub(*b).map(Value::Int),
                    BinOp::Mul => a.checked_mul(*b).map(Value::Int),
                    BinOp::Eq => Some(Value::Bool(a == b)),
                    BinOp::NotEq => Some(Value::Bool(a != b)),
                    BinOp::Lt => Some(Value::Bool(a < b)),
                    BinOp::LtEq => Some(Value::Bool(a <= b)),
                    BinOp::Gt => Some(Value::Bool(a > b)),
                    BinOp::GtEq => Some(Value::Bool(a >= b)),
                    _ => None,
                };
                if let Some(v) = folded {
                    return Const(v);
                }
            }
            match (op, &l, &r) {
                // TRUE AND x ⇒ x; x AND TRUE ⇒ x (sound in 3VL).
                (BinOp::And, Const(Value::Bool(true)), _) => r,
                (BinOp::And, _, Const(Value::Bool(true))) => l,
                // FALSE AND x ⇒ FALSE (sound: FALSE dominates NULL/MISSING).
                (BinOp::And, Const(Value::Bool(false)), _)
                | (BinOp::And, _, Const(Value::Bool(false))) => Const(Value::Bool(false)),
                // FALSE OR x ⇒ x; TRUE OR x ⇒ TRUE.
                (BinOp::Or, Const(Value::Bool(false)), _) => r,
                (BinOp::Or, _, Const(Value::Bool(false))) => l,
                (BinOp::Or, Const(Value::Bool(true)), _)
                | (BinOp::Or, _, Const(Value::Bool(true))) => Const(Value::Bool(true)),
                _ => Bin(op, Box::new(l), Box::new(r)),
            }
        }
        Un(op, inner) => {
            let inner = fold_expr(*inner);
            if let (sqlpp_syntax::ast::UnOp::Not, Const(Value::Bool(b))) = (op, &inner) {
                return Const(Value::Bool(!b));
            }
            Un(op, Box::new(inner))
        }
        Case { arms, else_expr } => Case {
            arms: arms
                .into_iter()
                .map(|(w, t)| (fold_expr(w), fold_expr(t)))
                .collect(),
            else_expr: Box::new(fold_expr(*else_expr)),
        },
        Path(base, attr) => Path(Box::new(fold_expr(*base)), attr),
        Index(base, idx) => Index(Box::new(fold_expr(*base)), Box::new(fold_expr(*idx))),
        Call { name, args } => Call {
            name,
            args: args.into_iter().map(fold_expr).collect(),
        },
        CollAgg {
            func,
            distinct,
            input,
        } => CollAgg {
            func,
            distinct,
            input: Box::new(fold_expr(*input)),
        },
        other => other,
    }
}

// ---------------------------------------------------------------------
// Hash equi-join extraction
// ---------------------------------------------------------------------
//
// The paper's conceptual semantics for joins and comma-FROM lists is a
// (left-correlated) nested loop — O(L·R) ON/WHERE evaluations. "Under the
// hood a SQL++ engine is free to optimize" (§V-C): this pass finds
// conjunctive equality predicates linking an *uncorrelated* right side to
// the left side and rewrites [`CoreFrom::Join`] / `Filter` over
// [`CoreFrom::Correlate`] into [`CoreFrom::HashJoin`], which the evaluator
// runs in O(L + R).
//
// Soundness rests on three facts:
//  - a row passes an AND chain iff every conjunct evaluates to TRUE, so
//    splitting the chain and checking conjuncts at different stages keeps
//    the same rows (3VL: NULL/MISSING/FALSE all fail the chain);
//  - `a = b` is TRUE iff both sides are non-absent and structurally equal
//    (sqlpp_value::cmp::sql_eq), which is exactly what a hash table keyed
//    on structural hashes with absent keys excluded computes;
//  - conjuncts are only moved to stages whose environment still binds
//    every variable the conjunct references. Conjuncts containing
//    `Global`/`Dynamic` references are never moved across environments
//    (their runtime resolution may consult the environment), so they stay
//    where the original plan evaluated them.
//
// Evaluation *order* of conjuncts is not preserved — which strict-mode
// type error surfaces first from a multi-conjunct ON/WHERE is
// unspecified, as is how often side-local conjuncts run.

fn extract_joins_op(op: CoreOp) -> CoreOp {
    match op {
        CoreOp::Filter { input, pred } => {
            let input = extract_joins_op(*input);
            let pred = extract_joins_expr(pred);
            match input {
                CoreOp::From { item } => {
                    let mut conjuncts = Vec::new();
                    split_conjuncts(pred, &mut conjuncts);
                    let (item, leftover) = extract_from(item, conjuncts);
                    let from = CoreOp::From { item };
                    match and_all(leftover) {
                        None => from,
                        Some(pred) => CoreOp::Filter {
                            input: Box::new(from),
                            pred,
                        },
                    }
                }
                other => CoreOp::Filter {
                    input: Box::new(other),
                    pred,
                },
            }
        }
        CoreOp::From { item } => {
            let (item, leftover) = extract_from(item, Vec::new());
            debug_assert!(leftover.is_empty());
            CoreOp::From { item }
        }
        CoreOp::Single => CoreOp::Single,
        CoreOp::Project {
            input,
            expr,
            distinct,
        } => CoreOp::Project {
            input: Box::new(extract_joins_op(*input)),
            expr: extract_joins_expr(expr),
            distinct,
        },
        CoreOp::Group {
            input,
            keys,
            group_var,
            captured,
            emit_empty_group,
        } => CoreOp::Group {
            input: Box::new(extract_joins_op(*input)),
            keys: keys
                .into_iter()
                .map(|(a, e)| (a, extract_joins_expr(e)))
                .collect(),
            group_var,
            captured,
            emit_empty_group,
        },
        CoreOp::Append { inputs } => CoreOp::Append {
            inputs: inputs.into_iter().map(extract_joins_op).collect(),
        },
        CoreOp::Sort { input, keys } => CoreOp::Sort {
            input: Box::new(extract_joins_op(*input)),
            keys: keys.into_iter().map(extract_joins_sort_key).collect(),
        },
        CoreOp::SortValues { input, keys } => CoreOp::SortValues {
            input: Box::new(extract_joins_op(*input)),
            keys: keys.into_iter().map(extract_joins_sort_key).collect(),
        },
        CoreOp::LimitOffset {
            input,
            limit,
            offset,
        } => CoreOp::LimitOffset {
            input: Box::new(extract_joins_op(*input)),
            limit: limit.map(extract_joins_expr),
            offset: offset.map(extract_joins_expr),
        },
        CoreOp::TopK {
            input,
            keys,
            limit,
            offset,
            on_values,
        } => CoreOp::TopK {
            input: Box::new(extract_joins_op(*input)),
            keys: keys.into_iter().map(extract_joins_sort_key).collect(),
            limit: extract_joins_expr(limit),
            offset: offset.map(extract_joins_expr),
            on_values,
        },
        CoreOp::Pivot { input, value, name } => CoreOp::Pivot {
            input: Box::new(extract_joins_op(*input)),
            value: extract_joins_expr(value),
            name: extract_joins_expr(name),
        },
        CoreOp::SetOp {
            op,
            all,
            left,
            right,
        } => CoreOp::SetOp {
            op,
            all,
            left: Box::new(extract_joins_op(*left)),
            right: Box::new(extract_joins_op(*right)),
        },
        CoreOp::Window { input, defs } => CoreOp::Window {
            input: Box::new(extract_joins_op(*input)),
            defs: defs
                .into_iter()
                .map(|mut d| {
                    d.args = d.args.into_iter().map(extract_joins_expr).collect();
                    d.partition = d.partition.into_iter().map(extract_joins_expr).collect();
                    d.order = d.order.into_iter().map(extract_joins_sort_key).collect();
                    d
                })
                .collect(),
        },
        CoreOp::With { bindings, body } => CoreOp::With {
            bindings,
            body: Box::new(extract_joins_op(*body)),
        },
    }
}

fn extract_joins_sort_key(mut k: crate::core::CoreSortKey) -> crate::core::CoreSortKey {
    k.expr = extract_joins_expr(k.expr);
    k
}

/// Recurses the join-extraction pass into nested plans (subqueries,
/// EXISTS) so equi-joins inside them are hashed too; all other expression
/// forms are mapped structurally.
fn extract_joins_expr(e: CoreExpr) -> CoreExpr {
    match e {
        CoreExpr::Subquery { plan, coercion } => CoreExpr::Subquery {
            plan: Box::new(CoreQuery {
                op: extract_joins_op(plan.op),
            }),
            coercion,
        },
        CoreExpr::Exists(q) => CoreExpr::Exists(Box::new(CoreQuery {
            op: extract_joins_op(q.op),
        })),
        CoreExpr::Path(base, attr) => CoreExpr::Path(Box::new(extract_joins_expr(*base)), attr),
        CoreExpr::Index(base, idx) => CoreExpr::Index(
            Box::new(extract_joins_expr(*base)),
            Box::new(extract_joins_expr(*idx)),
        ),
        CoreExpr::Bin(op, l, r) => CoreExpr::Bin(
            op,
            Box::new(extract_joins_expr(*l)),
            Box::new(extract_joins_expr(*r)),
        ),
        CoreExpr::Un(op, inner) => CoreExpr::Un(op, Box::new(extract_joins_expr(*inner))),
        CoreExpr::Like {
            expr,
            pattern,
            escape,
            negated,
        } => CoreExpr::Like {
            expr: Box::new(extract_joins_expr(*expr)),
            pattern: Box::new(extract_joins_expr(*pattern)),
            escape: escape.map(|e| Box::new(extract_joins_expr(*e))),
            negated,
        },
        CoreExpr::Between {
            expr,
            low,
            high,
            negated,
        } => CoreExpr::Between {
            expr: Box::new(extract_joins_expr(*expr)),
            low: Box::new(extract_joins_expr(*low)),
            high: Box::new(extract_joins_expr(*high)),
            negated,
        },
        CoreExpr::In {
            expr,
            collection,
            negated,
        } => CoreExpr::In {
            expr: Box::new(extract_joins_expr(*expr)),
            collection: Box::new(extract_joins_expr(*collection)),
            negated,
        },
        CoreExpr::Is {
            expr,
            test,
            negated,
        } => CoreExpr::Is {
            expr: Box::new(extract_joins_expr(*expr)),
            test,
            negated,
        },
        CoreExpr::Case { arms, else_expr } => CoreExpr::Case {
            arms: arms
                .into_iter()
                .map(|(w, t)| (extract_joins_expr(w), extract_joins_expr(t)))
                .collect(),
            else_expr: Box::new(extract_joins_expr(*else_expr)),
        },
        CoreExpr::Call { name, args } => CoreExpr::Call {
            name,
            args: args.into_iter().map(extract_joins_expr).collect(),
        },
        CoreExpr::CollAgg {
            func,
            distinct,
            input,
        } => CoreExpr::CollAgg {
            func,
            distinct,
            input: Box::new(extract_joins_expr(*input)),
        },
        CoreExpr::TupleCtor(pairs) => CoreExpr::TupleCtor(
            pairs
                .into_iter()
                .map(|(n, v)| (extract_joins_expr(n), extract_joins_expr(v)))
                .collect(),
        ),
        CoreExpr::ArrayCtor(items) => {
            CoreExpr::ArrayCtor(items.into_iter().map(extract_joins_expr).collect())
        }
        CoreExpr::BagCtor(items) => {
            CoreExpr::BagCtor(items.into_iter().map(extract_joins_expr).collect())
        }
        CoreExpr::Cast { expr, ty } => CoreExpr::Cast {
            expr: Box::new(extract_joins_expr(*expr)),
            ty,
        },
        leaf @ (CoreExpr::Const(_)
        | CoreExpr::Var(_)
        | CoreExpr::Param(_)
        | CoreExpr::Global(_)
        | CoreExpr::Dynamic(_)) => leaf,
    }
}

/// Rewrites a FROM tree given filter conjuncts available for pushdown;
/// returns the rewritten tree and the conjuncts it could not consume.
/// Invariant: every conjunct handed to this function references only
/// variables bound by `item` or by enclosing (outer) scopes — never by
/// FROM items to `item`'s right.
fn extract_from(item: CoreFrom, conjuncts: Vec<CoreExpr>) -> (CoreFrom, Vec<CoreExpr>) {
    match item {
        CoreFrom::Correlate { left, right } => {
            let left_set = introduced_set(&left);
            let right_list = introduced_vars(&right);
            let right_set: HashSet<String> = right_list.iter().cloned().collect();

            // Classify each conjunct by which sides it references. A
            // conjunct whose references cannot be determined statically
            // (Global/Dynamic) is never moved.
            let mut left_conj = Vec::new();
            let mut right_conj = Vec::new();
            let mut keys = Vec::new();
            let mut residual = Vec::new();
            let mut leftover = Vec::new();
            let rewritable = uncorrelated(&right, &left_set);
            for c in conjuncts {
                let mut refs = HashSet::new();
                if !expr_refs(&c, &mut refs) {
                    leftover.push(c);
                    continue;
                }
                match side_of(&refs, &left_set, &right_set) {
                    Side::Left => left_conj.push(c),
                    Side::Right if rewritable => right_conj.push(c),
                    Side::Right => leftover.push(c),
                    Side::Neither => leftover.push(c),
                    Side::Both if rewritable => match as_equi_key(c, &left_set, &right_set) {
                        Ok(pair) => keys.push(pair),
                        Err(c) => residual.push(c),
                    },
                    Side::Both => leftover.push(c),
                }
            }

            let (left, mut back) = extract_from(*left, left_conj);
            let (right, _) = extract_from(*right, Vec::new());
            if keys.is_empty() {
                // No hash key: keep the correlate; left-only conjuncts the
                // left subtree could not consume bubble back up.
                leftover.append(&mut back);
                leftover.extend(right_conj);
                leftover.extend(residual);
                (
                    CoreFrom::Correlate {
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                    leftover,
                )
            } else {
                (
                    CoreFrom::HashJoin {
                        kind: CoreJoinKind::Inner,
                        left: Box::new(left),
                        right: Box::new(right),
                        keys,
                        left_pred: and_all(back),
                        right_pred: and_all(right_conj),
                        residual: and_all(residual),
                        right_vars: right_list,
                    },
                    leftover,
                )
            }
        }
        CoreFrom::Join {
            kind,
            left,
            right,
            on,
            right_vars,
        } => {
            let on = extract_joins_expr(on);
            let (left, _) = extract_from(*left, Vec::new());
            let (right, _) = extract_from(*right, Vec::new());
            let left_set = introduced_set(&left);
            let right_set: HashSet<String> = right_vars.iter().cloned().collect();
            if !uncorrelated(&right, &left_set) {
                return (
                    CoreFrom::Join {
                        kind,
                        left: Box::new(left),
                        right: Box::new(right),
                        on,
                        right_vars,
                    },
                    conjuncts,
                );
            }
            let mut on_conj = Vec::new();
            split_conjuncts(on.clone(), &mut on_conj);
            let mut left_conj = Vec::new();
            let mut right_conj = Vec::new();
            let mut keys = Vec::new();
            let mut residual = Vec::new();
            for c in on_conj {
                let mut refs = HashSet::new();
                if !expr_refs(&c, &mut refs) {
                    // Environment-sensitive reference: evaluate per
                    // matched pair, like the original ON did.
                    residual.push(c);
                    continue;
                }
                match side_of(&refs, &left_set, &right_set) {
                    // ON conjuncts over only-left or only-outer variables
                    // gate matching per left row in both join kinds.
                    Side::Left | Side::Neither => left_conj.push(c),
                    Side::Right => right_conj.push(c),
                    Side::Both => match as_equi_key(c, &left_set, &right_set) {
                        Ok(pair) => keys.push(pair),
                        Err(c) => residual.push(c),
                    },
                }
            }
            if keys.is_empty() {
                (
                    CoreFrom::Join {
                        kind,
                        left: Box::new(left),
                        right: Box::new(right),
                        on,
                        right_vars,
                    },
                    conjuncts,
                )
            } else {
                (
                    CoreFrom::HashJoin {
                        kind,
                        left: Box::new(left),
                        right: Box::new(right),
                        keys,
                        left_pred: and_all(left_conj),
                        right_pred: and_all(right_conj),
                        residual: and_all(residual),
                        right_vars,
                    },
                    conjuncts,
                )
            }
        }
        // Leaves consume nothing; their source expressions may hold
        // nested plans worth extracting in.
        CoreFrom::Scan {
            expr,
            as_var,
            at_var,
        } => (
            CoreFrom::Scan {
                expr: extract_joins_expr(expr),
                as_var,
                at_var,
            },
            conjuncts,
        ),
        CoreFrom::Unpivot {
            expr,
            value_var,
            name_var,
        } => (
            CoreFrom::Unpivot {
                expr: extract_joins_expr(expr),
                value_var,
                name_var,
            },
            conjuncts,
        ),
        CoreFrom::Let { expr, var } => (
            CoreFrom::Let {
                expr: extract_joins_expr(expr),
                var,
            },
            conjuncts,
        ),
        // Already annotated: nothing further to extract.
        other @ CoreFrom::HashJoin { .. } => (other, conjuncts),
    }
}

enum Side {
    Left,
    Right,
    Both,
    Neither,
}

fn side_of(refs: &HashSet<String>, left: &HashSet<String>, right: &HashSet<String>) -> Side {
    match (!refs.is_disjoint(left), !refs.is_disjoint(right)) {
        (true, true) => Side::Both,
        (true, false) => Side::Left,
        (false, true) => Side::Right,
        (false, false) => Side::Neither,
    }
}

/// `l = r` where one side references only left variables and the other
/// only right variables (each actually touching its side). Returns the
/// `(left key, right key)` pair or gives the conjunct back.
fn as_equi_key(
    c: CoreExpr,
    left: &HashSet<String>,
    right: &HashSet<String>,
) -> Result<(CoreExpr, CoreExpr), CoreExpr> {
    let CoreExpr::Bin(BinOp::Eq, a, b) = c else {
        return Err(c);
    };
    let mut ra = HashSet::new();
    let mut rb = HashSet::new();
    if !expr_refs(&a, &mut ra) || !expr_refs(&b, &mut rb) {
        return Err(CoreExpr::Bin(BinOp::Eq, a, b));
    }
    let (al, ar) = (!ra.is_disjoint(left), !ra.is_disjoint(right));
    let (bl, br) = (!rb.is_disjoint(left), !rb.is_disjoint(right));
    if al && !ar && br && !bl {
        Ok((*a, *b))
    } else if bl && !br && ar && !al {
        Ok((*b, *a))
    } else {
        Err(CoreExpr::Bin(BinOp::Eq, a, b))
    }
}

fn split_conjuncts(e: CoreExpr, out: &mut Vec<CoreExpr>) {
    match e {
        CoreExpr::Bin(BinOp::And, l, r) => {
            split_conjuncts(*l, out);
            split_conjuncts(*r, out);
        }
        other => out.push(other),
    }
}

/// Left-fold back into an AND chain (preserving conjunct order).
fn and_all(conjuncts: Vec<CoreExpr>) -> Option<CoreExpr> {
    let mut it = conjuncts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, c| {
        CoreExpr::Bin(BinOp::And, Box::new(acc), Box::new(c))
    }))
}

/// Variables introduced by a FROM item, in binding order.
fn introduced_vars(item: &CoreFrom) -> Vec<String> {
    let mut out = Vec::new();
    collect_introduced(item, &mut out);
    out
}

fn introduced_set(item: &CoreFrom) -> HashSet<String> {
    introduced_vars(item).into_iter().collect()
}

fn collect_introduced(item: &CoreFrom, out: &mut Vec<String>) {
    match item {
        CoreFrom::Scan { as_var, at_var, .. } => {
            out.push(as_var.clone());
            if let Some(at) = at_var {
                out.push(at.clone());
            }
        }
        CoreFrom::Unpivot {
            value_var,
            name_var,
            ..
        } => {
            out.push(value_var.clone());
            out.push(name_var.clone());
        }
        CoreFrom::Let { var, .. } => out.push(var.clone()),
        CoreFrom::Correlate { left, right }
        | CoreFrom::Join { left, right, .. }
        | CoreFrom::HashJoin { left, right, .. } => {
            collect_introduced(left, out);
            collect_introduced(right, out);
        }
    }
}

/// True when no expression anywhere in `item` references a variable from
/// `outer` — and every reference is statically knowable (no
/// `Global`/`Dynamic`, whose runtime resolution may consult the
/// environment *except* for FROM-source expressions, where a `Global`
/// table reference is the normal case and resolves against the catalog).
fn uncorrelated(item: &CoreFrom, outer: &HashSet<String>) -> bool {
    let mut refs = HashSet::new();
    from_refs(item, &mut refs) && refs.is_disjoint(outer)
}

fn from_refs(item: &CoreFrom, out: &mut HashSet<String>) -> bool {
    match item {
        CoreFrom::Scan { expr, .. }
        | CoreFrom::Unpivot { expr, .. }
        | CoreFrom::Let { expr, .. } => source_expr_refs(expr, out),
        CoreFrom::Correlate { left, right } => from_refs(left, out) && from_refs(right, out),
        CoreFrom::Join {
            left, right, on, ..
        } => from_refs(left, out) && from_refs(right, out) && expr_refs(on, out),
        CoreFrom::HashJoin {
            left,
            right,
            keys,
            left_pred,
            right_pred,
            residual,
            ..
        } => {
            from_refs(left, out)
                && from_refs(right, out)
                && keys
                    .iter()
                    .all(|(l, r)| expr_refs(l, out) && expr_refs(r, out))
                && [left_pred, right_pred, residual]
                    .into_iter()
                    .flatten()
                    .all(|e| expr_refs(e, out))
        }
    }
}

/// Like [`expr_refs`], but tolerates a bare `Global` *head*: FROM sources
/// are catalog names in the common case. Navigation below the head is
/// still walked.
fn source_expr_refs(e: &CoreExpr, out: &mut HashSet<String>) -> bool {
    match e {
        CoreExpr::Global(_) => true,
        CoreExpr::Path(base, _) => source_expr_refs(base, out),
        CoreExpr::Index(base, idx) => source_expr_refs(base, out) && expr_refs(idx, out),
        other => expr_refs(other, out),
    }
}

/// Collects every `Var` name referenced by `e` into `out`, recursing into
/// subquery plans (an over-approximation: names bound *inside* a subquery
/// are included too, which only makes classification more conservative).
/// Returns `false` when the expression contains a reference whose target
/// depends on the runtime environment (`Global`/`Dynamic`) — such
/// expressions must not be moved to a different evaluation environment.
fn expr_refs(e: &CoreExpr, out: &mut HashSet<String>) -> bool {
    match e {
        CoreExpr::Const(_) | CoreExpr::Param(_) => true,
        CoreExpr::Var(v) => {
            out.insert(v.clone());
            true
        }
        CoreExpr::Global(_) | CoreExpr::Dynamic(_) => false,
        CoreExpr::Path(base, _) => expr_refs(base, out),
        CoreExpr::Index(base, idx) => expr_refs(base, out) && expr_refs(idx, out),
        CoreExpr::Bin(_, l, r) => expr_refs(l, out) && expr_refs(r, out),
        CoreExpr::Un(_, inner) => expr_refs(inner, out),
        CoreExpr::Like {
            expr,
            pattern,
            escape,
            ..
        } => {
            expr_refs(expr, out)
                && expr_refs(pattern, out)
                && escape.as_deref().is_none_or(|e| expr_refs(e, out))
        }
        CoreExpr::Between {
            expr, low, high, ..
        } => expr_refs(expr, out) && expr_refs(low, out) && expr_refs(high, out),
        CoreExpr::In {
            expr, collection, ..
        } => expr_refs(expr, out) && expr_refs(collection, out),
        CoreExpr::Is { expr, .. } => expr_refs(expr, out),
        CoreExpr::Case { arms, else_expr } => {
            arms.iter()
                .all(|(w, t)| expr_refs(w, out) && expr_refs(t, out))
                && expr_refs(else_expr, out)
        }
        CoreExpr::Call { args, .. } => args.iter().all(|a| expr_refs(a, out)),
        CoreExpr::CollAgg { input, .. } => expr_refs(input, out),
        CoreExpr::Subquery { plan, .. } => op_refs(&plan.op, out),
        CoreExpr::Exists(q) => op_refs(&q.op, out),
        CoreExpr::TupleCtor(pairs) => pairs
            .iter()
            .all(|(n, v)| expr_refs(n, out) && expr_refs(v, out)),
        CoreExpr::ArrayCtor(items) | CoreExpr::BagCtor(items) => {
            items.iter().all(|i| expr_refs(i, out))
        }
        CoreExpr::Cast { expr, .. } => expr_refs(expr, out),
    }
}

fn op_refs(op: &CoreOp, out: &mut HashSet<String>) -> bool {
    match op {
        CoreOp::Single => true,
        CoreOp::From { item } => from_refs(item, out),
        CoreOp::Filter { input, pred } => op_refs(input, out) && expr_refs(pred, out),
        CoreOp::Group { input, keys, .. } => {
            op_refs(input, out) && keys.iter().all(|(_, e)| expr_refs(e, out))
        }
        CoreOp::Append { inputs } => inputs.iter().all(|i| op_refs(i, out)),
        CoreOp::Sort { input, keys } | CoreOp::SortValues { input, keys } => {
            op_refs(input, out) && keys.iter().all(|k| expr_refs(&k.expr, out))
        }
        CoreOp::LimitOffset {
            input,
            limit,
            offset,
        } => {
            op_refs(input, out)
                && limit.as_ref().is_none_or(|e| expr_refs(e, out))
                && offset.as_ref().is_none_or(|e| expr_refs(e, out))
        }
        CoreOp::TopK {
            input,
            keys,
            limit,
            offset,
            ..
        } => {
            op_refs(input, out)
                && keys.iter().all(|k| expr_refs(&k.expr, out))
                && expr_refs(limit, out)
                && offset.as_ref().is_none_or(|e| expr_refs(e, out))
        }
        CoreOp::Project { input, expr, .. } => op_refs(input, out) && expr_refs(expr, out),
        CoreOp::Pivot { input, value, name } => {
            op_refs(input, out) && expr_refs(value, out) && expr_refs(name, out)
        }
        CoreOp::SetOp { left, right, .. } => op_refs(left, out) && op_refs(right, out),
        CoreOp::Window { input, defs } => {
            op_refs(input, out)
                && defs.iter().all(|d| {
                    d.args.iter().all(|a| expr_refs(a, out))
                        && d.partition.iter().all(|p| expr_refs(p, out))
                        && d.order.iter().all(|k| expr_refs(&k.expr, out))
                })
        }
        CoreOp::With { bindings, body } => {
            bindings.iter().all(|(_, q)| op_refs(&q.op, out)) && op_refs(body, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_query, PlanConfig};
    use sqlpp_syntax::parse_query;

    fn opt(src: &str) -> String {
        let q = parse_query(src).unwrap();
        optimize(lower_query(&q, &PlanConfig::default()).unwrap()).explain()
    }

    #[test]
    fn constant_arithmetic_folds() {
        let text = opt("SELECT VALUE x FROM t AS x WHERE x.a = 1 + 2 * 3");
        assert!(text.contains("(x.a = 7)"), "{text}");
    }

    #[test]
    fn where_true_is_dropped() {
        let text = opt("SELECT VALUE x FROM t AS x WHERE 1 = 1");
        assert!(!text.contains("filter"), "{text}");
    }

    #[test]
    fn stacked_filters_merge() {
        // HAVING after WHERE on a grouped query keeps separate stages, but
        // a WHERE TRUE AND x collapses.
        let text = opt("SELECT VALUE x FROM t AS x WHERE TRUE AND x.a > 0");
        assert!(text.contains("filter (x.a > 0)"), "{text}");
    }

    #[test]
    fn false_and_null_folds_to_false() {
        // Sound even though the other side is NULL: FALSE dominates.
        let text = opt("SELECT VALUE x FROM t AS x WHERE FALSE AND NULL");
        assert!(text.contains("filter false"), "{text}");
    }

    #[test]
    fn overflow_is_not_folded() {
        let text = opt(&format!(
            "SELECT VALUE x FROM t AS x WHERE x.a = {} + {}",
            i64::MAX,
            i64::MAX
        ));
        assert!(text.contains("+"), "{text}");
    }

    #[test]
    fn explicit_equi_join_becomes_hash_join() {
        let text = opt("SELECT VALUE [x.a, y.b] FROM l AS x JOIN r AS y ON x.k = y.k");
        assert!(text.contains("inner hash join on x.k = y.k"), "{text}");
        assert!(!text.contains("nested-loop"), "{text}");
    }

    #[test]
    fn comma_join_with_where_becomes_hash_join() {
        let text = opt("SELECT VALUE [x.a, y.b] FROM l AS x, r AS y \
             WHERE x.k = y.k AND x.a > 0 AND y.b > 1");
        assert!(text.contains("inner hash join on x.k = y.k"), "{text}");
        // Side-local conjuncts are pushed to their sides...
        assert!(text.contains("probe-filter (x.a > 0)"), "{text}");
        assert!(text.contains("build-filter (y.b > 1)"), "{text}");
        // ...and the filter operator disappears entirely.
        assert!(no_filter_op(&text), "{text}");
    }

    fn no_filter_op(text: &str) -> bool {
        !text.lines().any(|l| l.trim_start().starts_with("filter "))
    }

    #[test]
    fn non_equi_conjunct_becomes_residual() {
        let text = opt("SELECT VALUE x FROM l AS x JOIN r AS y ON x.k = y.k AND x.a < y.b");
        assert!(text.contains("hash join on x.k = y.k"), "{text}");
        assert!(text.contains("residual (x.a < y.b)"), "{text}");
    }

    #[test]
    fn left_join_keeps_its_kind() {
        let text = opt("SELECT VALUE [x, y] FROM l AS x LEFT JOIN r AS y ON x.k = y.k");
        assert!(text.contains("left hash join on x.k = y.k"), "{text}");
    }

    #[test]
    fn correlated_right_side_is_not_hashed() {
        // The right source references the left variable: a hash build in
        // the outer environment would be wrong.
        let text = opt("SELECT VALUE y FROM l AS x JOIN x.items AS y ON x.k = y.k");
        assert!(!text.contains("hash join"), "{text}");
        assert!(text.contains("nested-loop join"), "{text}");
    }

    #[test]
    fn unnest_where_stays_correlated() {
        let text = opt("SELECT VALUE y FROM l AS x, x.items AS y WHERE x.k = y.k");
        assert!(!text.contains("hash join"), "{text}");
        assert!(text.contains("correlate"), "{text}");
        assert!(text.contains("filter"), "{text}");
    }

    #[test]
    fn no_equi_key_keeps_nested_loop() {
        let text = opt("SELECT VALUE x FROM l AS x JOIN r AS y ON x.k < y.k");
        assert!(!text.contains("hash join"), "{text}");
        assert!(text.contains("nested-loop join on (x.k < y.k)"), "{text}");
    }

    #[test]
    fn three_way_chain_builds_two_hash_joins() {
        let text = opt("SELECT VALUE [a, b, c] FROM ta AS a, tb AS b, tc AS c \
             WHERE a.k = b.k AND b.j = c.j");
        assert!(text.contains("hash join on b.j = c.j"), "{text}");
        assert!(text.contains("hash join on a.k = b.k"), "{text}");
        assert!(no_filter_op(&text), "{text}");
    }

    #[test]
    fn unresolved_name_conjuncts_stay_in_the_filter() {
        // `kk` does not resolve to any FROM variable: its runtime
        // resolution (dynamic disambiguation) may consult the whole
        // environment, so the conjunct must not move.
        let text = opt("SELECT VALUE [x, y] FROM l AS x, r AS y WHERE kk = y.k");
        assert!(!text.contains("hash join"), "{text}");
        assert!(text.contains("filter"), "{text}");
    }

    #[test]
    fn order_by_limit_fuses_to_topk_under_the_projection() {
        let text = opt("SELECT VALUE x FROM t AS x ORDER BY x.a LIMIT 5");
        assert!(text.contains("top-k x.a limit 5"), "{text}");
        assert!(
            !text.contains("\nsort") && !text.contains(" sort "),
            "{text}"
        );
        // The outer LIMIT survives so projection semantics are unchanged.
        assert!(text.contains("limit/offset limit 5"), "{text}");
    }

    #[test]
    fn offset_widens_the_heap_bound_but_stays_outside() {
        let text = opt("SELECT VALUE x FROM t AS x ORDER BY x.a DESC LIMIT 5 OFFSET 3");
        assert!(text.contains("top-k x.a desc limit 8"), "{text}");
        assert!(text.contains("limit 5 offset 3"), "{text}");
    }

    #[test]
    fn set_op_order_by_limit_fuses_to_value_topk() {
        let text = opt(
            "(SELECT VALUE x.a FROM t AS x) UNION ALL (SELECT VALUE y.a FROM u AS y) \
             ORDER BY 1 LIMIT 3",
        );
        assert!(text.contains("top-k-values"), "{text}");
        assert!(text.contains("limit 3"), "{text}");
        assert!(!text.contains("sort-values"), "{text}");
    }

    #[test]
    fn order_by_without_limit_keeps_the_full_sort() {
        let text = opt("SELECT VALUE x FROM t AS x ORDER BY x.a");
        assert!(text.contains("sort x.a"), "{text}");
        assert!(!text.contains("top-k"), "{text}");
    }

    #[test]
    fn limit_without_order_by_is_not_fused() {
        let text = opt("SELECT VALUE x FROM t AS x LIMIT 5");
        assert!(!text.contains("top-k"), "{text}");
        assert!(text.contains("limit/offset limit 5"), "{text}");
    }

    #[test]
    fn distinct_between_sort_and_limit_blocks_fusion() {
        // DISTINCT dedups the sorted stream before the limit applies:
        // a bounded heap under it would return the wrong rows.
        let text = opt("SELECT DISTINCT x.a FROM t AS x ORDER BY x.a LIMIT 5");
        assert!(!text.contains("top-k"), "{text}");
        assert!(text.contains("sort"), "{text}");
    }

    #[test]
    fn parameter_limit_over_projection_is_not_fused() {
        // The heap bound must be a literal when the projection sits in
        // between; a parameter LIMIT keeps the full sort.
        let text = opt("SELECT x.a FROM t AS x ORDER BY x.a LIMIT ?");
        assert!(!text.contains("top-k"), "{text}");
        assert!(text.contains("sort"), "{text}");
    }

    #[test]
    fn outer_scope_equality_does_not_correlate_the_hash_join() {
        // The subquery's join is between its own two tables; o is outer.
        let text = opt("SELECT VALUE (SELECT VALUE [x, y] FROM l AS x, r AS y \
             WHERE x.k = y.k AND x.o = o.k) FROM t AS o");
        assert!(text.contains("hash join on x.k = y.k"), "{text}");
        assert!(text.contains("(x.o = o.k)"), "{text}");
    }

    #[test]
    fn swapped_key_sides_normalize() {
        let text = opt("SELECT VALUE x FROM l AS x JOIN r AS y ON y.k = x.k");
        assert!(text.contains("hash join on x.k = y.k"), "{text}");
    }
}
