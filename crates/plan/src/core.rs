//! SQL++ **Core**: the fully composable algebra the paper defines SQL on
//! top of (§I: "we define a SQL++ Core, consisting of fully composable
//! operators. Then SQL itself is defined as 'syntactic sugar' rewritings
//! over the SQL++ Core").
//!
//! A [`CoreQuery`] is a pipeline of clause-operators over *binding
//! streams* — "it is best to think of a SQL++ query as being a pipeline of
//! clauses […] Each clause is a function that inputs data and outputs
//! data" (§V-B). Projection is always `SELECT VALUE` here; SQL's SELECT
//! list, its aggregate functions, and its subquery coercions exist only as
//! lowering rewrites in [`crate::lower`].

use std::fmt;

use sqlpp_value::Value;

/// A complete Core query.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreQuery {
    /// Root operator producing the query result value stream.
    pub op: CoreOp,
}

/// Clause-operators over binding streams.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreOp {
    /// Produces exactly one empty binding (a FROM-less query block).
    Single,
    /// The FROM clause: a function from the environment to a stream of
    /// binding tuples (§III).
    From {
        /// The (tree of) FROM items.
        item: CoreFrom,
    },
    /// WHERE / HAVING.
    Filter {
        /// Upstream operator.
        input: Box<CoreOp>,
        /// Predicate; bindings pass only when it evaluates to TRUE
        /// (NULL/MISSING/non-boolean do not pass).
        pred: CoreExpr,
    },
    /// GROUP BY … GROUP AS (§V-B): partitions the binding stream by key
    /// values and emits one binding per group with the key aliases plus
    /// `group_var` holding the bag of captured binding-tuples.
    Group {
        /// Upstream operator.
        input: Box<CoreOp>,
        /// `(alias, key expression)` pairs.
        keys: Vec<(String, CoreExpr)>,
        /// The GROUP AS variable (synthesized when the query didn't name
        /// one but aggregates need it).
        group_var: String,
        /// Which in-scope variables are captured into each group element
        /// tuple (Listing 14's `{e: …, p: …}` shape).
        captured: Vec<String>,
        /// Emit one group even over empty input — SQL's behavior for
        /// ungrouped aggregation and for the grand-total grouping set.
        emit_empty_group: bool,
    },
    /// Concatenates binding streams — the plumbing under ROLLUP/CUBE/
    /// GROUPING SETS, which lower to one Group per grouping set.
    Append {
        /// The streams, in order.
        inputs: Vec<CoreOp>,
    },
    /// ORDER BY over bindings (pre-projection sort keys).
    Sort {
        /// Upstream operator.
        input: Box<CoreOp>,
        /// Sort keys, major first.
        keys: Vec<CoreSortKey>,
    },
    /// ORDER BY over output *values* (used above set operations, where the
    /// only scope is the output element itself).
    SortValues {
        /// Upstream operator (value stream).
        input: Box<CoreOp>,
        /// Sort keys; expressions see the element as `$out` and, when the
        /// element is a tuple, its attributes as variables.
        keys: Vec<CoreSortKey>,
    },
    /// LIMIT/OFFSET over any stream.
    LimitOffset {
        /// Upstream operator.
        input: Box<CoreOp>,
        /// Maximum rows (evaluated once; non-negative integer).
        limit: Option<CoreExpr>,
        /// Rows to skip.
        offset: Option<CoreExpr>,
    },
    /// ORDER BY + LIMIT fused into a bounded-heap top-k (optimizer-
    /// produced — lowering never emits it). Yields the first `limit` rows
    /// of the stable sort order after skipping `offset`, while holding at
    /// most `limit + offset` rows at once — so it never needs to spill.
    TopK {
        /// Upstream operator.
        input: Box<CoreOp>,
        /// Sort keys, major first (same scoping as the `Sort`/`SortValues`
        /// this node was rewritten from — see `on_values`).
        keys: Vec<CoreSortKey>,
        /// Maximum rows (evaluated once; non-negative integer).
        limit: CoreExpr,
        /// Rows of the sorted prefix to skip.
        offset: Option<CoreExpr>,
        /// Sorts output *values* (rewritten from `SortValues`, keys see
        /// `$out`) rather than bindings (rewritten from `Sort`).
        on_values: bool,
    },
    /// `SELECT [DISTINCT] VALUE expr` — Core's only projection (§V-A).
    Project {
        /// Upstream operator (binding stream).
        input: Box<CoreOp>,
        /// The constructor expression.
        expr: CoreExpr,
        /// DISTINCT (structural-equality dedup, first occurrence wins).
        distinct: bool,
    },
    /// `PIVOT value AT name` — folds the binding stream into ONE tuple
    /// (§VI-B).
    Pivot {
        /// Upstream operator (binding stream).
        input: Box<CoreOp>,
        /// Attribute value per binding.
        value: CoreExpr,
        /// Attribute name per binding (non-string names are skipped in
        /// permissive mode).
        name: CoreExpr,
    },
    /// UNION/INTERSECT/EXCEPT over value streams.
    SetOp {
        /// Which set operation.
        op: CoreSetOp,
        /// Bag semantics (`ALL`) vs set semantics.
        all: bool,
        /// Left input.
        left: Box<CoreOp>,
        /// Right input.
        right: Box<CoreOp>,
    },
    /// SQL window functions (§V-B: "wholly compatible with SQL++"):
    /// extends each binding with one variable per window definition,
    /// computed over the partitioned (and optionally ordered) binding
    /// stream.
    Window {
        /// Upstream operator (binding stream).
        input: Box<CoreOp>,
        /// The window computations, each bound to a fresh variable.
        defs: Vec<WindowDef>,
    },
    /// WITH: evaluates each binding once, then runs `body` with them in
    /// scope.
    With {
        /// `(name, definition)` pairs, in order (later CTEs see earlier).
        bindings: Vec<(String, CoreQuery)>,
        /// The main query.
        body: Box<CoreOp>,
    },
}

/// Set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CoreSetOp {
    Union,
    Intersect,
    Except,
}

/// One sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSortKey {
    /// Key expression.
    pub expr: CoreExpr,
    /// Descending?
    pub desc: bool,
    /// Absent values (MISSING/NULL) first? Defaults follow the total
    /// order: smallest first ascending, last descending.
    pub nulls_first: bool,
}

/// FROM-item tree. Comma lists lower to left-nested [`CoreFrom::Correlate`]
/// (left-correlation, §III); explicit joins keep their kind.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreFrom {
    /// Iterate a collection expression, binding each element to `as_var`
    /// (and, for arrays, its position to `at_var`). The expression may
    /// reference variables bound by FROM items to its left.
    Scan {
        /// Source expression.
        expr: CoreExpr,
        /// Element variable.
        as_var: String,
        /// Optional position variable.
        at_var: Option<String>,
    },
    /// Iterate a tuple's attribute/value pairs (§VI-A).
    Unpivot {
        /// Tuple-valued expression.
        expr: CoreExpr,
        /// Bound to each attribute value.
        value_var: String,
        /// Bound to each attribute name.
        name_var: String,
    },
    /// `LET`-style single binding: evaluates `expr` once per input binding.
    Let {
        /// Defining expression.
        expr: CoreExpr,
        /// Variable introduced.
        var: String,
    },
    /// Left-correlated product: for each left binding, evaluate the right
    /// item in the extended environment.
    Correlate {
        /// Left input.
        left: Box<CoreFrom>,
        /// Right input (may reference left's variables).
        right: Box<CoreFrom>,
    },
    /// Explicit join with an ON condition, executed as a nested loop: the
    /// right side is re-evaluated (and the ON probed) once per left row.
    Join {
        /// INNER or LEFT (RIGHT/FULL are normalized during lowering).
        kind: CoreJoinKind,
        /// Left input.
        left: Box<CoreFrom>,
        /// Right input.
        right: Box<CoreFrom>,
        /// Join condition (TRUE for CROSS).
        on: CoreExpr,
        /// Variables introduced by the right side — needed to bind NULLs
        /// for unmatched left rows in LEFT joins.
        right_vars: Vec<String>,
    },
    /// Equi-join annotated by the optimizer (never produced by lowering):
    /// the right side is uncorrelated, so it is materialized exactly once
    /// into a hash table keyed on `keys`, and each left row probes it.
    ///
    /// The original join condition is exactly
    /// `left_pred AND right_pred AND (k_l = k_r for each key) AND residual`
    /// — the split is semantics-preserving because a row passes an AND
    /// chain iff every conjunct evaluates to TRUE, and NULL/MISSING keys
    /// never compare equal (3VL), matching a hash table that simply never
    /// stores or probes absent keys.
    HashJoin {
        /// INNER or LEFT.
        kind: CoreJoinKind,
        /// Left input.
        left: Box<CoreFrom>,
        /// Right input (uncorrelated: references none of left's variables).
        right: Box<CoreFrom>,
        /// `(left key, right key)` pairs: conjuncts of the form
        /// `l.x = r.y` where each side references only that side's vars.
        keys: Vec<(CoreExpr, CoreExpr)>,
        /// Conjuncts referencing only left-side (or outer) variables,
        /// checked per left row before probing.
        left_pred: Option<CoreExpr>,
        /// Conjuncts referencing only right-side variables, checked once
        /// per right row at build time.
        right_pred: Option<CoreExpr>,
        /// Conjuncts referencing both sides that are not equi-keys,
        /// re-checked on each hash match.
        residual: Option<CoreExpr>,
        /// Variables introduced by the right side, in binding order —
        /// used to combine matched envs and to NULL-pad LEFT joins.
        right_vars: Vec<String>,
    },
}

/// Join kinds surviving normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CoreJoinKind {
    Inner,
    Left,
}

/// One window computation: `var := func(args) OVER (PARTITION BY
/// partition ORDER BY order)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDef {
    /// The synthetic variable receiving the computed value.
    pub var: String,
    /// Which window function.
    pub func: WindowFunc,
    /// Argument expressions (evaluated per row).
    pub args: Vec<CoreExpr>,
    /// Partition key expressions.
    pub partition: Vec<CoreExpr>,
    /// In-partition ordering.
    pub order: Vec<CoreSortKey>,
}

/// Window functions. Aggregates use the SQL default frame: the whole
/// partition without ORDER BY; RANGE UNBOUNDED PRECEDING .. CURRENT ROW
/// (peers included) with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowFunc {
    /// `ROW_NUMBER()` — 1-based position in the ordered partition.
    RowNumber,
    /// `RANK()` — 1-based with gaps.
    Rank,
    /// `DENSE_RANK()` — 1-based without gaps.
    DenseRank,
    /// `LAG(expr [, offset [, default]])`.
    Lag,
    /// `LEAD(expr [, offset [, default]])`.
    Lead,
    /// A running/partition aggregate (`SUM(x) OVER (…)` etc.).
    Agg(AggFunc),
}

impl WindowFunc {
    /// Parses a window function name (upper-case).
    pub fn parse(name: &str) -> Option<WindowFunc> {
        Some(match name {
            "ROW_NUMBER" => WindowFunc::RowNumber,
            "RANK" => WindowFunc::Rank,
            "DENSE_RANK" => WindowFunc::DenseRank,
            "LAG" => WindowFunc::Lag,
            "LEAD" => WindowFunc::Lead,
            other => WindowFunc::Agg(
                AggFunc::parse(other)
                    .filter(|(_, coll)| !coll)
                    .map(|(f, _)| f)?,
            ),
        })
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            WindowFunc::RowNumber => "ROW_NUMBER",
            WindowFunc::Rank => "RANK",
            WindowFunc::DenseRank => "DENSE_RANK",
            WindowFunc::Lag => "LAG",
            WindowFunc::Lead => "LEAD",
            WindowFunc::Agg(f) => match f {
                AggFunc::Count => "COUNT",
                AggFunc::Sum => "SUM",
                AggFunc::Avg => "AVG",
                AggFunc::Min => "MIN",
                AggFunc::Max => "MAX",
                AggFunc::Every => "EVERY",
                AggFunc::Some => "SOME",
            },
        }
    }
}

/// Composable aggregate functions (§V-C): ordinary functions from a
/// collection to a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COLL_COUNT` — counts non-absent elements; `COUNT(*)` lowers to a
    /// count over the group variable itself.
    Count,
    /// `COLL_SUM`.
    Sum,
    /// `COLL_AVG`.
    Avg,
    /// `COLL_MIN`.
    Min,
    /// `COLL_MAX`.
    Max,
    /// `COLL_EVERY` — true when every element is true.
    Every,
    /// `COLL_SOME`/`COLL_ANY`.
    Some,
}

impl AggFunc {
    /// The composable (COLL_) spelling.
    pub fn coll_name(self) -> &'static str {
        match self {
            AggFunc::Count => "COLL_COUNT",
            AggFunc::Sum => "COLL_SUM",
            AggFunc::Avg => "COLL_AVG",
            AggFunc::Min => "COLL_MIN",
            AggFunc::Max => "COLL_MAX",
            AggFunc::Every => "COLL_EVERY",
            AggFunc::Some => "COLL_SOME",
        }
    }

    /// Parses either the SQL name (`AVG`) or the composable name
    /// (`COLL_AVG`); the bool is true for the composable form.
    pub fn parse(name: &str) -> Option<(AggFunc, bool)> {
        let (base, coll) = match name.strip_prefix("COLL_") {
            Some(rest) => (rest, true),
            None => (name, false),
        };
        let f = match base {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "EVERY" => AggFunc::Every,
            "SOME" | "ANY" => AggFunc::Some,
            _ => return None,
        };
        Some((f, coll))
    }
}

/// How a subquery's bag result is adapted to its context — only ever
/// non-`Bag` for SQL (sugar) subqueries in SQL-compatibility mode: "the
/// context of the subquery designates whether the subquery's result should
/// be coerced into a scalar value […] None of this implicit 'magic'
/// applies to SELECT VALUE" (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coercion {
    /// No coercion: the result is the bag itself.
    Bag,
    /// SQL scalar-subquery coercion: 0 rows → NULL, 1 single-attribute row
    /// → that value, otherwise a type error signal.
    Scalar,
    /// SQL IN-subquery coercion: each single-attribute row → its value.
    Collection,
}

/// Core expressions. Variables are explicit (§III: "the explicit denotation
/// of variables is essential to SQL++ Core").
#[derive(Debug, Clone, PartialEq)]
pub enum CoreExpr {
    /// A literal value.
    Const(Value),
    /// A resolved in-scope variable.
    Var(String),
    /// A positional parameter.
    Param(usize),
    /// A catalog reference: segments resolved against the catalog by
    /// longest bound prefix; unconsumed segments navigate into the value.
    Global(Vec<String>),
    /// An identifier the planner could not resolve statically: tried at
    /// runtime as (1) environment variable, (2) catalog name, (3) unique
    /// attribute of exactly one in-scope tuple binding — the dynamic
    /// counterpart of the paper's schema-based disambiguation.
    Dynamic(String),
    /// `base.attr`.
    Path(Box<CoreExpr>, String),
    /// `base[index]`.
    Index(Box<CoreExpr>, Box<CoreExpr>),
    /// Binary operator (re-using the surface enum; semantics live in
    /// sqlpp-eval).
    Bin(sqlpp_syntax::ast::BinOp, Box<CoreExpr>, Box<CoreExpr>),
    /// Unary operator.
    Un(sqlpp_syntax::ast::UnOp, Box<CoreExpr>),
    /// LIKE.
    Like {
        /// Matched expression.
        expr: Box<CoreExpr>,
        /// Pattern.
        pattern: Box<CoreExpr>,
        /// Escape character.
        escape: Option<Box<CoreExpr>>,
        /// NOT LIKE?
        negated: bool,
    },
    /// BETWEEN.
    Between {
        /// Tested expression.
        expr: Box<CoreExpr>,
        /// Lower bound.
        low: Box<CoreExpr>,
        /// Upper bound.
        high: Box<CoreExpr>,
        /// NOT BETWEEN?
        negated: bool,
    },
    /// IN over an evaluated collection (lists lower to `ArrayCtor`).
    In {
        /// Tested expression.
        expr: Box<CoreExpr>,
        /// Collection-valued right-hand side.
        collection: Box<CoreExpr>,
        /// NOT IN?
        negated: bool,
    },
    /// IS tests.
    Is {
        /// Tested expression.
        expr: Box<CoreExpr>,
        /// NULL / MISSING / type name.
        test: sqlpp_syntax::ast::IsTest,
        /// IS NOT?
        negated: bool,
    },
    /// CASE (simple CASE is lowered to searched CASE during lowering).
    Case {
        /// `(condition, result)` arms.
        arms: Vec<(CoreExpr, CoreExpr)>,
        /// ELSE (defaults to NULL per SQL when absent).
        else_expr: Box<CoreExpr>,
    },
    /// Scalar/function call by (upper-case) name.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<CoreExpr>,
    },
    /// A composable aggregate over a collection expression (§V-C).
    CollAgg {
        /// Which aggregate.
        func: AggFunc,
        /// Deduplicate elements first (`COUNT(DISTINCT x)`).
        distinct: bool,
        /// The collection input.
        input: Box<CoreExpr>,
    },
    /// A nested query with its context-determined coercion.
    Subquery {
        /// The nested plan.
        plan: Box<CoreQuery>,
        /// Adaptation to context (§V-A).
        coercion: Coercion,
    },
    /// EXISTS.
    Exists(Box<CoreQuery>),
    /// Tuple constructor; MISSING attribute values are dropped at runtime.
    TupleCtor(Vec<(CoreExpr, CoreExpr)>),
    /// Array constructor; MISSING elements are dropped at runtime.
    ArrayCtor(Vec<CoreExpr>),
    /// Bag constructor; MISSING elements are dropped at runtime.
    BagCtor(Vec<CoreExpr>),
    /// CAST.
    Cast {
        /// Source.
        expr: Box<CoreExpr>,
        /// Target type name (normalized upper-case scalar names).
        ty: String,
    },
}

impl CoreExpr {
    /// Boolean literal shorthand.
    pub fn bool(v: bool) -> CoreExpr {
        CoreExpr::Const(Value::Bool(v))
    }
}

// ---------------------------------------------------------------------
// Plan walking
// ---------------------------------------------------------------------

impl CoreQuery {
    /// Every operator in this plan, in pre-order — the node itself, then
    /// nested subquery plans inside its expressions, then its operator
    /// children. The position of a node in this sequence is its stable
    /// *plan index*: execution statistics are keyed by it (it survives
    /// plan clones and optimizer rewrites, unlike node addresses).
    pub fn preorder_ops(&self) -> Vec<&CoreOp> {
        let mut out = Vec::new();
        collect_ops(&self.op, &mut out);
        out
    }
}

impl CoreOp {
    /// How the streaming executor runs this operator: `"streaming"` when
    /// rows flow through one at a time, `"materializing"` when it buffers
    /// rows (a pipeline breaker — ORDER BY, GROUP BY, window, DISTINCT,
    /// non-`UNION ALL` set operations, and FROM trees containing a
    /// hash-join build side).
    pub fn pipeline_class(&self) -> &'static str {
        let materializes = match self {
            CoreOp::Sort { .. }
            | CoreOp::SortValues { .. }
            | CoreOp::TopK { .. }
            | CoreOp::Group { .. }
            | CoreOp::Window { .. } => true,
            CoreOp::Project { distinct, .. } => *distinct,
            CoreOp::SetOp { op, all, .. } => !(matches!(op, CoreSetOp::Union) && *all),
            CoreOp::From { item } => from_materializes(item),
            _ => false,
        };
        if materializes {
            "materializing"
        } else {
            "streaming"
        }
    }
}

fn from_materializes(item: &CoreFrom) -> bool {
    match item {
        CoreFrom::HashJoin { .. } => true,
        CoreFrom::Correlate { left, right } | CoreFrom::Join { left, right, .. } => {
            from_materializes(left) || from_materializes(right)
        }
        CoreFrom::Scan { .. } | CoreFrom::Unpivot { .. } | CoreFrom::Let { .. } => false,
    }
}

fn collect_ops<'p>(op: &'p CoreOp, out: &mut Vec<&'p CoreOp>) {
    out.push(op);
    match op {
        CoreOp::Single => {}
        CoreOp::From { item } => collect_from_plans(item, out),
        CoreOp::Filter { input, pred } => {
            collect_expr_plans(pred, out);
            collect_ops(input, out);
        }
        CoreOp::Group { input, keys, .. } => {
            for (_, k) in keys {
                collect_expr_plans(k, out);
            }
            collect_ops(input, out);
        }
        CoreOp::Append { inputs } => {
            for i in inputs {
                collect_ops(i, out);
            }
        }
        CoreOp::Sort { input, keys } | CoreOp::SortValues { input, keys } => {
            for k in keys {
                collect_expr_plans(&k.expr, out);
            }
            collect_ops(input, out);
        }
        CoreOp::LimitOffset {
            input,
            limit,
            offset,
        } => {
            for e in [limit, offset].into_iter().flatten() {
                collect_expr_plans(e, out);
            }
            collect_ops(input, out);
        }
        CoreOp::TopK {
            input,
            keys,
            limit,
            offset,
            ..
        } => {
            for k in keys {
                collect_expr_plans(&k.expr, out);
            }
            collect_expr_plans(limit, out);
            if let Some(e) = offset {
                collect_expr_plans(e, out);
            }
            collect_ops(input, out);
        }
        CoreOp::Project { input, expr, .. } => {
            collect_expr_plans(expr, out);
            collect_ops(input, out);
        }
        CoreOp::Pivot { input, value, name } => {
            collect_expr_plans(value, out);
            collect_expr_plans(name, out);
            collect_ops(input, out);
        }
        CoreOp::SetOp { left, right, .. } => {
            collect_ops(left, out);
            collect_ops(right, out);
        }
        CoreOp::Window { input, defs } => {
            for d in defs {
                for e in d.args.iter().chain(d.partition.iter()) {
                    collect_expr_plans(e, out);
                }
                for k in &d.order {
                    collect_expr_plans(&k.expr, out);
                }
            }
            collect_ops(input, out);
        }
        CoreOp::With { bindings, body } => {
            for (_, q) in bindings {
                collect_ops(&q.op, out);
            }
            collect_ops(body, out);
        }
    }
}

fn collect_from_plans<'p>(item: &'p CoreFrom, out: &mut Vec<&'p CoreOp>) {
    match item {
        CoreFrom::Scan { expr, .. }
        | CoreFrom::Unpivot { expr, .. }
        | CoreFrom::Let { expr, .. } => collect_expr_plans(expr, out),
        CoreFrom::Correlate { left, right } => {
            collect_from_plans(left, out);
            collect_from_plans(right, out);
        }
        CoreFrom::Join {
            left, right, on, ..
        } => {
            collect_from_plans(left, out);
            collect_from_plans(right, out);
            collect_expr_plans(on, out);
        }
        CoreFrom::HashJoin {
            left,
            right,
            keys,
            left_pred,
            right_pred,
            residual,
            ..
        } => {
            collect_from_plans(left, out);
            collect_from_plans(right, out);
            for (l, r) in keys {
                collect_expr_plans(l, out);
                collect_expr_plans(r, out);
            }
            for e in [left_pred, right_pred, residual].into_iter().flatten() {
                collect_expr_plans(e, out);
            }
        }
    }
}

fn collect_expr_plans<'p>(e: &'p CoreExpr, out: &mut Vec<&'p CoreOp>) {
    match e {
        CoreExpr::Const(_)
        | CoreExpr::Var(_)
        | CoreExpr::Param(_)
        | CoreExpr::Global(_)
        | CoreExpr::Dynamic(_) => {}
        CoreExpr::Path(base, _) | CoreExpr::Un(_, base) => collect_expr_plans(base, out),
        CoreExpr::Index(base, idx) => {
            collect_expr_plans(base, out);
            collect_expr_plans(idx, out);
        }
        CoreExpr::Bin(_, l, r) => {
            collect_expr_plans(l, out);
            collect_expr_plans(r, out);
        }
        CoreExpr::Like {
            expr,
            pattern,
            escape,
            ..
        } => {
            collect_expr_plans(expr, out);
            collect_expr_plans(pattern, out);
            if let Some(esc) = escape {
                collect_expr_plans(esc, out);
            }
        }
        CoreExpr::Between {
            expr, low, high, ..
        } => {
            collect_expr_plans(expr, out);
            collect_expr_plans(low, out);
            collect_expr_plans(high, out);
        }
        CoreExpr::In {
            expr, collection, ..
        } => {
            collect_expr_plans(expr, out);
            collect_expr_plans(collection, out);
        }
        CoreExpr::Is { expr, .. } | CoreExpr::Cast { expr, .. } => collect_expr_plans(expr, out),
        CoreExpr::Case { arms, else_expr } => {
            for (w, t) in arms {
                collect_expr_plans(w, out);
                collect_expr_plans(t, out);
            }
            collect_expr_plans(else_expr, out);
        }
        CoreExpr::Call { args, .. } => {
            for a in args {
                collect_expr_plans(a, out);
            }
        }
        CoreExpr::CollAgg { input, .. } => collect_expr_plans(input, out),
        CoreExpr::Subquery { plan, .. } => collect_ops(&plan.op, out),
        CoreExpr::Exists(q) => collect_ops(&q.op, out),
        CoreExpr::TupleCtor(pairs) => {
            for (n, v) in pairs {
                collect_expr_plans(n, out);
                collect_expr_plans(v, out);
            }
        }
        CoreExpr::ArrayCtor(items) | CoreExpr::BagCtor(items) => {
            for v in items {
                collect_expr_plans(v, out);
            }
        }
    }
}

impl CoreQuery {
    /// Visits every expression the executor will evaluate, paired with the
    /// operator that owns it, recursing into nested subquery plans — the
    /// hook the evaluator's bytecode precompiler walks so plan expressions
    /// are compiled once per run instead of per row.
    pub fn for_each_expr<'p>(&'p self, f: &mut dyn FnMut(&'p CoreOp, &'p CoreExpr)) {
        visit_op_exprs(&self.op, f);
    }
}

fn visit_op_exprs<'p>(op: &'p CoreOp, f: &mut dyn FnMut(&'p CoreOp, &'p CoreExpr)) {
    let here = |e: &'p CoreExpr, f: &mut dyn FnMut(&'p CoreOp, &'p CoreExpr)| {
        f(op, e);
        visit_expr_subplans(e, f);
    };
    match op {
        CoreOp::Single => {}
        CoreOp::From { item } => visit_from_exprs(item, op, f),
        CoreOp::Filter { input, pred } => {
            here(pred, f);
            visit_op_exprs(input, f);
        }
        CoreOp::Group { input, keys, .. } => {
            for (_, k) in keys {
                here(k, f);
            }
            visit_op_exprs(input, f);
        }
        CoreOp::Append { inputs } => {
            for i in inputs {
                visit_op_exprs(i, f);
            }
        }
        CoreOp::Sort { input, keys } | CoreOp::SortValues { input, keys } => {
            for k in keys {
                here(&k.expr, f);
            }
            visit_op_exprs(input, f);
        }
        CoreOp::LimitOffset {
            input,
            limit,
            offset,
        } => {
            for e in [limit, offset].into_iter().flatten() {
                here(e, f);
            }
            visit_op_exprs(input, f);
        }
        CoreOp::TopK {
            input,
            keys,
            limit,
            offset,
            ..
        } => {
            for k in keys {
                here(&k.expr, f);
            }
            here(limit, f);
            if let Some(e) = offset {
                here(e, f);
            }
            visit_op_exprs(input, f);
        }
        CoreOp::Project { input, expr, .. } => {
            here(expr, f);
            visit_op_exprs(input, f);
        }
        CoreOp::Pivot { input, value, name } => {
            here(value, f);
            here(name, f);
            visit_op_exprs(input, f);
        }
        CoreOp::SetOp { left, right, .. } => {
            visit_op_exprs(left, f);
            visit_op_exprs(right, f);
        }
        CoreOp::Window { input, defs } => {
            for d in defs {
                for e in d.args.iter().chain(d.partition.iter()) {
                    here(e, f);
                }
                for k in &d.order {
                    here(&k.expr, f);
                }
            }
            visit_op_exprs(input, f);
        }
        CoreOp::With { bindings, body } => {
            for (_, q) in bindings {
                visit_op_exprs(&q.op, f);
            }
            visit_op_exprs(body, f);
        }
    }
}

fn visit_from_exprs<'p>(
    item: &'p CoreFrom,
    owner: &'p CoreOp,
    f: &mut dyn FnMut(&'p CoreOp, &'p CoreExpr),
) {
    let here = |e: &'p CoreExpr, f: &mut dyn FnMut(&'p CoreOp, &'p CoreExpr)| {
        f(owner, e);
        visit_expr_subplans(e, f);
    };
    match item {
        CoreFrom::Scan { expr, .. }
        | CoreFrom::Unpivot { expr, .. }
        | CoreFrom::Let { expr, .. } => here(expr, f),
        CoreFrom::Correlate { left, right } => {
            visit_from_exprs(left, owner, f);
            visit_from_exprs(right, owner, f);
        }
        CoreFrom::Join {
            left, right, on, ..
        } => {
            visit_from_exprs(left, owner, f);
            visit_from_exprs(right, owner, f);
            here(on, f);
        }
        CoreFrom::HashJoin {
            left,
            right,
            keys,
            left_pred,
            right_pred,
            residual,
            ..
        } => {
            visit_from_exprs(left, owner, f);
            visit_from_exprs(right, owner, f);
            for (l, r) in keys {
                here(l, f);
                here(r, f);
            }
            for e in [left_pred, right_pred, residual].into_iter().flatten() {
                here(e, f);
            }
        }
    }
}

/// Recurses into the subquery plans nested inside `e` (without visiting
/// `e`'s own scalar subexpressions — those are part of whatever program
/// compiles `e` itself).
fn visit_expr_subplans<'p>(e: &'p CoreExpr, f: &mut dyn FnMut(&'p CoreOp, &'p CoreExpr)) {
    match e {
        CoreExpr::Const(_)
        | CoreExpr::Var(_)
        | CoreExpr::Param(_)
        | CoreExpr::Global(_)
        | CoreExpr::Dynamic(_) => {}
        CoreExpr::Path(base, _) | CoreExpr::Un(_, base) => visit_expr_subplans(base, f),
        CoreExpr::Index(base, idx) => {
            visit_expr_subplans(base, f);
            visit_expr_subplans(idx, f);
        }
        CoreExpr::Bin(_, l, r) => {
            visit_expr_subplans(l, f);
            visit_expr_subplans(r, f);
        }
        CoreExpr::Like {
            expr,
            pattern,
            escape,
            ..
        } => {
            visit_expr_subplans(expr, f);
            visit_expr_subplans(pattern, f);
            if let Some(esc) = escape {
                visit_expr_subplans(esc, f);
            }
        }
        CoreExpr::Between {
            expr, low, high, ..
        } => {
            visit_expr_subplans(expr, f);
            visit_expr_subplans(low, f);
            visit_expr_subplans(high, f);
        }
        CoreExpr::In {
            expr, collection, ..
        } => {
            visit_expr_subplans(expr, f);
            visit_expr_subplans(collection, f);
        }
        CoreExpr::Is { expr, .. } | CoreExpr::Cast { expr, .. } => visit_expr_subplans(expr, f),
        CoreExpr::Case { arms, else_expr } => {
            for (w, t) in arms {
                visit_expr_subplans(w, f);
                visit_expr_subplans(t, f);
            }
            visit_expr_subplans(else_expr, f);
        }
        CoreExpr::Call { args, .. } => {
            for a in args {
                visit_expr_subplans(a, f);
            }
        }
        CoreExpr::CollAgg { input, .. } => visit_expr_subplans(input, f),
        CoreExpr::Subquery { plan, .. } => visit_op_exprs(&plan.op, f),
        CoreExpr::Exists(q) => visit_op_exprs(&q.op, f),
        CoreExpr::TupleCtor(pairs) => {
            for (n, v) in pairs {
                visit_expr_subplans(n, f);
                visit_expr_subplans(v, f);
            }
        }
        CoreExpr::ArrayCtor(items) | CoreExpr::BagCtor(items) => {
            for v in items {
                visit_expr_subplans(v, f);
            }
        }
    }
}

// ---------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------

impl CoreQuery {
    /// Renders the operator tree for `EXPLAIN`.
    pub fn explain(&self) -> String {
        self.explain_with(&mut |_| None)
    }

    /// Renders the operator tree with a per-operator annotation appended
    /// to each operator's line (`EXPLAIN ANALYZE`). The callback receives
    /// each node of *this* tree; the engine matches nodes to their
    /// [`CoreQuery::preorder_ops`] index, which is why annotation is a
    /// callback rather than a plan-side map — `sqlpp-plan` knows nothing
    /// about execution statistics.
    pub fn explain_with(&self, annotate: &mut dyn FnMut(&CoreOp) -> Option<String>) -> String {
        let mut out = String::new();
        explain_op(&self.op, 0, &mut out, annotate);
        out
    }
}

fn pad(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn explain_op(
    op: &CoreOp,
    indent: usize,
    out: &mut String,
    annotate: &mut dyn FnMut(&CoreOp) -> Option<String>,
) {
    let start = out.len();
    pad(indent, out);
    match op {
        CoreOp::Single => out.push_str("single\n"),
        CoreOp::From { item } => {
            out.push_str("from\n");
            explain_from(item, indent + 1, out);
        }
        CoreOp::Filter { input, pred } => {
            out.push_str(&format!("filter {pred}\n"));
            explain_op(input, indent + 1, out, annotate);
        }
        CoreOp::Append { inputs } => {
            out.push_str("append\n");
            for i in inputs {
                explain_op(i, indent + 1, out, annotate);
            }
        }
        CoreOp::Group {
            input,
            keys,
            group_var,
            captured,
            ..
        } => {
            out.push_str("group by ");
            for (i, (alias, expr)) in keys.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{expr} AS {alias}"));
            }
            if keys.is_empty() {
                out.push_str("<all>");
            }
            out.push_str(&format!(
                " group as {group_var} capturing [{}]\n",
                captured.join(", ")
            ));
            explain_op(input, indent + 1, out, annotate);
        }
        CoreOp::Sort { input, keys } | CoreOp::SortValues { input, keys } => {
            out.push_str(if matches!(op, CoreOp::Sort { .. }) {
                "sort"
            } else {
                "sort-values"
            });
            for k in keys {
                out.push_str(&format!(" {}{}", k.expr, if k.desc { " desc" } else { "" }));
            }
            out.push('\n');
            explain_op(input, indent + 1, out, annotate);
        }
        CoreOp::LimitOffset {
            input,
            limit,
            offset,
        } => {
            out.push_str("limit/offset");
            if let Some(l) = limit {
                out.push_str(&format!(" limit {l}"));
            }
            if let Some(o) = offset {
                out.push_str(&format!(" offset {o}"));
            }
            out.push('\n');
            explain_op(input, indent + 1, out, annotate);
        }
        CoreOp::TopK {
            input,
            keys,
            limit,
            offset,
            on_values,
        } => {
            out.push_str(if *on_values { "top-k-values" } else { "top-k" });
            for k in keys {
                out.push_str(&format!(" {}{}", k.expr, if k.desc { " desc" } else { "" }));
            }
            out.push_str(&format!(" limit {limit}"));
            if let Some(o) = offset {
                out.push_str(&format!(" offset {o}"));
            }
            out.push('\n');
            explain_op(input, indent + 1, out, annotate);
        }
        CoreOp::Project {
            input,
            expr,
            distinct,
        } => {
            out.push_str(&format!(
                "select {}value {expr}\n",
                if *distinct { "distinct " } else { "" }
            ));
            explain_op(input, indent + 1, out, annotate);
        }
        CoreOp::Pivot { input, value, name } => {
            out.push_str(&format!("pivot {value} at {name}\n"));
            explain_op(input, indent + 1, out, annotate);
        }
        CoreOp::SetOp {
            op: so,
            all,
            left,
            right,
        } => {
            out.push_str(&format!(
                "{}{}\n",
                match so {
                    CoreSetOp::Union => "union",
                    CoreSetOp::Intersect => "intersect",
                    CoreSetOp::Except => "except",
                },
                if *all { " all" } else { "" }
            ));
            explain_op(left, indent + 1, out, annotate);
            explain_op(right, indent + 1, out, annotate);
        }
        CoreOp::Window { input, defs } => {
            out.push_str("window");
            for d in defs {
                out.push_str(&format!(" {} := {}(", d.var, d.func.name()));
                for (i, a) in d.args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{a}"));
                }
                out.push_str(") over(");
                for (i, p) in d.partition.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{p}"));
                }
                if !d.order.is_empty() {
                    out.push_str(" order");
                    for k in &d.order {
                        out.push_str(&format!(" {}{}", k.expr, if k.desc { " desc" } else { "" }));
                    }
                }
                out.push(')');
            }
            out.push('\n');
            explain_op(input, indent + 1, out, annotate);
        }
        CoreOp::With { bindings, body } => {
            out.push_str("with\n");
            for (name, q) in bindings {
                pad(indent + 1, out);
                out.push_str(&format!("{name} :=\n"));
                explain_op(&q.op, indent + 2, out, annotate);
            }
            explain_op(body, indent + 1, out, annotate);
        }
    }
    // Splice the annotation onto this operator's own line — the first
    // newline written since `start`; children render after it.
    if let Some(ann) = annotate(op) {
        if let Some(nl) = out[start..].find('\n') {
            out.insert_str(start + nl, &ann);
        }
    }
}

fn explain_from(item: &CoreFrom, indent: usize, out: &mut String) {
    pad(indent, out);
    match item {
        CoreFrom::Scan {
            expr,
            as_var,
            at_var,
        } => {
            out.push_str(&format!("scan {expr} as {as_var}"));
            if let Some(at) = at_var {
                out.push_str(&format!(" at {at}"));
            }
            out.push('\n');
        }
        CoreFrom::Unpivot {
            expr,
            value_var,
            name_var,
        } => {
            out.push_str(&format!("unpivot {expr} as {value_var} at {name_var}\n"));
        }
        CoreFrom::Let { expr, var } => {
            out.push_str(&format!("let {var} = {expr}\n"));
        }
        CoreFrom::Correlate { left, right } => {
            out.push_str("correlate\n");
            explain_from(left, indent + 1, out);
            explain_from(right, indent + 1, out);
        }
        CoreFrom::Join {
            kind,
            left,
            right,
            on,
            ..
        } => {
            out.push_str(&format!(
                "{} nested-loop join on {on}\n",
                match kind {
                    CoreJoinKind::Inner => "inner",
                    CoreJoinKind::Left => "left",
                }
            ));
            explain_from(left, indent + 1, out);
            explain_from(right, indent + 1, out);
        }
        CoreFrom::HashJoin {
            kind,
            left,
            right,
            keys,
            left_pred,
            right_pred,
            residual,
            ..
        } => {
            out.push_str(&format!(
                "{} hash join on ",
                match kind {
                    CoreJoinKind::Inner => "inner",
                    CoreJoinKind::Left => "left",
                }
            ));
            for (i, (l, r)) in keys.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{l} = {r}"));
            }
            if let Some(p) = left_pred {
                out.push_str(&format!(" probe-filter {p}"));
            }
            if let Some(p) = right_pred {
                out.push_str(&format!(" build-filter {p}"));
            }
            if let Some(p) = residual {
                out.push_str(&format!(" residual {p}"));
            }
            out.push('\n');
            explain_from(left, indent + 1, out);
            explain_from(right, indent + 1, out);
        }
    }
}

impl fmt::Display for CoreExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreExpr::Const(v) => write!(f, "{v}"),
            CoreExpr::Var(v) => write!(f, "{v}"),
            CoreExpr::Param(i) => write!(f, "${i}"),
            CoreExpr::Global(segs) => write!(f, "@{}", segs.join(".")),
            CoreExpr::Dynamic(name) => write!(f, "?{name}"),
            CoreExpr::Path(base, attr) => write!(f, "{base}.{attr}"),
            CoreExpr::Index(base, idx) => write!(f, "{base}[{idx}]"),
            CoreExpr::Bin(op, l, r) => write!(f, "({l} {} {r})", op.as_str()),
            CoreExpr::Un(op, e) => match op {
                sqlpp_syntax::ast::UnOp::Not => write!(f, "(NOT {e})"),
                sqlpp_syntax::ast::UnOp::Neg => write!(f, "(-{e})"),
                sqlpp_syntax::ast::UnOp::Pos => write!(f, "(+{e})"),
            },
            CoreExpr::Like {
                expr,
                pattern,
                negated,
                ..
            } => {
                write!(
                    f,
                    "({expr} {}LIKE {pattern})",
                    if *negated { "NOT " } else { "" }
                )
            }
            CoreExpr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            CoreExpr::In {
                expr,
                collection,
                negated,
            } => write!(
                f,
                "({expr} {}IN {collection})",
                if *negated { "NOT " } else { "" }
            ),
            CoreExpr::Is {
                expr,
                test,
                negated,
            } => {
                let what = match test {
                    sqlpp_syntax::ast::IsTest::Null => "NULL".to_string(),
                    sqlpp_syntax::ast::IsTest::Missing => "MISSING".to_string(),
                    sqlpp_syntax::ast::IsTest::Type(t) => t.clone(),
                };
                write!(
                    f,
                    "({expr} IS {}{what})",
                    if *negated { "NOT " } else { "" }
                )
            }
            CoreExpr::Case { arms, else_expr } => {
                write!(f, "CASE")?;
                for (w, t) in arms {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                write!(f, " ELSE {else_expr} END")
            }
            CoreExpr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            CoreExpr::CollAgg {
                func,
                distinct,
                input,
            } => write!(
                f,
                "{}({}{input})",
                func.coll_name(),
                if *distinct { "DISTINCT " } else { "" }
            ),
            CoreExpr::Subquery { plan, coercion } => {
                let tag = match coercion {
                    Coercion::Bag => "",
                    Coercion::Scalar => "scalar:",
                    Coercion::Collection => "coll:",
                };
                write!(
                    f,
                    "({tag}subquery {})",
                    plan.explain().trim().replace('\n', " | ")
                )
            }
            CoreExpr::Exists(q) => {
                write!(f, "EXISTS({})", q.explain().trim().replace('\n', " | "))
            }
            CoreExpr::TupleCtor(pairs) => {
                write!(f, "{{")?;
                for (i, (n, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, "}}")
            }
            CoreExpr::ArrayCtor(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            CoreExpr::BagCtor(items) => {
                write!(f, "<<")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">>")
            }
            CoreExpr::Cast { expr, ty } => write!(f, "CAST({expr} AS {ty})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_func_parsing() {
        assert_eq!(AggFunc::parse("AVG"), Some((AggFunc::Avg, false)));
        assert_eq!(AggFunc::parse("COLL_AVG"), Some((AggFunc::Avg, true)));
        assert_eq!(AggFunc::parse("COLL_COUNT"), Some((AggFunc::Count, true)));
        assert_eq!(AggFunc::parse("ANY"), Some((AggFunc::Some, false)));
        assert_eq!(AggFunc::parse("LOWER"), None);
        assert_eq!(AggFunc::parse("COLL_NOPE"), None);
    }

    #[test]
    fn explain_renders_a_tree() {
        let q = CoreQuery {
            op: CoreOp::Project {
                input: Box::new(CoreOp::Filter {
                    input: Box::new(CoreOp::From {
                        item: CoreFrom::Scan {
                            expr: CoreExpr::Global(vec!["t".into()]),
                            as_var: "x".into(),
                            at_var: None,
                        },
                    }),
                    pred: CoreExpr::Bin(
                        sqlpp_syntax::ast::BinOp::Gt,
                        Box::new(CoreExpr::Path(
                            Box::new(CoreExpr::Var("x".into())),
                            "a".into(),
                        )),
                        Box::new(CoreExpr::Const(Value::Int(1))),
                    ),
                }),
                expr: CoreExpr::Var("x".into()),
                distinct: false,
            },
        };
        let text = q.explain();
        assert!(text.contains("select value x"));
        assert!(text.contains("filter (x.a > 1)"));
        assert!(text.contains("scan @t as x"));
    }

    #[test]
    fn preorder_walk_is_stable_and_reaches_nested_plans() {
        let scan = |name: &str, var: &str| CoreOp::From {
            item: CoreFrom::Scan {
                expr: CoreExpr::Global(vec![name.into()]),
                as_var: var.into(),
                at_var: None,
            },
        };
        // SELECT VALUE x FROM t AS x WHERE EXISTS (FROM u AS y SELECT VALUE y)
        let exists_plan = CoreQuery {
            op: CoreOp::Project {
                input: Box::new(scan("u", "y")),
                expr: CoreExpr::Var("y".into()),
                distinct: false,
            },
        };
        let q = CoreQuery {
            op: CoreOp::Project {
                input: Box::new(CoreOp::Filter {
                    input: Box::new(scan("t", "x")),
                    pred: CoreExpr::Exists(Box::new(exists_plan)),
                }),
                expr: CoreExpr::Var("x".into()),
                distinct: false,
            },
        };
        let ops = q.preorder_ops();
        // Root project, filter, the EXISTS subplan's project + from
        // (expressions before operator children), then the outer from.
        assert_eq!(ops.len(), 5);
        assert!(matches!(ops[0], CoreOp::Project { .. }));
        assert!(matches!(ops[1], CoreOp::Filter { .. }));
        assert!(matches!(ops[2], CoreOp::Project { .. }));
        assert!(matches!(ops[3], CoreOp::From { .. }));
        assert!(matches!(ops[4], CoreOp::From { .. }));
        // Indices are positional, so a clone enumerates identically.
        let cloned = q.clone();
        for (a, b) in ops.iter().zip(cloned.preorder_ops()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn pipeline_class_tags_breakers_as_materializing() {
        let base = CoreOp::Single;
        assert_eq!(base.pipeline_class(), "streaming");
        let sort = CoreOp::Sort {
            input: Box::new(CoreOp::Single),
            keys: vec![],
        };
        assert_eq!(sort.pipeline_class(), "materializing");
        let distinct = CoreOp::Project {
            input: Box::new(CoreOp::Single),
            expr: CoreExpr::bool(true),
            distinct: true,
        };
        assert_eq!(distinct.pipeline_class(), "materializing");
        let union_all = CoreOp::SetOp {
            op: CoreSetOp::Union,
            all: true,
            left: Box::new(CoreOp::Single),
            right: Box::new(CoreOp::Single),
        };
        assert_eq!(union_all.pipeline_class(), "streaming");
        let except_all = CoreOp::SetOp {
            op: CoreSetOp::Except,
            all: true,
            left: Box::new(CoreOp::Single),
            right: Box::new(CoreOp::Single),
        };
        assert_eq!(except_all.pipeline_class(), "materializing");
    }
}
