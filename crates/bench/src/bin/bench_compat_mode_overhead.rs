//! Single-suite wrapper; see `sqlpp_bench::suites::compat_mode_overhead`.

fn main() {
    sqlpp_bench::suites::run_one("compat_mode_overhead");
}
