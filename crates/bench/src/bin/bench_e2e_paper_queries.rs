//! Single-suite wrapper; see `sqlpp_bench::suites::e2e_paper_queries`.

fn main() {
    sqlpp_bench::suites::run_one("e2e_paper_queries");
}
