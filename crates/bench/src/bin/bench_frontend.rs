//! Single-suite wrapper; see `sqlpp_bench::suites::frontend`.

fn main() {
    sqlpp_bench::suites::run_one("frontend");
}
