fn main() {
    sqlpp_bench::suites::run_one("out_of_core");
}
