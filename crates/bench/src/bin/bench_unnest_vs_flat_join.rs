//! Single-suite wrapper; see `sqlpp_bench::suites::unnest_vs_flat_join`.

fn main() {
    sqlpp_bench::suites::run_one("unnest_vs_flat_join");
}
