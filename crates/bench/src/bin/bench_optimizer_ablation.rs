//! Single-suite wrapper; see `sqlpp_bench::suites::optimizer_ablation`.

fn main() {
    sqlpp_bench::suites::run_one("optimizer_ablation");
}
