//! Regenerates every listing of the paper from the engine: the data (as
//! loaded), the query, the mechanically produced result in the paper's
//! notation, and — for the §V-C rewriting listings — the EXPLAIN output
//! showing the SQL→Core rewrite the paper prints by hand.
//!
//! ```text
//! cargo run -p sqlpp-bench --bin listing_gallery            # all listings
//! cargo run -p sqlpp-bench --bin listing_gallery -- L12 L17 # a selection
//! ```

use sqlpp::{CompatMode, TypingMode};
use sqlpp_compat_kit::{corpus, fixture_engine, Check, ModeSpec};
use sqlpp_value::to_pretty;

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let compat_engine = fixture_engine(CompatMode::SqlCompat, TypingMode::Permissive);
    let composable_engine = fixture_engine(CompatMode::Composable, TypingMode::Permissive);

    let mut shown = 0;
    for case in corpus() {
        if !filter.is_empty() && !filter.iter().any(|f| f == case.id) {
            continue;
        }
        let (engine, mode_label) = match case.modes {
            ModeSpec::ComposableOnly => (&composable_engine, "composability mode"),
            _ => (&compat_engine, "SQL-compat mode"),
        };
        for (name, text) in case.setup {
            engine.load_pnotation(name, text).expect("fixture parses");
        }
        println!("==================================================================");
        println!(
            "{} — §{} — {} [{}]",
            case.id, case.section, case.title, mode_label
        );
        println!("------------------------------------------------------------------");
        println!(
            "query:\n  {}\n",
            case.query.split_whitespace().collect::<Vec<_>>().join(" ")
        );
        if case.check == Check::Errors {
            match engine.run_str(case.query) {
                Err(e) => println!("result: rejected as expected\n  {e}\n"),
                Ok(v) => println!("result: UNEXPECTED SUCCESS\n{}\n", to_pretty(&v)),
            }
        } else {
            match engine.run_str(case.query) {
                Ok(v) => println!("result:\n{}\n", to_pretty(&v)),
                Err(e) => println!("ERROR: {e}\n"),
            }
        }
        // The aggregation listings exist to illustrate the §V-C rewriting:
        // show the machine's version of it.
        if matches!(case.id, "L15" | "L17" | "L22" | "K-count-star") {
            if let Ok(plan) = engine.explain(case.query) {
                println!("lowered SQL++ Core plan (EXPLAIN):\n{}", indent(&plan));
            }
        }
        if let Some(note) = case.note {
            println!("note: {note}\n");
        }
        shown += 1;
    }
    if shown == 0 {
        eprintln!("no listing matched the filter {filter:?}");
        std::process::exit(1);
    }
    println!("==================================================================");
    println!("{shown} listings regenerated.");
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}
