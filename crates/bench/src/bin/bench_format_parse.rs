//! Single-suite wrapper; see `sqlpp_bench::suites::format_parse`.

fn main() {
    sqlpp_bench::suites::run_one("format_parse");
}
