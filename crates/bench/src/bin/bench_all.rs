//! Runs every benchmark suite into one report (`BENCH_<name>.json`).
//!
//! ```text
//! cargo run --release -p sqlpp-bench --bin bench_all             # full sweep
//! cargo run --release -p sqlpp-bench --bin bench_all -- --quick  # CI smoke
//! ```

use sqlpp_testkit::bench::{BenchConfig, Harness};

fn main() {
    let (cfg, name) = BenchConfig::from_args();
    let mut h = Harness::new(name, cfg);
    for (suite, run) in sqlpp_bench::suites::all() {
        eprintln!("== {suite} ==");
        run(&mut h);
    }
    let path = h.finish().expect("failed to write bench report");
    eprintln!("wrote {}", path.display());
}
