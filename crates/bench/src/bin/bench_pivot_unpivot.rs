//! Single-suite wrapper; see `sqlpp_bench::suites::pivot_unpivot`.

fn main() {
    sqlpp_bench::suites::run_one("pivot_unpivot");
}
