//! Single-suite wrapper; see `sqlpp_bench::suites::group_as_vs_subquery`.

fn main() {
    sqlpp_bench::suites::run_one("group_as_vs_subquery");
}
