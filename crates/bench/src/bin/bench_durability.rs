fn main() {
    sqlpp_bench::suites::run_one("durability");
}
