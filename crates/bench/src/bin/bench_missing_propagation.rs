//! Single-suite wrapper; see `sqlpp_bench::suites::missing_propagation`.

fn main() {
    sqlpp_bench::suites::run_one("missing_propagation");
}
