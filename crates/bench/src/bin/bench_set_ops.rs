//! Single-suite wrapper; see `sqlpp_bench::suites::set_ops`.

fn main() {
    sqlpp_bench::suites::run_one("set_ops");
}
