//! Single-suite wrapper; see `sqlpp_bench::suites::agg_pipeline`.

fn main() {
    sqlpp_bench::suites::run_one("agg_pipeline");
}
