//! **B14** — front-end resilience overhead: error recovery must be free
//! on the happy path.
//!
//! The recovering parser takes the byte-identical code path as the
//! strict one until the first error fires, so parsing valid queries with
//! recovery enabled should cost the same as strict parsing. Measured:
//! (a) strict vs recovering parse over every compatibility-corpus query,
//! and (b) recovering parse over the same corpus with each query's last
//! token chopped off — the diagnose-and-resynchronize path itself.

use sqlpp_syntax::{lex, parse_statement, parse_statement_recovering, token::Tok};
use sqlpp_testkit::bench::Harness;

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let queries: Vec<String> = sqlpp_compat_kit::corpus()
        .iter()
        .map(|c| c.query.to_string())
        .collect();
    // Corrupted variants: delete the final token of each query.
    let corrupted: Vec<String> = queries
        .iter()
        .filter_map(|q| {
            let tokens = lex(q).ok()?;
            let last = tokens.iter().rev().find(|t| t.tok != Tok::Eof)?;
            let truncated = q[..last.span.start].trim_end().to_string();
            (!truncated.is_empty()).then_some(truncated)
        })
        .collect();

    h.bench("frontend/parse_strict/corpus", || {
        queries.iter().map(|q| parse_statement(q).is_ok()).count()
    });
    h.bench("frontend/parse_recovering/corpus", || {
        queries
            .iter()
            .map(|q| parse_statement_recovering(q).is_clean())
            .count()
    });
    h.bench("frontend/parse_recovering/corrupted", || {
        corrupted
            .iter()
            .map(|q| parse_statement_recovering(q).diags.len())
            .sum::<usize>()
    });
}
