//! **B11** — regression guard for hash equi-joins: the evaluator used to
//! run every `JOIN ... ON` as a nested loop, re-evaluating the right side
//! and the ON predicate per left row (O(|L|·|R|) probes). The optimizer
//! now extracts equality keys from the ON conjunction and the evaluator
//! materializes an uncorrelated right side exactly once into a hash
//! table, so probe counts — and wall time — scale linearly in |L| + |R|.
//!
//! Four workloads per size:
//!
//! * `equi_hash` — an uncorrelated 1:1 equi-join through the hash path.
//!   The suite *asserts* the plan renders `hash join`, that
//!   `join_probes ≤ |L| + |R|`, and that `right_rescans == 0`; any of
//!   those failing means the quadratic path is back.
//! * `equi_nested_loop` — the same query with the optimizer off, for the
//!   wall-clock comparison (benched at the smaller size; single-shot
//!   timed at the larger size, attached as `nested_loop_ns`/`hash_ns`).
//! * `correlated_fallback` — the right side references the left variable,
//!   so hashing is impossible; asserts the plan *keeps* the nested loop.
//! * `left_unmatched` — LEFT JOIN where half the left rows miss; NULL
//!   padding must survive the hash path.

use std::time::Instant;

use sqlpp::{Engine, SessionConfig};
use sqlpp_testkit::bench::Harness;
use sqlpp_value::{Tuple, Value};

use super::scaled;

const EQUI: &str = "SELECT VALUE [x.v, y.v] FROM s.l AS x JOIN s.r AS y ON x.k = y.k";
const CORRELATED: &str = "SELECT VALUE [x.k, y] FROM s.l AS x JOIN x.ns AS y ON x.v = y";
const LEFT_UNMATCHED: &str =
    "SELECT VALUE [x.k, y.v] FROM s.l AS x LEFT JOIN s.half AS y ON x.k = y.k";

/// `n` tuples `{k: i, v: 7i, ns: [7i, -1]}` — keys are unique, so the
/// equi-join is 1:1 and the correlated unnest matches exactly once.
fn key_rows(n: usize) -> Value {
    let rows = (0..n as i64)
        .map(|i| {
            let mut t = Tuple::with_capacity(3);
            t.insert("k", Value::Int(i));
            t.insert("v", Value::Int(7 * i));
            t.insert("ns", Value::Array(vec![Value::Int(7 * i), Value::Int(-1)]));
            Value::Tuple(t)
        })
        .collect();
    Value::Bag(rows)
}

/// Two size-`n` tables with identical key sets, plus a half-size table
/// so LEFT JOIN leaves `n - n/2` left rows unmatched.
fn join_engine(n: usize) -> Engine {
    let engine = Engine::new();
    engine.register("s.l", key_rows(n));
    engine.register("s.r", key_rows(n));
    engine.register("s.half", key_rows(n / 2));
    engine
}

/// Pulls one named counter out of an instrumented run.
fn counter(stats: &sqlpp::ExecStats, name: &str) -> u64 {
    stats
        .counters()
        .iter()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let sizes: &[usize] = &[1_000, 10_000];
    for (idx, &full) in sizes.iter().enumerate() {
        let n = scaled(h, full).max(50);
        let engine = join_engine(n);
        let raw = engine.with_config(SessionConfig {
            optimize: false,
            ..SessionConfig::default()
        });

        // Plan-shape gates: the equi-join must hash, and with the
        // optimizer off it must not.
        let plan_text = engine.explain(EQUI).unwrap();
        assert!(
            plan_text.contains("hash join"),
            "uncorrelated equi-join no longer plans a hash join:\n{plan_text}"
        );
        let raw_text = raw.explain(EQUI).unwrap();
        assert!(
            !raw_text.contains("hash join"),
            "optimize:false engine unexpectedly hashes:\n{raw_text}"
        );

        // Semantic gate: both strategies agree (keys are unique, so the
        // 1:1 join returns one row per left row, in either plan).
        let hashed = engine.query(EQUI).unwrap();
        assert_eq!(hashed.len(), n, "equi-join cardinality wrong at n={n}");
        assert_eq!(
            hashed.canonical(),
            raw.query(EQUI).unwrap().canonical(),
            "hash join disagrees with nested loop at n={n}"
        );

        let plan = engine.prepare(EQUI).unwrap();
        h.bench(format!("join_scale/equi_hash/{n}x{n}"), || {
            plan.execute(&engine).unwrap()
        });

        // One instrumented run: linear probe work, right side built once.
        let run = engine.query_with_stats(EQUI).unwrap();
        let stats = run.stats().expect("stats collection was on");
        let probes = counter(stats, "join_probes");
        let build_rows = counter(stats, "join_build_rows");
        let rescans = counter(stats, "right_rescans");
        assert!(
            probes <= (2 * n) as u64,
            "join probes regressed to super-linear at n={n}: {probes} > {}",
            2 * n
        );
        assert_eq!(rescans, 0, "hash join rescanned its right side at n={n}");
        assert_eq!(build_rows, n as u64, "build side row count wrong at n={n}");
        let mut counters = vec![
            ("join_probes".to_string(), probes),
            ("join_build_rows".to_string(), build_rows),
            ("right_rescans".to_string(), rescans),
        ];

        if idx == 0 {
            // Small size: the nested loop is cheap enough to sample
            // properly, giving the report a real baseline distribution.
            let raw_plan = raw.prepare(EQUI).unwrap();
            h.attach_counters(counters);
            h.bench(format!("join_scale/equi_nested_loop/{n}x{n}"), || {
                raw_plan.execute(&raw).unwrap()
            });
            let nl_run = raw.query_with_stats(EQUI).unwrap();
            let nl = nl_run.stats().expect("stats collection was on");
            h.attach_counters([
                ("join_probes".to_string(), counter(nl, "join_probes")),
                ("right_rescans".to_string(), counter(nl, "right_rescans")),
            ]);
        } else {
            // Large size: a full sampling run of the O(n²) loop would
            // dominate the whole sweep, so time one execution of each
            // strategy and attach the pair for the speedup ratio.
            let raw_plan = raw.prepare(EQUI).unwrap();
            let t = Instant::now();
            let _ = raw_plan.execute(&raw).unwrap();
            let nl_ns = t.elapsed().as_nanos() as u64;
            let t = Instant::now();
            let _ = plan.execute(&engine).unwrap();
            let hash_ns = t.elapsed().as_nanos() as u64;
            counters.push(("nested_loop_ns".to_string(), nl_ns));
            counters.push(("hash_ns".to_string(), hash_ns));
            h.attach_counters(counters);
        }
    }

    // Correlated fallback: the right source depends on the left row, so
    // the optimizer must keep the nested loop (and re-evaluate per row).
    let n = scaled(h, 1_000).max(50);
    let engine = join_engine(n);
    let plan_text = engine.explain(CORRELATED).unwrap();
    assert!(
        !plan_text.contains("hash join"),
        "correlated join was wrongly hashed:\n{plan_text}"
    );
    let correlated = engine.query(CORRELATED).unwrap();
    assert_eq!(correlated.len(), n, "correlated join cardinality wrong");
    let plan = engine.prepare(CORRELATED).unwrap();
    h.bench(format!("join_scale/correlated_fallback/{n}"), || {
        plan.execute(&engine).unwrap()
    });
    let run = engine.query_with_stats(CORRELATED).unwrap();
    let stats = run.stats().expect("stats collection was on");
    assert!(
        counter(stats, "right_rescans") > 0,
        "correlated join should re-evaluate its right side"
    );
    h.attach_counters([
        ("join_probes".to_string(), counter(stats, "join_probes")),
        ("right_rescans".to_string(), counter(stats, "right_rescans")),
    ]);

    // LEFT JOIN with unmatched rows: NULL padding through the hash path.
    let plan_text = engine.explain(LEFT_UNMATCHED).unwrap();
    assert!(
        plan_text.contains("left hash join"),
        "LEFT equi-join no longer plans a hash join:\n{plan_text}"
    );
    let padded = engine.query(LEFT_UNMATCHED).unwrap();
    assert_eq!(padded.len(), n, "LEFT join must keep every left row");
    let raw = engine.with_config(SessionConfig {
        optimize: false,
        ..SessionConfig::default()
    });
    assert_eq!(
        padded.canonical(),
        raw.query(LEFT_UNMATCHED).unwrap().canonical(),
        "hash LEFT join disagrees with nested loop"
    );
    let plan = engine.prepare(LEFT_UNMATCHED).unwrap();
    h.bench(format!("join_scale/left_unmatched/{n}"), || {
        plan.execute(&engine).unwrap()
    });
    let run = engine.query_with_stats(LEFT_UNMATCHED).unwrap();
    let stats = run.stats().expect("stats collection was on");
    h.attach_counters([
        ("join_probes".to_string(), counter(stats, "join_probes")),
        (
            "join_build_rows".to_string(),
            counter(stats, "join_build_rows"),
        ),
        ("right_rescans".to_string(), counter(stats, "right_rescans")),
    ]);
}
