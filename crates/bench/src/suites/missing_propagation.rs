//! **B4** — §IV: permissive typing lets "the processing of 'healthy' data
//! … proceed, while a convenient signal, which most often leads to data
//! exclusion, happens for the data that led to typing errors."
//!
//! Workload: `SELECT VALUE t.x * 2 …` over collections with a growing
//! fraction of wrongly-typed (`string`) values, in permissive mode;
//! a clean-data run is the baseline. Strict mode is measured on clean
//! data only (on dirty data it aborts, which the scaling test asserts).
//!
//! Expected shape: permissive cost is flat in the dirty fraction — the
//! MISSING path is no more expensive than the arithmetic it replaces.

use sqlpp::{Engine, SessionConfig, TypingMode};
use sqlpp_testkit::bench::Harness;

use crate::gen_dirty;
use crate::suites::scaled;

const QUERY: &str = "SELECT VALUE t.x * 2 FROM d.data AS t";

fn engine_with(dirty_permille: u32, n: usize, typing: TypingMode) -> Engine {
    let engine = Engine::new().with_config(SessionConfig {
        typing,
        ..SessionConfig::default()
    });
    engine.register("d.data", gen_dirty(n, dirty_permille, 91));
    engine
}

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let n = scaled(h, 50_000);
    for dirty in [0u32, 50, 200, 500] {
        let engine = engine_with(dirty, n, TypingMode::Permissive);
        let plan = engine.prepare(QUERY).unwrap();
        h.bench(
            format!("missing_propagation/permissive/{}pct", dirty / 10),
            || plan.execute(&engine).unwrap(),
        );
    }
    // Strict mode over clean data: the cost of carrying the mode check.
    let engine = engine_with(0, n, TypingMode::StrictError);
    let plan = engine.prepare(QUERY).unwrap();
    h.bench("missing_propagation/strict/clean", || {
        plan.execute(&engine).unwrap()
    });
}
