//! **B5** — §I: "We include a SQL compatibility flag in SQL++ whose
//! setting can be toggled between prioritizing composability or
//! prioritizing SQL compatibility."
//!
//! Workload: an identical flat SQL-92-style query planned and executed
//! under both flag settings, with planning and execution timed
//! separately.
//!
//! Expected shape: the flag costs (at most) a constant planning-time
//! difference — the compatibility rewritings happen at lowering time, so
//! execution is indistinguishable on queries whose semantics coincide.

use sqlpp::{CompatMode, SessionConfig};
use sqlpp_testkit::bench::Harness;

use crate::configured_engine;
use crate::suites::scaled;

const QUERY: &str = "SELECT e.deptno, COUNT(*) AS n, AVG(e.salary) AS avg_sal \
     FROM hr.emp_base AS e WHERE e.salary > 75000 \
     GROUP BY e.deptno HAVING COUNT(*) > 3 \
     ORDER BY avg_sal DESC LIMIT 10";

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let n = scaled(h, 20_000);
    // One shared dataset; only the session config differs, so the two
    // sides measure exactly the flag.
    let base = configured_engine(n, 0, 57, SessionConfig::default());
    for (label, mode) in [
        ("sql_compat", CompatMode::SqlCompat),
        ("composable", CompatMode::Composable),
    ] {
        let engine = base.with_config(SessionConfig {
            compat: mode,
            ..SessionConfig::default()
        });
        h.bench(format!("compat_mode_overhead/plan/{label}"), || {
            engine.prepare(QUERY).unwrap()
        });
        let plan = engine.prepare(QUERY).unwrap();
        h.bench(format!("compat_mode_overhead/execute/{label}"), || {
            plan.execute(&engine).unwrap()
        });
    }
    // Both modes must agree on this pure-SQL query (backward
    // compatibility tenet).
    let composable = base.with_config(SessionConfig {
        compat: CompatMode::Composable,
        ..SessionConfig::default()
    });
    assert_eq!(
        base.query(QUERY).unwrap().canonical(),
        composable.query(QUERY).unwrap().canonical()
    );
}
