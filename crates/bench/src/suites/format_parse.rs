//! **B7** — §I tenet 5 (format independence): "A query should be written
//! identically across underlying data in any of today's many nested
//! and/or semistructured formats."
//!
//! Workload: the same logical collection serialized in all four formats;
//! measured are (a) decode into the logical model and (b) decode + the
//! *identical* query text. Also reports the encoded sizes once, since the
//! binary format's compactness is part of its reason to exist.

use sqlpp::Engine;
use sqlpp_formats::{CsvFormat, DataFormat, IonLiteFormat, JsonFormat, PNotationFormat};
use sqlpp_testkit::bench::Harness;

use crate::gen_emp_flat;
use crate::suites::scaled;

const QUERY: &str = "SELECT VALUE e.salary FROM data AS e WHERE e.title = 'Engineer'";

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let (emps, _) = gen_emp_flat(scaled(h, 10_000), 0, 13);
    let formats: Vec<Box<dyn DataFormat>> = vec![
        Box::new(JsonFormat),
        Box::new(PNotationFormat),
        Box::new(CsvFormat::default()),
        Box::new(IonLiteFormat),
    ];
    for fmt in &formats {
        let bytes = fmt.write(&emps).expect("encodable");
        eprintln!("format {:>9}: {} bytes", fmt.name(), bytes.len());
        h.bench(format!("format_parse/decode/{}", fmt.name()), || {
            fmt.read(&bytes).unwrap()
        });
        h.bench(
            format!("format_parse/decode_and_query/{}", fmt.name()),
            || {
                let engine = Engine::new();
                engine.register("data", fmt.read(&bytes).unwrap());
                engine.query(QUERY).unwrap()
            },
        );
        // The tenet itself: the identical query text over every format
        // yields the same answer.
        let engine = Engine::new();
        engine.register("data", fmt.read(&bytes).unwrap());
        let result = engine.query(QUERY).unwrap();
        assert_eq!(result.len(), {
            let reference = Engine::new();
            reference.register("data", emps.clone());
            reference.query(QUERY).unwrap().len()
        });
    }
}
