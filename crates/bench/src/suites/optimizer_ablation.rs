//! **B9 (ablation)** — the plan-cleanup passes (constant folding, filter
//! fusion, WHERE TRUE elimination) from `sqlpp-plan::optimize`, measured
//! on vs. off. DESIGN.md calls the optimizer "deliberately conservative";
//! this bench keeps it honest about what the passes actually buy on
//! queries where they apply (generated predicates with foldable
//! arithmetic) and what the pass itself costs at plan time.

use sqlpp::SessionConfig;
use sqlpp_testkit::bench::Harness;

use crate::configured_engine;
use crate::suites::scaled;

/// A query with foldable constants and a stacked (fusable) filter shape —
/// what an ORM or query generator typically emits.
const QUERY: &str = "SELECT VALUE e.id FROM hr.emp_base AS e \
     WHERE TRUE AND e.salary > 25000 + 25000 * 2 AND 1 = 1 AND \
           e.deptno = (2 + 3) * 2";

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let base = configured_engine(scaled(h, 20_000), 0, 3, SessionConfig::default());
    let optimized = base.with_config(SessionConfig::default());
    let raw = base.with_config(SessionConfig {
        optimize: false,
        ..SessionConfig::default()
    });
    assert_eq!(
        optimized.query(QUERY).unwrap().canonical(),
        raw.query(QUERY).unwrap().canonical(),
        "the optimizer must not change results"
    );
    for (label, engine) in [("on", &optimized), ("off", &raw)] {
        h.bench(format!("optimizer_ablation/plan/{label}"), || {
            engine.prepare(QUERY).unwrap()
        });
        let plan = engine.prepare(QUERY).unwrap();
        h.bench(format!("optimizer_ablation/execute/{label}"), || {
            plan.execute(engine).unwrap()
        });
    }
}
