//! **B1** — §V-B: "This pattern [GROUP AS] is more efficient and more
//! intuitive than nested SELECT VALUE queries when the required nesting is
//! not based on the nesting of the input."
//!
//! Workload: invert the employee→project hierarchy (Listing 12's query)
//! two ways —
//!
//! 1. `group_as`: one GROUP BY … GROUP AS pass;
//! 2. `nested_subquery`: a correlated `SELECT VALUE` per distinct project
//!    (quadratic re-scan), the formulation SQL++ lets you avoid.
//!
//! Expected shape: `group_as` wins, super-linearly as `n` grows.

use sqlpp_testkit::bench::Harness;

use crate::engine_with_employees;

const GROUP_AS: &str = "FROM hr.emp_nest AS e, e.projects AS p \
     GROUP BY p.name AS pname GROUP AS g \
     SELECT pname AS project, (FROM g AS v SELECT VALUE v.e.name) AS members";

const NESTED_SUBQUERY: &str = "SELECT DISTINCT VALUE {'project': p.name, 'members': \
       (SELECT VALUE e2.name FROM hr.emp_nest AS e2, e2.projects AS p2 \
        WHERE p2.name = p.name)} \
     FROM hr.emp_nest AS e, e.projects AS p";

/// Runs the suite.
pub fn run(h: &mut Harness) {
    // The correlated baseline is quadratic, so it is measured only at the
    // smaller sizes; group_as continues up.
    let sizes: &[usize] = if h.quick() {
        &[50, 200]
    } else {
        &[50, 100, 200, 400, 1600]
    };
    for &n in sizes {
        let engine = engine_with_employees(n, 6, 11);
        if n <= 200 {
            // Sanity: both formulations agree before we time them.
            let a = engine.query(GROUP_AS).unwrap().canonical();
            let b = engine.query(NESTED_SUBQUERY).unwrap().canonical();
            assert_eq!(a, b, "formulations must agree at n={n}");
        }
        let plan_group = engine.prepare(GROUP_AS).unwrap();
        let plan_sub = engine.prepare(NESTED_SUBQUERY).unwrap();
        h.bench(format!("group_as_vs_subquery/group_as/{n}"), || {
            plan_group.execute(&engine).unwrap()
        });
        if n <= 200 && !(h.quick() && n > 50) {
            h.bench(format!("group_as_vs_subquery/nested_subquery/{n}"), || {
                plan_sub.execute(&engine).unwrap()
            });
        }
    }
}
