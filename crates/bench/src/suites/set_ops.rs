//! **B10** — regression guard for the INTERSECT/EXCEPT rewrite: the
//! evaluator used to linear-scan a `Vec<Option<Value>>` pool per left
//! element (O(|L|·|R|) `deep_eq` probes); it now matches through a
//! hash-bucketed multiset, so probe counts — and wall time — scale
//! linearly in |L| + |R|.
//!
//! Each size benches `INTERSECT ALL` and `EXCEPT ALL` over two integer
//! bags with 50% overlap, then runs the same query once with statistics
//! collection to attach the `setop_probes` counter to the report. The
//! suite *asserts* linearity: probes beyond `2·(|L|+|R|)` mean the
//! quadratic scan is back.

use sqlpp::Engine;
use sqlpp_testkit::bench::Harness;
use sqlpp_value::Value;

use super::scaled;

const INTERSECT_ALL: &str =
    "SELECT VALUE x FROM s.a AS x INTERSECT ALL SELECT VALUE y FROM s.b AS y";
const EXCEPT_ALL: &str = "SELECT VALUE x FROM s.a AS x EXCEPT ALL SELECT VALUE y FROM s.b AS y";

/// Two integer bags of size `n` overlapping on half their elements.
fn engine_with_bags(n: usize) -> Engine {
    let engine = Engine::new();
    let a: Vec<Value> = (0..n as i64).map(Value::Int).collect();
    let b: Vec<Value> = (n as i64 / 2..n as i64 / 2 + n as i64)
        .map(Value::Int)
        .collect();
    engine.register("s.a", Value::Bag(a));
    engine.register("s.b", Value::Bag(b));
    engine
}

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let sizes: &[usize] = if h.quick() {
        &[250, 1000]
    } else {
        &[250, 1000, 4000]
    };
    for &full in sizes {
        let n = scaled(h, full).max(50);
        let engine = engine_with_bags(n);

        // Sanity: 50% overlap means intersect keeps n/2 elements and
        // except drops them.
        let intersect = engine.query(INTERSECT_ALL).unwrap();
        assert_eq!(intersect.len(), n - n / 2, "overlap miscounted at n={n}");
        let except = engine.query(EXCEPT_ALL).unwrap();
        assert_eq!(except.len(), n / 2, "except miscounted at n={n}");

        for (label, query) in [("intersect_all", INTERSECT_ALL), ("except_all", EXCEPT_ALL)] {
            let plan = engine.prepare(query).unwrap();
            h.bench(format!("set_ops/{label}/{n}"), || {
                plan.execute(&engine).unwrap()
            });
            // One instrumented run: report the probe counters and gate on
            // linear scaling (the former implementation probed ~n²/4
            // times here).
            let stats_run = engine.query_with_stats(query).unwrap();
            let stats = stats_run.stats().expect("stats collection was on");
            let probes = stats
                .counters()
                .iter()
                .find(|(k, _)| *k == "setop_probes")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            let linear_bound = 2 * (2 * n as u64);
            assert!(
                probes <= linear_bound,
                "set-op probes regressed to super-linear at n={n}: \
                 {probes} > {linear_bound}"
            );
            h.attach_counters([
                ("setop_probes".to_string(), probes),
                ("rows_scanned".to_string(), stats.rows_scanned),
            ]);
        }
    }
}
