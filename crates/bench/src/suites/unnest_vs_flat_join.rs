//! **B2** — §III: left-correlated unnesting "requires no syntactic
//! extensions to SQL" and plays the role joins play over normalized data.
//!
//! Workload: the same logical result — (employee, project) pairs —
//! computed (1) by unnesting the nested documents and (2) by joining the
//! pre-flattened twin tables on the foreign key.
//!
//! Expected shape: unnesting wins (the nesting *is* the join index: no
//! matching work at all). Since the optimizer learned to hash
//! uncorrelated equi-joins the baseline is linear too, so the gap is a
//! constant factor (build + probe work) rather than a widening one.

use sqlpp_testkit::bench::Harness;

use crate::engine_with_employees;

const UNNEST: &str = "SELECT e.id AS id, p.name AS pname FROM hr.emp_nest AS e, e.projects AS p";
const FLAT_JOIN: &str = "SELECT e.id AS id, a.pname AS pname \
     FROM hr.emp_base AS e JOIN hr.assignments AS a ON a.emp_id = e.id";

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let shapes: &[(usize, usize)] = if h.quick() {
        &[(200, 2), (200, 8)]
    } else {
        &[(200, 2), (200, 8), (1000, 2), (1000, 8)]
    };
    for &(n, fanout) in shapes {
        let engine = engine_with_employees(n, fanout, 23);
        let a = engine.query(UNNEST).unwrap().canonical();
        let b = engine.query(FLAT_JOIN).unwrap().canonical();
        assert_eq!(a, b, "twins must agree at n={n} fanout={fanout}");
        let id = format!("{n}x{fanout}");
        let plan_unnest = engine.prepare(UNNEST).unwrap();
        let plan_join = engine.prepare(FLAT_JOIN).unwrap();
        h.bench(format!("unnest_vs_flat_join/unnest/{id}"), || {
            plan_unnest.execute(&engine).unwrap()
        });
        // The join baseline runs through the hash equi-join path (B11),
        // so it is linear and affordable at every size.
        h.bench(format!("unnest_vs_flat_join/flat_join/{id}"), || {
            plan_join.execute(&engine).unwrap()
        });
    }
}
