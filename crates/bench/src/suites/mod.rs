//! The eighteen benchmark suites, one module per performance claim (see the
//! crate docs for the claim ↔ suite map). Each suite registers its
//! measurements on a shared [`Harness`]; thin `[[bin]]` wrappers run one
//! suite each, and `bench_all` runs every suite into one report.
//!
//! In `--quick` mode (the CI smoke configuration) workloads shrink about
//! an order of magnitude and the slowest baselines are skipped, so the
//! whole sweep finishes in seconds while still executing every code
//! path.

use sqlpp_testkit::bench::Harness;

pub mod agg_pipeline;
pub mod compat_mode_overhead;
pub mod durability;
pub mod e2e_paper_queries;
pub mod format_parse;
pub mod frontend;
pub mod governor;
pub mod group_as_vs_subquery;
pub mod join_scale;
pub mod limit_stream;
pub mod missing_propagation;
pub mod optimizer_ablation;
pub mod out_of_core;
pub mod pivot_unpivot;
pub mod serving;
pub mod set_ops;
pub mod unnest_vs_flat_join;
pub mod vectorized;

/// All suites, in a stable order, as `(name, runner)` pairs.
pub fn all() -> Vec<(&'static str, fn(&mut Harness))> {
    vec![
        (
            "group_as_vs_subquery",
            group_as_vs_subquery::run as fn(&mut Harness),
        ),
        ("unnest_vs_flat_join", unnest_vs_flat_join::run),
        ("agg_pipeline", agg_pipeline::run),
        ("missing_propagation", missing_propagation::run),
        ("compat_mode_overhead", compat_mode_overhead::run),
        ("pivot_unpivot", pivot_unpivot::run),
        ("format_parse", format_parse::run),
        ("e2e_paper_queries", e2e_paper_queries::run),
        ("optimizer_ablation", optimizer_ablation::run),
        ("set_ops", set_ops::run),
        ("join_scale", join_scale::run),
        ("limit_stream", limit_stream::run),
        ("governor", governor::run),
        ("frontend", frontend::run),
        ("serving", serving::run),
        ("vectorized", vectorized::run),
        // Disk-heavy (spill files, page-cache churn): keep it after the
        // CPU-bound speedup gates so its I/O footprint can't skew them.
        ("out_of_core", out_of_core::run),
        // fsync-heavy: last of all, for the same reason.
        ("durability", durability::run),
    ]
}

/// Entry point shared by the single-suite `[[bin]]` wrappers: parses the
/// common CLI flags (`--quick`, `--name <report>`), runs one suite, and
/// writes its `BENCH_<report>.json`.
pub fn run_one(suite: &str) {
    let (cfg, name) = sqlpp_testkit::bench::BenchConfig::from_args();
    let runner = all()
        .into_iter()
        .find(|(n, _)| *n == suite)
        .unwrap_or_else(|| panic!("unknown bench suite {suite:?}"))
        .1;
    let mut h = Harness::new(name, cfg);
    runner(&mut h);
    let path = h.finish().expect("failed to write bench report");
    eprintln!("wrote {}", path.display());
}

/// Scales a workload size down in quick mode.
pub(crate) fn scaled(h: &Harness, full: usize) -> usize {
    if h.quick() {
        (full / 10).max(10)
    } else {
        full
    }
}
