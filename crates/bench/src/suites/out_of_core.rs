//! **B15** — out-of-core execution: under a byte budget ~10× smaller
//! than the working set, every pipeline breaker completes correctly with
//! peak *tracked* memory inside the budget, the spill slowdown is a
//! graceful curve rather than a cliff, and `ORDER BY … LIMIT k` fused
//! to a bounded heap materializes O(k) rows — never its input, never a
//! spill file.
//!
//! Workloads (all asserted, not just measured):
//!
//! * `sort_in_memory` / `sort_spilled` — the same ORDER BY with an
//!   unlimited (but byte-tracked) budget vs. a budget a tenth of the
//!   measured peak. The spilled run must return the identical sequence,
//!   keep `peak_budget_bytes ≤ budget`, and report nonzero
//!   `spill_partitions` / `spill_bytes_written` / `merge_passes`. The
//!   slowdown is capped at 40× — temp-file I/O is allowed to cost, a
//!   quadratic cliff is not.
//! * `group_spilled` / `join_spilled` — Grace GROUP BY and Grace hash
//!   join at the same budget: multiset-identical answers, bounded peak.
//! * `topk` vs `sort_limit_unfused` — the fused bounded heap against
//!   the optimizer-off full sort + LIMIT: same rows, zero spill files,
//!   `peak_budget_used ≤ 2(k + offset) + 16` rows, and no slower than
//!   the plan it replaced.

use sqlpp::{Engine, Limits, SessionConfig, SpillConfig};
use sqlpp_testkit::bench::Harness;
use sqlpp_value::{Tuple, Value};

use super::scaled;

fn rows(n: usize) -> Value {
    let rows = (0..n as i64)
        .map(|i| {
            let mut t = Tuple::with_capacity(3);
            t.insert("id", Value::Int(i));
            t.insert("k", Value::Int((i * 67) % (n as i64 / 4)));
            t.insert("pad", Value::Str(format!("payload-{}", i % 97).into()));
            Value::Tuple(t)
        })
        .collect();
    Value::Bag(rows)
}

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let n = scaled(h, 20_000).max(2_000);
    let engine = Engine::new();
    engine.register("ooc.data", rows(n));

    let sort_q = "SELECT VALUE d.id FROM ooc.data AS d ORDER BY d.k, d.id";

    // --- in-memory baseline: byte-tracked (so the gauge reports peaks)
    // but effectively unlimited.
    let tracked = engine.with_config(SessionConfig {
        limits: Limits::none().with_memory_bytes(u64::MAX / 2),
        ..SessionConfig::default()
    });
    let baseline = tracked.query_with_stats(sort_q).unwrap();
    let working_set = baseline.stats().unwrap().peak_budget_bytes;
    assert!(working_set > 0, "byte tracking reported an empty sort");
    let expected = baseline.into_value().to_string();
    let plan = tracked.prepare(sort_q).unwrap();
    h.bench(format!("out_of_core/sort_in_memory/{n}"), || {
        plan.execute(&tracked).unwrap()
    });
    let in_memory_ns = h.results().last().unwrap().median_ns;

    // --- spilled: a tenth of the measured working set. The 10×-budget
    // input of the ISSUE 9 acceptance gate.
    let budget = (working_set / 10).max(1_500);
    let spilling = engine.with_config(SessionConfig {
        limits: Limits::none().with_memory_bytes(budget),
        spill: Some(SpillConfig::default()),
        ..SessionConfig::default()
    });
    let run = spilling.query_with_stats(sort_q).unwrap();
    let stats = run.stats().unwrap().clone();
    assert_eq!(
        run.into_value().to_string(),
        expected,
        "external sort diverged from the in-memory order"
    );
    assert!(
        stats.peak_budget_bytes <= budget,
        "peak tracked bytes {} exceeded the {budget}-byte budget",
        stats.peak_budget_bytes
    );
    assert!(stats.spill_partitions > 0, "the sort never spilled a run");
    assert!(stats.spill_bytes_written > 0);
    assert!(stats.merge_passes >= 1, "a spilled sort must merge");
    let plan = spilling.prepare(sort_q).unwrap();
    h.bench(format!("out_of_core/sort_spilled/{n}"), || {
        plan.execute(&spilling).unwrap()
    });
    let spilled_ns = h.results().last().unwrap().median_ns;
    assert!(
        spilled_ns <= in_memory_ns * 40.0,
        "spilling fell off a cliff: {spilled_ns:.0}ns vs {in_memory_ns:.0}ns in memory"
    );
    h.attach_counters([
        ("n".to_string(), n as u64),
        ("working_set_bytes".to_string(), working_set),
        ("budget_bytes".to_string(), budget),
        ("peak_budget_bytes".to_string(), stats.peak_budget_bytes),
        ("spill_partitions".to_string(), stats.spill_partitions),
        ("spill_bytes_written".to_string(), stats.spill_bytes_written),
        ("merge_passes".to_string(), stats.merge_passes),
        (
            "slowdown_pct".to_string(),
            ((spilled_ns / in_memory_ns) * 100.0) as u64,
        ),
    ]);

    // --- Grace GROUP BY and Grace hash join at the same budget: the
    // answers are bags, so compare as multisets.
    let group_q = "SELECT d.k AS k, COUNT(*) AS c, SUM(d.id) AS s \
                   FROM ooc.data AS d GROUP BY d.k";
    let expected = engine.query(group_q).unwrap().canonical().to_string();
    let run = spilling.query_with_stats(group_q).unwrap();
    let gstats = run.stats().unwrap().clone();
    assert!(gstats.spill_partitions > 0, "GROUP BY never partitioned");
    assert!(
        gstats.peak_budget_bytes <= budget,
        "GROUP BY peak {} exceeded the {budget}-byte budget",
        gstats.peak_budget_bytes
    );
    assert_eq!(
        run.canonical().to_string(),
        expected,
        "Grace GROUP BY diverged from the in-memory groups"
    );
    let plan = spilling.prepare(group_q).unwrap();
    h.bench(format!("out_of_core/group_spilled/{n}"), || {
        plan.execute(&spilling).unwrap()
    });

    let join_q = "SELECT a.id AS l, b.id AS r FROM ooc.data AS a \
                  JOIN ooc.data AS b ON a.k = b.k AND a.id < b.id";
    let expected = engine.query(join_q).unwrap().canonical().to_string();
    let run = spilling.query_with_stats(join_q).unwrap();
    let jstats = run.stats().unwrap().clone();
    assert!(jstats.spill_partitions > 0, "the join build never spilled");
    assert!(
        jstats.peak_budget_bytes <= budget,
        "join peak {} exceeded the {budget}-byte budget",
        jstats.peak_budget_bytes
    );
    assert_eq!(
        run.canonical().to_string(),
        expected,
        "Grace hash join diverged from the in-memory join"
    );
    let plan = spilling.prepare(join_q).unwrap();
    h.bench(format!("out_of_core/join_spilled/{n}"), || {
        plan.execute(&spilling).unwrap()
    });

    // --- top-k: O(k) rows held, zero spill files, and at least as fast
    // as the unfused sort-then-limit it replaces.
    let (k, off) = (10u64, 5u64);
    let topk_q =
        format!("SELECT VALUE d.id FROM ooc.data AS d ORDER BY d.k, d.id LIMIT {k} OFFSET {off}");
    let run = spilling.query_with_stats(&topk_q).unwrap();
    let tstats = run.stats().unwrap().clone();
    assert_eq!(run.len(), k as usize);
    let fused = run.into_value().to_string();
    assert_eq!(
        tstats.spill_partitions, 0,
        "a bounded heap must not touch disk"
    );
    assert!(
        tstats.peak_budget_used <= 2 * (k + off) + 16,
        "top-k held {} rows for k + offset = {}",
        tstats.peak_budget_used,
        k + off
    );
    let unfused_session = engine.with_config(SessionConfig {
        optimize: false,
        ..SessionConfig::default()
    });
    let unfused = unfused_session
        .query(&topk_q)
        .unwrap()
        .into_value()
        .to_string();
    assert_eq!(fused, unfused, "top-k diverged from ORDER BY + LIMIT");
    let plan = spilling.prepare(&topk_q).unwrap();
    h.bench(format!("out_of_core/topk/{n}"), || {
        plan.execute(&spilling).unwrap()
    });
    let topk_ns = h.results().last().unwrap().median_ns;
    let plan = unfused_session.prepare(&topk_q).unwrap();
    h.bench(format!("out_of_core/sort_limit_unfused/{n}"), || {
        plan.execute(&unfused_session).unwrap()
    });
    let unfused_ns = h.results().last().unwrap().median_ns;
    assert!(
        topk_ns <= unfused_ns * 1.2,
        "the top-k rewrite ({topk_ns:.0}ns) lost to the full sort ({unfused_ns:.0}ns)"
    );
    h.attach_counters([
        ("topk_peak_rows".to_string(), tstats.peak_budget_used),
        ("topk_spill_partitions".to_string(), tstats.spill_partitions),
        (
            "topk_speedup_pct".to_string(),
            ((unfused_ns / topk_ns) * 100.0) as u64,
        ),
    ]);
}
