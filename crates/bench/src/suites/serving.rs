//! **B16** — the serving layer: throughput, tail latency, and fairness
//! under N concurrent sessions; plan-cache amortization; graceful
//! shedding.
//!
//! Workloads:
//!
//! * `request_cold` / `request_cached` — the same wide query (a
//!   generated shape with ~120 projections and conjuncts over a
//!   one-row collection, so parse/lower/optimize costs hundreds of
//!   microseconds while execution costs tens) through a cache-disabled
//!   vs cache-enabled server. Asserted: the cached median is below the
//!   cold median — the shared plan cache measurably amortizes planning,
//!   with a margin far above wire-latency noise.
//! * `mixed_8_clients` — N ≥ 8 client threads over persistent
//!   connections, each driving a mix of parameterized reads (from a
//!   pool of shapes) and INSERT DML. Reports QPS, p50/p95 latency, and
//!   a fairness ratio (slowest client's mean latency over fastest).
//!   Asserted: every request succeeds, every client's parameter echo
//!   comes back with its *own* session id (zero cross-session result
//!   bleed), the cache served hits, and fairness stays above a loose
//!   floor.
//! * shedding (not timed) — a zero-admission server refuses extra
//!   connections with a structured `Overloaded` frame, and a
//!   budget-limited server sheds an over-budget request the same way,
//!   leaving the session usable for the next (cheap) query.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use sqlpp::{Engine, Limits, SessionConfig};
use sqlpp_server::{wire::Response, Client, Server, ServerConfig};
use sqlpp_testkit::bench::Harness;
use sqlpp_value::{Tuple, Value};

use super::scaled;

fn dataset(engine: &Engine, n: usize) {
    let rows = |k: usize, f: &dyn Fn(i64) -> Value| Value::Bag((0..k as i64).map(f).collect());
    engine.register(
        "s.emp",
        rows(n, &|i| {
            let mut t = Tuple::with_capacity(3);
            t.insert("id", Value::Int(i));
            t.insert("dept", Value::Int(i % 8));
            t.insert("sal", Value::Int(1000 + 7 * i));
            Value::Tuple(t)
        }),
    );
    engine.register(
        "s.dept",
        rows(8, &|i| {
            let mut t = Tuple::with_capacity(2);
            t.insert("dno", Value::Int(i));
            t.insert("dname", Value::Str(format!("d{i}")));
            Value::Tuple(t)
        }),
    );
    engine.register(
        "s.region",
        rows(4, &|i| {
            let mut t = Tuple::with_capacity(2);
            t.insert("rno", Value::Int(i));
            t.insert("dno", Value::Int(i * 2));
            Value::Tuple(t)
        }),
    );
    engine.register("s.events", Value::Bag(Vec::new()));
    engine.register("s.one", Value::Bag(vec![Value::Int(0)]));
}

/// Long query text + tiny data: planning dominates, which is exactly
/// what the cache amortizes.
const COMPLEX: &str = "SELECT d.dname AS dname, r.rno AS rno, COUNT(*) AS n, \
     SUM(e.sal) AS payroll, AVG(e.sal) AS avg_sal \
     FROM s.emp AS e, s.dept AS d, s.region AS r \
     WHERE e.dept = d.dno AND d.dno = r.dno AND e.sal >= 0 \
     GROUP BY d.dname, r.rno ORDER BY payroll DESC, dname";

/// Read shapes for the mixed workload (all parameter-free except the
/// echo, which carries the session id).
const SHAPES: [&str; 4] = [
    COMPLEX,
    "SELECT VALUE e.sal FROM s.emp AS e WHERE e.dept = 3 ORDER BY e.sal DESC",
    "SELECT e.dept AS dept, COUNT(*) AS n FROM s.emp AS e GROUP BY e.dept",
    "SELECT VALUE d.dname FROM s.dept AS d WHERE d.dno < 4",
];

const ECHO: &str = "SELECT VALUE ? + x FROM s.one AS x";

/// A deliberately wide query for the cold-vs-cached comparison: ~120
/// projected expressions and as many WHERE conjuncts over a one-row
/// collection. Planning it costs hundreds of microseconds (measured
/// ~650µs at this width), executing it tens — so the cache's saving
/// dwarfs wire-latency noise instead of hiding inside it.
fn wide_query() -> String {
    let n = 120;
    let projs: Vec<String> = (0..n).map(|i| format!("x * {i} + {i} AS p{i}")).collect();
    let conjs: Vec<String> = (0..n)
        .map(|i| format!("x + {i} >= {i} AND x * 2 - {i} < 1000000"))
        .collect();
    format!(
        "SELECT {} FROM s.one AS x WHERE {}",
        projs.join(", "),
        conjs.join(" AND ")
    )
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx]
}

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let n = scaled(h, 2_000).max(200);

    // --- cold vs cached single-request latency -------------------------
    // A wide generated query on purpose: its planning cost (~650µs) is
    // an order of magnitude above both its execution cost and loopback
    // round-trip noise, so the cached-beats-cold assertion is robust
    // at any scale factor and under CI load.
    let wide = wide_query();
    let engine = Engine::new();
    dataset(&engine, 64);
    let cold_server = Server::start(
        engine.clone(),
        ServerConfig {
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    )
    .expect("start cold server");
    let mut c = Client::connect(cold_server.addr()).unwrap();
    h.bench("serving/request_cold", || match c.query(&wide).unwrap() {
        Response::Rows(v) => v,
        other => panic!("cold request failed: {other:?}"),
    });
    let cold_ns = h.results().last().unwrap().median_ns;
    cold_server.shutdown();

    let cached_server =
        Server::start(engine.clone(), ServerConfig::default()).expect("start cached server");
    let mut c = Client::connect(cached_server.addr()).unwrap();
    c.query(&wide).unwrap(); // warm the cache
    h.bench("serving/request_cached", || match c.query(&wide).unwrap() {
        Response::Rows(v) => v,
        other => panic!("cached request failed: {other:?}"),
    });
    let cached_ns = h.results().last().unwrap().median_ns;
    assert!(
        cached_ns < cold_ns,
        "plan cache must beat cold prepares: cached {cached_ns:.0}ns vs cold {cold_ns:.0}ns"
    );
    let cs = cached_server.cache_stats();
    assert!(cs.hits > 0, "cached run never hit the cache: {cs:?}");
    cached_server.shutdown();

    // --- N-client mixed read/DML throughput ---------------------------
    let clients = 8usize;
    let per_client = scaled(h, 150).max(20);
    let engine = Engine::new();
    dataset(&engine, n);
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            workers: clients, // one worker per persistent session
            ..ServerConfig::default()
        },
    )
    .expect("start mixed server");
    let addr = server.addr();

    let lat = Arc::new(Mutex::new(Vec::<Vec<u64>>::new()));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|id| {
            let lat = Arc::clone(&lat);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut mine = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let t0 = Instant::now();
                    let resp = match i % 8 {
                        // One in eight requests is DML.
                        7 => client
                            .query(&format!(
                                "INSERT INTO s.events VALUE {{'c': {id}, 'i': {i}}}"
                            ))
                            .expect("dml"),
                        // One in eight echoes the session id through a
                        // parameter — the bleed canary.
                        3 => client
                            .query_with_params(ECHO, vec![Value::Int(id as i64)])
                            .expect("echo"),
                        k => client
                            .query(SHAPES[k as usize % SHAPES.len()])
                            .expect("read"),
                    };
                    mine.push(t0.elapsed().as_nanos() as u64);
                    match (i % 8, resp) {
                        (3, Response::Rows(v)) => {
                            // Zero bleed: my echo must carry MY id.
                            assert_eq!(
                                v.to_string(),
                                format!("{{{{{id}}}}}"),
                                "client {id} saw another session's result"
                            );
                        }
                        (_, Response::Rows(_)) => {}
                        (_, other) => panic!("client {id} request {i} failed: {other:?}"),
                    }
                }
                lat.lock().unwrap().push(mine);
            })
        })
        .collect();
    for hdl in handles {
        hdl.join().expect("client thread panicked");
    }
    let wall = started.elapsed();
    let per_client_lat = Arc::try_unwrap(lat).unwrap().into_inner().unwrap();
    assert_eq!(per_client_lat.len(), clients, "every client finished");

    let mut merged: Vec<u64> = per_client_lat.iter().flatten().copied().collect();
    merged.sort_unstable();
    let total = merged.len() as u64;
    let qps = total as f64 / wall.as_secs_f64();
    let p50 = percentile(&merged, 0.50);
    let p95 = percentile(&merged, 0.95);
    let means: Vec<f64> = per_client_lat
        .iter()
        .map(|l| l.iter().sum::<u64>() as f64 / l.len() as f64)
        .collect();
    let fastest = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let slowest = means.iter().cloned().fold(0.0, f64::max);
    let fairness = fastest / slowest; // 1.0 = perfectly fair
    assert!(
        fairness > 0.05,
        "one session starved: per-client mean latencies spread {fairness:.3}"
    );
    let stats = server.stats();
    assert_eq!(stats.served, total, "server answered every request");
    assert_eq!(stats.errors, 0, "mixed workload had errors");
    assert_eq!(stats.panics, 0);
    let cs = server.cache_stats();
    assert!(cs.hits > 0, "shared cache never hit under the mixed load");
    // The DML actually landed: 1 in 8 requests per client inserted.
    let events = engine
        .query("SELECT VALUE COUNT(*) FROM s.events AS e")
        .unwrap();
    assert_eq!(
        events.canonical().to_string(),
        format!("{{{{{}}}}}", clients * (per_client / 8)),
    );
    h.attach_counters([
        ("clients".to_string(), clients as u64),
        ("requests".to_string(), total),
        ("qps".to_string(), qps as u64),
        ("p50_us".to_string(), p50 / 1_000),
        ("p95_us".to_string(), p95 / 1_000),
        ("fairness_x1000".to_string(), (fairness * 1000.0) as u64),
        ("cache_hits".to_string(), cs.hits),
        ("cache_misses".to_string(), cs.misses),
    ]);
    // A visible timing entry for the report: one mid-burst request.
    let mut c = Client::connect(addr).unwrap();
    h.bench(format!("serving/mixed/{clients}x{per_client}"), || {
        c.query(SHAPES[1]).unwrap()
    });
    server.shutdown();

    // --- graceful shedding --------------------------------------------
    // Admission: a zero-queue server refuses every connection with a
    // structured Overloaded frame instead of hanging it.
    let engine = Engine::new();
    dataset(&engine, n);
    let shedding = Server::start(
        engine.clone(),
        ServerConfig {
            workers: 1,
            max_pending: 0,
            ..ServerConfig::default()
        },
    )
    .expect("start shedding server");
    for _ in 0..4 {
        let mut c = Client::connect(shedding.addr()).unwrap();
        match c.query("SELECT VALUE x FROM s.one AS x") {
            Ok(Response::Overloaded { .. }) => {}
            other => panic!("expected admission shed, got {other:?}"),
        }
    }
    assert!(shedding.stats().shed_connections >= 4);
    shedding.shutdown();

    // Budget: a session-limited server sheds the over-budget request
    // (structured Overloaded, not an error) and keeps serving.
    let budgeted = Server::start(
        engine,
        ServerConfig {
            session: SessionConfig {
                limits: Limits::none().with_memory_rows(16),
                ..SessionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start budgeted server");
    let mut c = Client::connect(budgeted.addr()).unwrap();
    match c.query("SELECT VALUE e.sal FROM s.emp AS e ORDER BY e.sal") {
        Ok(Response::Overloaded { message }) => {
            assert!(message.contains("memory budget"), "unexpected: {message}")
        }
        other => panic!("expected budget shed, got {other:?}"),
    }
    // The session survives the refusal.
    match c.query("SELECT VALUE x FROM s.one AS x") {
        Ok(Response::Rows(_)) => {}
        other => panic!("session unusable after shed: {other:?}"),
    }
    assert!(budgeted.stats().shed_requests >= 1);
    budgeted.shutdown();
}
