//! **B17** — vectorized execution: batch-at-a-time pulls plus compiled
//! expression bytecode against the row-at-a-time tree-walking path
//! (`batch_size: 1`, `compile_exprs: false` — exactly the engine every
//! prior PR benchmarked). The suite *asserts* the speedup, so a change
//! that silently knocks a hot shape off the fused/batched path fails CI
//! rather than shipping a regression.
//!
//! Workloads (scan/filter/aggregate at 10k–1M rows):
//!
//! * `scan_project` — full scan with an arithmetic projection: the
//!   fused scan→project spine plus bytecode vs per-row `Box<dyn>` pulls
//!   plus tree-walk.
//! * `filter_project` — WHERE + projection: predicate and projection
//!   both run as bytecode over borrowed slices.
//! * `aggregate` — `COLL_SUM` over a projected subquery: the pipelined
//!   accumulator fed by the fused spine.
//!
//! Gates:
//!
//! * each shape's batched median is ≥ [`MIN_SPEEDUP`]× faster than the
//!   row path at [`GATE_ROWS`] rows. The gate is pinned to the largest
//!   cache-resident size on purpose: at 1M rows the source outgrows
//!   LLC and *both* paths converge on DRAM bandwidth — the fused path
//!   already matches a hand-written loop there (~110ns/row), so the
//!   ratio measures memory, not engine overhead. Larger sizes are
//!   still measured and their speedups reported as counters;
//! * under a deadline, real governor clock inspections amortize to
//!   ≤ rows/512 (`cancel_checks` — batching amortizes the every-64th-pull
//!   tick) while still checking at least once;
//! * the instrumented run actually took the batched path
//!   (`batches_produced > 0`) and compiled its expressions
//!   (`exprs_compiled > 0`).

use std::time::Duration;

use sqlpp::{Engine, Limits, SessionConfig};
use sqlpp_testkit::bench::Harness;
use sqlpp_value::{Tuple, Value};

/// Minimum batched-over-row median speedup per shape at [`GATE_ROWS`].
const MIN_SPEEDUP: f64 = 5.0;

/// The size the speedup gate is asserted at — the largest workload that
/// stays cache-resident, so the ratio isolates engine overhead.
const GATE_ROWS: usize = 100_000;

/// `n` tuples `{k: i, v: 7i, even: i % 2 == 0}`.
fn rows(n: usize) -> Value {
    let rows = (0..n as i64)
        .map(|i| {
            let mut t = Tuple::with_capacity(3);
            t.insert("k", Value::Int(i));
            t.insert("v", Value::Int(7 * i));
            t.insert("even", Value::Bool(i % 2 == 0));
            Value::Tuple(t)
        })
        .collect();
    Value::Bag(rows)
}

/// Pulls one named counter out of an instrumented run.
fn counter(stats: &sqlpp::ExecStats, name: &str) -> u64 {
    stats
        .counters()
        .iter()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Runs the suite.
pub fn run(h: &mut Harness) {
    // Quick mode drops the DRAM-bound 1M sweep (the slowest baseline);
    // the gated size always runs.
    let sizes: &[usize] = if h.quick() {
        &[10_000, GATE_ROWS]
    } else {
        &[10_000, GATE_ROWS, 1_000_000]
    };

    let shapes: &[(&str, &str)] = &[
        ("scan_project", "SELECT VALUE x.v + x.k FROM s.big AS x"),
        (
            "filter_project",
            "SELECT VALUE x.v FROM s.big AS x WHERE x.even AND x.v >= 0",
        ),
        (
            "aggregate",
            "SELECT VALUE COLL_SUM(SELECT VALUE x.v FROM s.big AS x)",
        ),
    ];

    for &n in sizes {
        let base = Engine::new();
        base.register("s.big", rows(n));

        // The vectorized engine is the default configuration; the row
        // path is the same engine with batching and compilation
        // switched off.
        let vec_session = base.with_config(SessionConfig::default());
        let row_session = base.with_config(SessionConfig {
            batch_size: 1,
            compile_exprs: false,
            ..SessionConfig::default()
        });

        for (shape, query) in shapes {
            let row_plan = row_session.prepare(query).unwrap();
            let vec_plan = vec_session.prepare(query).unwrap();

            // The gate detects *regressions* — a shape knocked off the
            // fused/batched path collapses to ~1× and fails every
            // attempt. Host noise on a shared machine can shave an
            // honest 6× down past the threshold in one sample, so a
            // below-threshold gated measurement is retried before it
            // fails the suite.
            let attempts = if n == GATE_ROWS { 3 } else { 1 };
            let (mut row_ns, mut vec_ns, mut speedup) = (0.0f64, 0.0f64, 0.0f64);
            for attempt in 0..attempts {
                let suffix = if attempt == 0 {
                    String::new()
                } else {
                    format!("/retry{attempt}")
                };
                h.bench(format!("vectorized/{shape}/row/{n}{suffix}"), || {
                    row_plan.execute(&row_session).unwrap()
                });
                row_ns = h.results().last().unwrap().median_ns;

                h.bench(format!("vectorized/{shape}/batched/{n}{suffix}"), || {
                    vec_plan.execute(&vec_session).unwrap()
                });
                vec_ns = h.results().last().unwrap().median_ns;

                speedup = row_ns / vec_ns.max(1.0);
                if speedup >= MIN_SPEEDUP {
                    break;
                }
            }
            // An instrumented run proves the workload really exercises
            // the batch protocol and the compiler (stats collection
            // itself disables the fused spine, so these counters
            // measure the batched drain loops, not the fusion).
            let run = vec_session.query_with_stats(query).unwrap();
            let stats = run.stats().expect("stats collection was on");
            let batches = counter(stats, "batches_produced");
            let compiled = counter(stats, "exprs_compiled");
            assert!(
                batches > 0,
                "{shape}: no operator took the batched path (batches_produced = 0)"
            );
            assert!(
                compiled > 0,
                "{shape}: no expression compiled to bytecode (exprs_compiled = 0)"
            );
            if n == GATE_ROWS {
                assert!(
                    speedup >= MIN_SPEEDUP,
                    "{shape}: batched path is only {speedup:.2}x the row path \
                     (row {row_ns:.0}ns vs batched {vec_ns:.0}ns), want >= {MIN_SPEEDUP}x"
                );
            }
            h.attach_counters([
                ("speedup_pct".to_string(), (speedup * 100.0) as u64),
                ("batches_produced".to_string(), batches),
                ("exprs_compiled".to_string(), compiled),
                (
                    "exprs_fallback".to_string(),
                    counter(stats, "exprs_fallback"),
                ),
                ("n".to_string(), n as u64),
            ]);
        }

        // Governor amortization gate: a deadline-governed batched scan
        // must inspect the clock at least once but no more than once
        // per 512 rows — the every-64th-pull tick now advances by
        // whole batches.
        let governed = base.with_config(SessionConfig {
            limits: Limits::none().with_time(Duration::from_secs(3600)),
            ..SessionConfig::default()
        });
        let run = governed
            .query_with_stats("SELECT VALUE x.v FROM s.big AS x WHERE x.even AND x.v >= 0")
            .unwrap();
        let stats = run.stats().expect("stats collection was on");
        let checks = counter(stats, "cancel_checks");
        assert!(
            checks >= 1,
            "governed batched scan never inspected its deadline"
        );
        assert!(
            checks <= n as u64 / 512,
            "{checks} real deadline checks over {n} rows — batching failed to \
             amortize (want <= rows/512 = {})",
            n as u64 / 512
        );
        let plan = governed
            .prepare("SELECT VALUE x.v FROM s.big AS x WHERE x.even AND x.v >= 0")
            .unwrap();
        h.bench(format!("vectorized/governed_filter/batched/{n}"), || {
            plan.execute(&governed).unwrap()
        });
        h.attach_counters([
            ("cancel_checks".to_string(), checks),
            ("rows_scanned".to_string(), counter(stats, "rows_scanned")),
            ("n".to_string(), n as u64),
        ]);
    }
}
