//! **B3** — §V-C: "It is important to point out that this materialization
//! is conceptual; under the hood a SQL++ engine is free to optimize, e.g.,
//! by using pipelineable aggregation operations."
//!
//! Workload: grouped AVG over scaled employees, with the engine's
//! pipelined-accumulator fast path on vs off (forced conceptual
//! materialization of each group's salary bag).
//!
//! Expected shape: the pipelined path wins and the gap grows with group
//! size (it skips one full intermediate bag per group).

use sqlpp::SessionConfig;
use sqlpp_testkit::bench::Harness;

use crate::configured_engine;

const QUERY: &str = "SELECT e.deptno, AVG(e.salary) AS avgsal \
                     FROM hr.emp_nest AS e GROUP BY e.deptno";

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let sizes: &[usize] = if h.quick() {
        &[1_000]
    } else {
        &[1_000, 10_000, 50_000]
    };
    for &n in sizes {
        let pipelined = configured_engine(n, 0, 31, SessionConfig::default());
        let materialized = configured_engine(
            n,
            0,
            31,
            SessionConfig {
                pipeline_aggregates: false,
                ..SessionConfig::default()
            },
        );
        let a = pipelined.query(QUERY).unwrap().canonical();
        let b = materialized.query(QUERY).unwrap().canonical();
        assert_eq!(a, b, "both paths must agree at n={n}");
        let plan_p = pipelined.prepare(QUERY).unwrap();
        let plan_m = materialized.prepare(QUERY).unwrap();
        h.bench(format!("agg_pipeline/pipelined/{n}"), || {
            plan_p.execute(&pipelined).unwrap()
        });
        h.bench(format!("agg_pipeline/materialized/{n}"), || {
            plan_m.execute(&materialized).unwrap()
        });
    }
}
