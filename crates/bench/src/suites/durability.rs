//! **B18** — durability: what crash safety costs. Three questions, all
//! measured on the real engine / store, none asserted as tight perf
//! multiples (fsync latency is the storage stack's, not ours):
//!
//! * `commit_*` — the per-commit overhead of write-ahead logging at each
//!   [`SyncMode`] against the in-memory baseline, on a deliberately
//!   *small* (128-row) collection. The WAL logs full values (physical
//!   logging matching the snapshot-and-replace DML model), so append
//!   cost scales with collection size — the suite pins the collection
//!   and reports `wal_bytes_per_commit` so the caveat is a number, not
//!   a footnote.
//! * `checkpoint/{n}` — writing a full catalog snapshot (temp file +
//!   fsync + atomic rename + log truncation) at 10k and 100k rows.
//! * `recover_snapshot/{n}` / `recover_wal/{n}` — cold-start recovery
//!   from a snapshot vs. replaying a 64-record WAL holding the same
//!   rows. Both paths are asserted to reproduce every row before being
//!   timed.

use std::path::PathBuf;

use sqlpp::{DurabilityConfig, Engine, SessionConfig, SyncMode};
use sqlpp_durability::{CatalogImage, DurableStore};
use sqlpp_testkit::bench::Harness;
use sqlpp_value::{Tuple, Value};

use super::scaled;

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlpp-bench-durability-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn rows(n: usize) -> Value {
    let rows = (0..n as i64)
        .map(|i| {
            let mut t = Tuple::with_capacity(3);
            t.insert("id", Value::Int(i));
            t.insert("v", Value::Int((i * 31) % 1_000));
            t.insert("pad", Value::Str(format!("payload-{}", i % 97).into()));
            Value::Tuple(t)
        })
        .collect();
    Value::Bag(rows)
}

fn durable_engine(dir: &PathBuf, sync: SyncMode) -> Engine {
    Engine::open(SessionConfig {
        durability: Some(DurabilityConfig::new(dir).with_sync(sync)),
        ..SessionConfig::default()
    })
    .expect("fresh durability dir opens")
}

/// Runs the suite.
pub fn run(h: &mut Harness) {
    // --- per-commit overhead: one UPDATE of one row in a 128-row
    // collection, so every iteration commits the same-sized value and
    // the WAL append is the only thing that varies across modes.
    const COMMIT_ROWS: usize = 128;
    let update = "UPDATE bench.d AS e SET e.v = e.v + 1 WHERE e.id = 0";

    let baseline = Engine::new();
    baseline.register("bench.d", rows(COMMIT_ROWS));
    h.bench("durability/commit_in_memory", || {
        baseline.execute(update).unwrap()
    });

    for sync in [SyncMode::Never, SyncMode::OnCheckpoint, SyncMode::Always] {
        let dir = work_dir(&format!("commit-{}", sync.name()));
        let engine = durable_engine(&dir, sync);
        engine.register("bench.d", rows(COMMIT_ROWS));
        h.bench(format!("durability/commit_wal_{}", sync.name()), || {
            engine.execute(update).unwrap()
        });
        let st = engine.wal_status().expect("durable engine has a WAL");
        h.attach_counters([
            (format!("appends_{}", sync.name()), st.appends),
            (format!("fsyncs_{}", sync.name()), st.syncs),
            (
                format!("wal_bytes_per_commit_{}", sync.name()),
                if st.appends == 0 {
                    0
                } else {
                    st.wal_bytes / st.appends
                },
            ),
        ]);
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- checkpoint write and cold-start recovery at 10k / 100k rows.
    for full in [10_000usize, 100_000] {
        let n = scaled(h, full).max(1_000);

        // Checkpoint: the engine-level path (image capture under the DML
        // guard + temp file + fsync + rename + WAL truncation).
        let dir = work_dir(&format!("checkpoint-{full}"));
        let engine = durable_engine(&dir, SyncMode::Always);
        engine.register("bench.d", rows(n));
        h.bench(format!("durability/checkpoint/{full}"), || {
            engine.checkpoint().unwrap().expect("durable engine")
        });
        let snap_bytes: u64 = std::fs::read_dir(&dir)
            .expect("dir lists")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
            .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
            .sum();
        h.attach_counters([
            (format!("rows_{full}"), n as u64),
            (format!("snapshot_bytes_{full}"), snap_bytes),
        ]);
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);

        // Recovery from a snapshot: one checksummed image read.
        let dir = work_dir(&format!("recover-snap-{full}"));
        {
            let (store, _) = DurableStore::open(DurabilityConfig::new(&dir)).expect("open");
            let mut image = CatalogImage::default();
            image.values.push(("bench.d".to_string(), rows(n)));
            store.checkpoint(&image).expect("checkpoint");
        }
        h.bench(format!("durability/recover_snapshot/{full}"), || {
            let (_store, recovered) =
                DurableStore::open(DurabilityConfig::new(&dir)).expect("recover");
            assert_eq!(recovered.replayed, 0, "snapshot recovery replays nothing");
            recovered
        });
        let _ = std::fs::remove_dir_all(&dir);

        // Recovery by WAL replay: the same rows arriving as 64 commit
        // records (sharded collections, so total replayed bytes stay
        // O(n) despite full-value logging), no snapshot to shortcut.
        let dir = work_dir(&format!("recover-wal-{full}"));
        const SHARDS: usize = 64;
        {
            let (store, _) =
                DurableStore::open(DurabilityConfig::new(&dir).with_sync(SyncMode::Never))
                    .expect("open");
            let per = n / SHARDS;
            for s in 0..SHARDS {
                store
                    .append_commit(&format!("bench.d{s}"), &rows(per))
                    .expect("append");
            }
        }
        let per = n / SHARDS;
        h.bench(format!("durability/recover_wal/{full}"), || {
            let (_store, recovered) =
                DurableStore::open(DurabilityConfig::new(&dir)).expect("recover");
            assert_eq!(recovered.replayed, SHARDS as u64, "all shards replay");
            let total: usize = recovered
                .image
                .values
                .iter()
                .filter_map(|(_, v)| v.as_elements().map(<[Value]>::len))
                .sum();
            assert_eq!(total, per * SHARDS, "replay reproduced every row");
            recovered
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
