//! **B13** — the resource governor's two promises: *off means free*, and
//! *on means bounded*.
//!
//! Workloads:
//!
//! * `off` / `on` — the same prepared GROUP BY + ORDER BY query with no
//!   governor vs generous limits (memory and deadline far above what the
//!   query needs). The report's medians document the governed overhead;
//!   the suite only hard-fails on a catastrophic regression (> 1.5×),
//!   leaving the within-MAD comparison to the report so CI stays
//!   deterministic on noisy machines.
//! * `budget_failfast` — a 1 000-row budget against an ORDER BY over
//!   50 000 rows. Asserted, not just measured: the query dies with the
//!   structured `ResourceExhausted`, the governor's peak gauge never
//!   exceeds the budget (admission happens *before* storage), and the
//!   refusal is far faster than sorting the input would be.
//! * `deadline_zero` — an already-expired deadline cancels on the first
//!   pull with the structured `Cancelled` error.
//!
//! The fail-fast checks drive the evaluator directly (`sqlpp-eval`):
//! engine-level stats are discarded on `Err`, and the point here is
//! precisely to inspect the governor *after* a failure.

use std::time::Duration;

use sqlpp::{Engine, Limits, SessionConfig};
use sqlpp_eval::{EvalConfig, EvalError, Evaluator};
use sqlpp_testkit::bench::Harness;
use sqlpp_value::{Tuple, Value};

use super::scaled;

const BUDGET: u64 = 1_000;

fn rows(n: usize) -> Value {
    let rows = (0..n as i64)
        .map(|i| {
            let mut t = Tuple::with_capacity(3);
            t.insert("k", Value::Int(i));
            t.insert("v", Value::Int(7 * i));
            t.insert("grp", Value::Int(i % 64));
            Value::Tuple(t)
        })
        .collect();
    Value::Bag(rows)
}

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let n = scaled(h, 50_000).max(2_000);
    let engine = Engine::new();
    engine.register("g.data", rows(n));

    // A query with real governed surface: a GROUP BY breaker, per-row
    // arithmetic, and an ORDER BY breaker over the groups.
    let query = "SELECT g.grp AS grp, COUNT(*) AS n, SUM(g.v) AS total \
                 FROM g.data AS g GROUP BY g.grp ORDER BY total DESC";

    // --- off: the production path carries no governor state at all.
    let plan = engine.prepare(query).unwrap();
    h.bench(format!("governor/off/{n}"), || {
        plan.execute(&engine).unwrap()
    });
    let off_ns = h.results().last().unwrap().median_ns;

    // --- on: generous limits (10× the data, a minute of deadline).
    // Every admission and tick now runs through the governor.
    let governed = engine.with_config(SessionConfig {
        limits: Limits::none()
            .with_memory_rows(10 * n as u64)
            .with_time(Duration::from_secs(60)),
        ..SessionConfig::default()
    });
    let plan = governed.prepare(query).unwrap();
    h.bench(format!("governor/on/{n}"), || {
        plan.execute(&governed).unwrap()
    });
    let on_ns = h.results().last().unwrap().median_ns;
    let overhead_pct = ((on_ns / off_ns) - 1.0) * 100.0;
    assert!(
        on_ns <= off_ns * 1.5,
        "governed run is catastrophically slower: {on_ns:.0}ns vs {off_ns:.0}ns off"
    );
    h.attach_counters([
        ("n".to_string(), n as u64),
        (
            "overhead_pct_x100".to_string(),
            (overhead_pct.max(0.0) * 100.0) as u64,
        ),
    ]);

    // --- budget_failfast: a budget 50× under the input. The sort buffer
    // is refused at admission BUDGET, long before the scan finishes.
    let limits = Limits::none().with_memory_rows(BUDGET);
    let sort_all = "SELECT VALUE g.v FROM g.data AS g ORDER BY g.v DESC";
    let prepared = engine.prepare(sort_all).unwrap();
    let run_budgeted = || {
        let ev = Evaluator::new(
            engine.catalog(),
            EvalConfig {
                limits: limits.clone(),
                ..EvalConfig::default()
            },
        );
        let err = ev.run(prepared.plan()).unwrap_err();
        (ev, err)
    };
    let (ev, err) = run_budgeted();
    match err {
        EvalError::ResourceExhausted {
            resource,
            limit,
            used,
        } => {
            assert_eq!(resource, "memory budget (rows)");
            assert_eq!(limit, BUDGET);
            assert!(
                used > limit,
                "refusal must be the first over-budget admission"
            );
        }
        other => panic!("budgeted ORDER BY failed with the wrong error: {other}"),
    }
    let g = ev.governor();
    assert!(
        g.peak_rows() <= BUDGET,
        "peak live rows {} exceeded the {BUDGET}-row budget",
        g.peak_rows()
    );
    assert_eq!(g.budget_denials(), 1, "exactly one refusal, then unwind");
    h.bench(format!("governor/budget_failfast/{BUDGET}_of_{n}"), || {
        run_budgeted().1
    });
    let failfast_ns = h.results().last().unwrap().median_ns;
    h.attach_counters([
        ("mem_budget".to_string(), BUDGET),
        ("peak_budget_used".to_string(), g.peak_rows()),
        ("budget_denials".to_string(), g.budget_denials()),
    ]);
    // Failing fast must beat sorting the whole input.
    assert!(
        failfast_ns <= off_ns,
        "budget refusal ({failfast_ns:.0}ns) is slower than completing the query ({off_ns:.0}ns)"
    );

    // --- deadline_zero: an expired deadline cancels on the first pull.
    let expired = engine.with_config(SessionConfig {
        limits: Limits::none().with_time(Duration::ZERO),
        ..SessionConfig::default()
    });
    let plan = expired.prepare(sort_all).unwrap();
    let err = plan.execute(&expired).unwrap_err();
    assert!(
        err.to_string().contains("query cancelled"),
        "expired deadline surfaced as: {err}"
    );
    h.bench(format!("governor/deadline_zero/{n}"), || {
        plan.execute(&expired).unwrap_err()
    });
}
