//! **B12** — regression guard for the streaming executor: operators pull
//! bindings one at a time, so `LIMIT k` stops the upstream scan after
//! O(k) rows instead of materializing all N. The suite *asserts* the
//! short-circuits via `rows_scanned` and the `peak_live_bindings` gauge;
//! any of those failing means a pipeline stage went back to building a
//! `Vec<Env>`.
//!
//! Workloads:
//!
//! * `limit_k` — `LIMIT k` over an N-row scan: `rows_scanned ≤ k + slack`
//!   and `peak_live_bindings ≪ N` (nothing materializes).
//! * `limit_offset` — `LIMIT k OFFSET j`: `rows_scanned ≤ j + k + slack`.
//! * `limit_zero` — `LIMIT 0` never constructs its input:
//!   `rows_scanned == 0`.
//! * `filter_limit` — WHERE + LIMIT: the scan stops once k rows pass.
//! * `hash_join_limit` — equi-join under LIMIT k: the build side still
//!   materializes all N rows, but the probe side early-exits
//!   (`join_probes = O(k)`, `rows_scanned = O(N + k)` not O(2N)).
//! * `order_by_contrast` — ORDER BY is a true pipeline breaker: the same
//!   scan under a bare sort shows `peak_live_bindings ≥ N`, proving the
//!   gauge actually measures materialization — while ORDER BY + LIMIT k
//!   fuses into the bounded top-k heap (B15) and peaks at O(k) instead.

use sqlpp::Engine;
use sqlpp_testkit::bench::Harness;
use sqlpp_value::{Tuple, Value};

use super::scaled;

const K: usize = 10;
const OFFSET: usize = 100;

/// `n` tuples `{k: i, v: 7i, even: i % 2 == 0}` with unique keys.
fn rows(n: usize) -> Value {
    let rows = (0..n as i64)
        .map(|i| {
            let mut t = Tuple::with_capacity(3);
            t.insert("k", Value::Int(i));
            t.insert("v", Value::Int(7 * i));
            t.insert("even", Value::Bool(i % 2 == 0));
            Value::Tuple(t)
        })
        .collect();
    Value::Bag(rows)
}

/// Pulls one named counter out of an instrumented run.
fn counter(stats: &sqlpp::ExecStats, name: &str) -> u64 {
    stats
        .counters()
        .iter()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Runs `query`, asserts the named scan/materialization gates, and
/// returns `(rows_scanned, peak_live_bindings)` for the report.
fn gated(engine: &Engine, query: &str, label: &str, max_scanned: u64, max_peak: u64) -> (u64, u64) {
    let run = engine.query_with_stats(query).unwrap();
    let stats = run.stats().expect("stats collection was on");
    let scanned = counter(stats, "rows_scanned");
    let peak = counter(stats, "peak_live_bindings");
    assert!(
        scanned <= max_scanned,
        "{label}: rows_scanned regressed to O(N): {scanned} > {max_scanned}"
    );
    assert!(
        peak <= max_peak,
        "{label}: peak_live_bindings regressed: {peak} > {max_peak}"
    );
    (scanned, peak)
}

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let n = scaled(h, 50_000).max(1_000);
    let engine = Engine::new();
    engine.register("s.big", rows(n));

    let slack = 2; // streaming may look at one row past the quota

    // LIMIT k over an N-row scan: O(k) rows pulled, nothing buffered.
    let limit_k = format!("SELECT VALUE x.v FROM s.big AS x LIMIT {K}");
    let (scanned, peak) = gated(
        &engine,
        &limit_k,
        "limit_k",
        (K + slack) as u64,
        (K + slack) as u64,
    );
    assert!(
        scanned as usize * 10 <= n,
        "limit_k: rows_scanned {scanned} is not far below N = {n}"
    );
    let plan = engine.prepare(&limit_k).unwrap();
    h.bench(format!("limit_stream/limit_k/{K}_of_{n}"), || {
        plan.execute(&engine).unwrap()
    });
    h.attach_counters([
        ("rows_scanned".to_string(), scanned),
        ("peak_live_bindings".to_string(), peak),
        ("n".to_string(), n as u64),
    ]);

    // OFFSET skips j rows but still stops at j + k.
    let limit_offset = format!("SELECT VALUE x.v FROM s.big AS x LIMIT {K} OFFSET {OFFSET}");
    let (scanned, peak) = gated(
        &engine,
        &limit_offset,
        "limit_offset",
        (OFFSET + K + slack) as u64,
        (K + slack) as u64,
    );
    let plan = engine.prepare(&limit_offset).unwrap();
    h.bench(
        format!("limit_stream/limit_offset/{K}+{OFFSET}_of_{n}"),
        || plan.execute(&engine).unwrap(),
    );
    h.attach_counters([
        ("rows_scanned".to_string(), scanned),
        ("peak_live_bindings".to_string(), peak),
    ]);

    // LIMIT 0 never constructs its input.
    let limit_zero = "SELECT VALUE x.v FROM s.big AS x LIMIT 0";
    let run = engine.query_with_stats(limit_zero).unwrap();
    let stats = run.stats().expect("stats collection was on");
    assert_eq!(
        counter(stats, "rows_scanned"),
        0,
        "LIMIT 0 pulled rows from its input"
    );

    // WHERE + LIMIT: the scan stops once k rows pass the predicate
    // (every other row here, so about 2k pulls).
    let filter_limit = format!("SELECT VALUE x.v FROM s.big AS x WHERE x.even LIMIT {K}");
    let (scanned, peak) = gated(
        &engine,
        &filter_limit,
        "filter_limit",
        (2 * K + slack) as u64,
        (K + slack) as u64,
    );
    let plan = engine.prepare(&filter_limit).unwrap();
    h.bench(format!("limit_stream/filter_limit/{K}_of_{n}"), || {
        plan.execute(&engine).unwrap()
    });
    h.attach_counters([
        ("rows_scanned".to_string(), scanned),
        ("peak_live_bindings".to_string(), peak),
    ]);

    // Hash join under LIMIT: the build side must still materialize all m
    // right rows (that's the pipeline breaker), but the probe side pulls
    // only O(k) left rows — rows_scanned = O(m + k), probes = O(k).
    let m = scaled(h, 10_000).max(500);
    engine.register("s.l", rows(m));
    engine.register("s.r", rows(m));
    let join_limit =
        format!("SELECT VALUE [x.v, y.v] FROM s.l AS x JOIN s.r AS y ON x.k = y.k LIMIT {K}");
    let plan_text = engine.explain(&join_limit).unwrap();
    assert!(
        plan_text.contains("hash join"),
        "equi-join under LIMIT no longer plans a hash join:\n{plan_text}"
    );
    let run = engine.query_with_stats(&join_limit).unwrap();
    let stats = run.stats().expect("stats collection was on");
    let scanned = counter(stats, "rows_scanned");
    let probes = counter(stats, "join_probes");
    let build_rows = counter(stats, "join_build_rows");
    let peak = counter(stats, "peak_live_bindings");
    assert_eq!(build_rows, m as u64, "hash build side must see every row");
    assert!(
        probes <= (K + slack) as u64,
        "hash probe side did not early-exit under LIMIT: {probes} probes"
    );
    assert!(
        scanned <= (m + K + slack) as u64,
        "join under LIMIT scanned {scanned} rows, want ≤ m + k = {}",
        m + K
    );
    let plan = engine.prepare(&join_limit).unwrap();
    h.bench(
        format!("limit_stream/hash_join_limit/{K}_of_{m}x{m}"),
        || plan.execute(&engine).unwrap(),
    );
    h.attach_counters([
        ("rows_scanned".to_string(), scanned),
        ("join_probes".to_string(), probes),
        ("join_build_rows".to_string(), build_rows),
        ("peak_live_bindings".to_string(), peak),
    ]);

    // Contrast: a bare ORDER BY breaks the pipeline, so the same scan
    // under a sort buffers every row — the gauge must show it.
    let order_by = "SELECT VALUE x.v FROM s.big AS x ORDER BY x.v DESC".to_string();
    let run = engine.query_with_stats(&order_by).unwrap();
    let stats = run.stats().expect("stats collection was on");
    let scanned = counter(stats, "rows_scanned");
    let peak = counter(stats, "peak_live_bindings");
    assert_eq!(scanned, n as u64, "ORDER BY must consume its whole input");
    assert!(
        peak >= n as u64,
        "ORDER BY materialized {n} rows but the gauge peaked at {peak}"
    );
    let plan = engine.prepare(&order_by).unwrap();
    h.bench(format!("limit_stream/order_by_contrast/all_of_{n}"), || {
        plan.execute(&engine).unwrap()
    });
    h.attach_counters([
        ("rows_scanned".to_string(), scanned),
        ("peak_live_bindings".to_string(), peak),
    ]);

    // ORDER BY + LIMIT k no longer pays that price: fuse_topk rewrites it
    // into a bounded heap, so the gauge stays at O(k) even though the
    // whole input is still consumed.
    let top_k = format!("SELECT VALUE x.v FROM s.big AS x ORDER BY x.v DESC LIMIT {K}");
    let plan_text = engine.explain(&top_k).unwrap();
    assert!(
        plan_text.contains("top-k"),
        "ORDER BY + LIMIT no longer fuses into top-k:\n{plan_text}"
    );
    let run = engine.query_with_stats(&top_k).unwrap();
    let stats = run.stats().expect("stats collection was on");
    let scanned = counter(stats, "rows_scanned");
    let peak = counter(stats, "peak_live_bindings");
    assert_eq!(
        scanned, n as u64,
        "top-k must still consume its whole input"
    );
    assert!(
        peak <= (2 * K + slack) as u64,
        "top-k LIMIT {K} should hold O(k) rows but the gauge peaked at {peak}"
    );
    let plan = engine.prepare(&top_k).unwrap();
    h.bench(format!("limit_stream/order_by_topk/{K}_of_{n}"), || {
        plan.execute(&engine).unwrap()
    });
    h.attach_counters([
        ("rows_scanned".to_string(), scanned),
        ("peak_live_bindings".to_string(), peak),
    ]);
}
