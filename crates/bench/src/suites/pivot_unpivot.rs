//! **B6** — §VI: PIVOT/UNPIVOT "flexibly turn data into attributes and
//! vice versa."
//!
//! Workload: unpivot a wide-tuple collection (Listing 20's shape) and
//! re-pivot the tall twin, sweeping tuple width; a hand-written Rust loop
//! over the same `Value`s is the upper-bound baseline, so the numbers
//! report interpreter overhead rather than wishful thinking.

use sqlpp::Engine;
use sqlpp_testkit::bench::Harness;
use sqlpp_value::{Tuple, Value};

use crate::{gen_tall_prices, gen_wide_prices};

const UNPIVOT: &str = "SELECT c.\"date\" AS \"date\", sym AS symbol, price AS price \
     FROM wide AS c, UNPIVOT c AS price AT sym WHERE NOT sym = 'date'";
const PIVOT: &str = "SELECT t.\"date\" AS \"date\", \
     (PIVOT g.t.price AT g.t.symbol FROM grp AS g) AS prices \
     FROM tall AS t GROUP BY t.\"date\" GROUP AS grp";

/// The native upper bound for the unpivot direction.
fn native_unpivot(wide: &Value) -> Value {
    let mut out = Vec::new();
    for row in wide.as_elements().expect("bag") {
        let t = row.as_tuple().expect("tuple");
        let date = t.get("date").cloned().expect("date");
        for (name, value) in t.iter() {
            if name == "date" {
                continue;
            }
            let mut rec = Tuple::with_capacity(3);
            rec.insert("date", date.clone());
            rec.insert("symbol", Value::Str(name.to_string()));
            rec.insert("price", value.clone());
            out.push(Value::Tuple(rec));
        }
    }
    Value::Bag(out)
}

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let rows = 28; // a month of trading days
    let widths: &[usize] = if h.quick() { &[4, 64] } else { &[4, 64, 1024] };
    for &width in widths {
        let engine = Engine::new();
        let wide = gen_wide_prices(rows, width, 77);
        engine.register("wide", wide.clone());
        engine.register("tall", gen_tall_prices(rows, width, 77));

        // Sanity: engine unpivot == native unpivot.
        let engine_result = engine.query(UNPIVOT).unwrap();
        assert!(engine_result.matches(&native_unpivot(&wide)));

        let plan_unpivot = engine.prepare(UNPIVOT).unwrap();
        h.bench(format!("pivot_unpivot/unpivot/{width}"), || {
            plan_unpivot.execute(&engine).unwrap()
        });
        h.bench(format!("pivot_unpivot/unpivot_native/{width}"), || {
            native_unpivot(&wide)
        });
        let plan_pivot = engine.prepare(PIVOT).unwrap();
        h.bench(format!("pivot_unpivot/pivot/{width}"), || {
            plan_pivot.execute(&engine).unwrap()
        });
    }
}
