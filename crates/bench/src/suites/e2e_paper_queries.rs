//! **B8** — end-to-end throughput for every paper query shape at 1000×
//! the paper's data size. There is no baseline; this bench exists so any
//! regression in the whole parse→lower→optimize→evaluate pipeline is
//! visible per query family.

use sqlpp::Engine;
use sqlpp_testkit::bench::Harness;

use crate::suites::scaled;
use crate::{engine_with_employees, gen_wide_prices};

/// Runs the suite.
pub fn run(h: &mut Harness) {
    let engine = engine_with_employees(scaled(h, 3_000), 3, 5);
    engine.register("closing_prices", gen_wide_prices(scaled(h, 1_000), 3, 5));

    let families: &[(&str, &str)] = &[
        (
            "L2_unnest",
            "SELECT e.name AS emp_name, p.name AS proj_name \
             FROM hr.emp_nest AS e, e.projects AS p \
             WHERE p.name LIKE '%Security%'",
        ),
        (
            "L8_missing_filter",
            "SELECT e.id, e.title AS title FROM hr.emp_nest AS e \
             WHERE e.title = 'Manager'",
        ),
        (
            "L10_nested_select_value",
            "SELECT e.id AS id, (SELECT VALUE p.name FROM e.projects AS p \
             WHERE p.name LIKE '%Security%') AS sec FROM hr.emp_nest AS e",
        ),
        (
            "L12_group_as",
            "FROM hr.emp_nest AS e, e.projects AS p \
             GROUP BY p.name AS pname GROUP AS g \
             SELECT pname AS project, \
             (FROM g AS v SELECT VALUE v.e.name) AS members",
        ),
        (
            "L17_grouped_agg",
            "SELECT e.deptno, AVG(e.salary) AS avgsal FROM hr.emp_nest AS e \
             GROUP BY e.deptno",
        ),
        (
            "L20_unpivot",
            "SELECT c.\"date\" AS d, sym AS symbol, price AS price \
             FROM closing_prices AS c, UNPIVOT c AS price AT sym \
             WHERE NOT sym = 'date'",
        ),
        (
            "L22_unpivot_agg",
            "SELECT sym AS symbol, AVG(price) AS avg_price \
             FROM closing_prices c, UNPIVOT c AS price AT sym \
             WHERE NOT sym = 'date' GROUP BY sym",
        ),
    ];

    for (name, query) in families {
        // Fail loudly if a family stops producing rows (a silent semantic
        // regression would otherwise look like a speedup).
        assert!(
            !engine.query(query).unwrap().is_empty(),
            "query family {name} returned no rows"
        );
        let plan = engine.prepare(query).unwrap();
        h.bench(format!("e2e_paper_queries/{name}"), || {
            plan.execute(&engine).unwrap()
        });
    }

    // Parse+plan cost alone, on the most syntactically involved query.
    let engine2 = Engine::new();
    h.bench("e2e_paper_queries/plan_only_L12", || {
        engine2
            .prepare(
                "FROM hr.emp_nest AS e, e.projects AS p \
                 GROUP BY p.name AS pname GROUP AS g \
                 SELECT pname AS project, \
                 (FROM g AS v SELECT VALUE v.e.name) AS members",
            )
            .unwrap()
    });
}
