//! # sqlpp-bench — workloads and harnesses for the paper's claims
//!
//! The paper has no numeric tables (it is a language-design paper), so the
//! benchmark suite targets every *performance claim or engine-optimization
//! license* in its prose — see DESIGN.md §5.2 for the claim ↔ bench map:
//!
//! | bench | claim |
//! |---|---|
//! | `group_as_vs_subquery` | §V-B: GROUP AS "is more efficient … than nested SELECT VALUE queries" |
//! | `unnest_vs_flat_join` | §III: unnesting composes like joins (no hash table needed) |
//! | `agg_pipeline` | §V-C: conceptual materialization may be pipelined |
//! | `missing_propagation` | §IV: permissive mode keeps healthy data flowing |
//! | `compat_mode_overhead` | §I: the compatibility flag toggles rewritings |
//! | `pivot_unpivot` | §VI: names ⇄ data at scale |
//! | `format_parse` | §I tenet 5: one query over many formats |
//! | `e2e_paper_queries` | end-to-end throughput on scaled paper queries |
//! | `frontend` | error recovery is free on the happy path (strict ≡ recovering parse) |
//!
//! This library provides the deterministic workload generators those
//! benches (and the scaling tests) share.

#![warn(missing_docs)]

use sqlpp::{Engine, SessionConfig};
use sqlpp_testkit::rng::Rng;
use sqlpp_value::{Tuple, Value};

pub mod suites;

/// Deterministic RNG for reproducible workloads (xoshiro256** from
/// `sqlpp-testkit`, seeded via SplitMix64).
pub fn rng(seed: u64) -> Rng {
    Rng::new(seed)
}

const TITLES: &[&str] = &["Engineer", "Manager", "Analyst", "Director"];
const PROJECT_POOL: &[&str] = &[
    "Serverless Query",
    "OLAP Security",
    "OLTP Security",
    "Storage Engine",
    "Query Optimizer",
    "Replication",
    "Cost Model",
    "Vector Search",
];

/// Generates a nested employee collection in the shape of Listing 1:
/// `n` employees, each with up to `fanout` nested project tuples.
pub fn gen_emp_nested(n: usize, fanout: usize, seed: u64) -> Value {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    for id in 0..n {
        let k = if fanout == 0 {
            0
        } else {
            r.gen_range(0..=fanout)
        };
        let projects: Vec<Value> = (0..k)
            .map(|_| {
                let p = PROJECT_POOL[r.gen_range(0..PROJECT_POOL.len())];
                let mut t = Tuple::new();
                t.insert("name", Value::Str(p.to_string()));
                Value::Tuple(t)
            })
            .collect();
        let mut t = Tuple::with_capacity(6);
        t.insert("id", Value::Int(id as i64));
        t.insert("name", Value::Str(format!("Employee {id}")));
        t.insert(
            "title",
            Value::Str(TITLES[r.gen_range(0..TITLES.len())].to_string()),
        );
        t.insert("salary", Value::Int(50_000 + r.gen_range(0..100_000)));
        t.insert("deptno", Value::Int(r.gen_range(0..32)));
        t.insert("projects", Value::Array(projects));
        out.push(Value::Tuple(t));
    }
    Value::Bag(out)
}

/// The pre-flattened relational twin of [`gen_emp_nested`]: an employee
/// table (without projects) plus an assignment table with an `emp_id`
/// foreign key — the classical normalization a SQL engine would require.
pub fn gen_emp_flat(n: usize, fanout: usize, seed: u64) -> (Value, Value) {
    let nested = gen_emp_nested(n, fanout, seed);
    let mut emps = Vec::with_capacity(n);
    let mut assignments = Vec::new();
    for e in nested.as_elements().expect("bag") {
        let t = e.as_tuple().expect("tuple");
        let mut emp = Tuple::with_capacity(5);
        for attr in ["id", "name", "title", "salary", "deptno"] {
            emp.insert(attr, t.get(attr).cloned().unwrap_or(Value::Missing));
        }
        emps.push(Value::Tuple(emp));
        if let Some(Value::Array(projects)) = t.get("projects") {
            for p in projects {
                let mut a = Tuple::with_capacity(2);
                a.insert("emp_id", t.get("id").cloned().unwrap_or(Value::Missing));
                a.insert("pname", p.path("name"));
                assignments.push(Value::Tuple(a));
            }
        }
    }
    (Value::Bag(emps), Value::Bag(assignments))
}

/// A flat numeric collection where `dirty_permille`/1000 of the `x`
/// attributes hold a string instead of a number — exercising §IV's
/// permissive continuation over "unhealthy" data.
pub fn gen_dirty(n: usize, dirty_permille: u32, seed: u64) -> Value {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    for id in 0..n {
        let mut t = Tuple::with_capacity(2);
        t.insert("id", Value::Int(id as i64));
        if r.gen_range(0..1000) < dirty_permille {
            t.insert("x", Value::Str(format!("corrupt-{id}")));
        } else {
            t.insert("x", Value::Int(r.gen_range(0..1_000_000)));
        }
        out.push(Value::Tuple(t));
    }
    Value::Bag(out)
}

/// A collection of wide tuples (`width` price attributes plus a date),
/// the Listing 19 shape scaled up for the pivot/unpivot benches.
pub fn gen_wide_prices(rows: usize, width: usize, seed: u64) -> Value {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(rows);
    for day in 0..rows {
        let mut t = Tuple::with_capacity(width + 1);
        t.insert("date", Value::Str(format!("2019-04-{:02}", day + 1)));
        for s in 0..width {
            t.insert(format!("sym{s}"), Value::Int(r.gen_range(100..5000)));
        }
        out.push(Value::Tuple(t));
    }
    Value::Bag(out)
}

/// The tall (already unpivoted) twin of [`gen_wide_prices`].
pub fn gen_tall_prices(rows: usize, width: usize, seed: u64) -> Value {
    let wide = gen_wide_prices(rows, width, seed);
    let mut out = Vec::with_capacity(rows * width);
    for row in wide.as_elements().expect("bag") {
        let t = row.as_tuple().expect("tuple");
        let date = t.get("date").cloned().expect("date");
        for (name, value) in t.iter() {
            if name == "date" {
                continue;
            }
            let mut rec = Tuple::with_capacity(3);
            rec.insert("date", date.clone());
            rec.insert("symbol", Value::Str(name.to_string()));
            rec.insert("price", value.clone());
            out.push(Value::Tuple(rec));
        }
    }
    Value::Bag(out)
}

/// An engine pre-loaded with a nested-employee collection under
/// `hr.emp_nest` plus its flattened twin under `hr.emp_base` /
/// `hr.assignments`.
pub fn engine_with_employees(n: usize, fanout: usize, seed: u64) -> Engine {
    let engine = Engine::new();
    engine.register("hr.emp_nest", gen_emp_nested(n, fanout, seed));
    let (emps, assignments) = gen_emp_flat(n, fanout, seed);
    engine.register("hr.emp_base", emps);
    engine.register("hr.assignments", assignments);
    engine
}

/// An engine with a specific configuration and the same employee data.
pub fn configured_engine(n: usize, fanout: usize, seed: u64, config: SessionConfig) -> Engine {
    engine_with_employees(n, fanout, seed).with_config(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gen_emp_nested(50, 4, 7), gen_emp_nested(50, 4, 7));
        assert_ne!(gen_emp_nested(50, 4, 7), gen_emp_nested(50, 4, 8));
    }

    #[test]
    fn flat_twin_preserves_cardinalities() {
        let nested = gen_emp_nested(100, 5, 1);
        let (emps, assignments) = gen_emp_flat(100, 5, 1);
        assert_eq!(emps.as_elements().unwrap().len(), 100);
        let total_projects: usize = nested
            .as_elements()
            .unwrap()
            .iter()
            .map(|e| {
                e.path("projects")
                    .as_elements()
                    .map(<[Value]>::len)
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(assignments.as_elements().unwrap().len(), total_projects);
    }

    #[test]
    fn unnest_equals_flat_join_semantically() {
        // The two workload twins must agree, otherwise the B2 bench
        // compares different answers.
        let engine = engine_with_employees(200, 4, 42);
        let nested = engine
            .query(
                "SELECT e.id AS id, p.name AS pname \
                 FROM hr.emp_nest AS e, e.projects AS p",
            )
            .unwrap();
        let flat = engine
            .query(
                "SELECT e.id AS id, a.pname AS pname \
                 FROM hr.emp_base AS e JOIN hr.assignments AS a ON a.emp_id = e.id",
            )
            .unwrap();
        assert!(nested.matches(flat.value()));
        assert!(!nested.is_empty());
    }

    #[test]
    fn dirty_fraction_is_respected() {
        let v = gen_dirty(2000, 250, 3);
        let dirty = v
            .as_elements()
            .unwrap()
            .iter()
            .filter(|t| matches!(t.path("x"), Value::Str(_)))
            .count();
        // 25% ± a generous tolerance.
        assert!((300..700).contains(&dirty), "{dirty}");
    }

    #[test]
    fn wide_and_tall_prices_agree() {
        let engine = Engine::new();
        engine.register("wide", gen_wide_prices(10, 8, 5));
        engine.register("tall", gen_tall_prices(10, 8, 5));
        let unpivoted = engine
            .query(
                "SELECT c.\"date\" AS \"date\", sym AS symbol, price AS price \
                 FROM wide AS c, UNPIVOT c AS price AT sym \
                 WHERE NOT sym = 'date'",
            )
            .unwrap();
        let tall = engine.query("SELECT VALUE t FROM tall AS t").unwrap();
        assert!(unpivoted.matches(tall.value()));
        assert_eq!(unpivoted.len(), 80);
    }
}
