//! **B2** — §III: left-correlated unnesting "requires no syntactic
//! extensions to SQL" and plays the role joins play over normalized data.
//!
//! Workload: the same logical result — (employee, project) pairs —
//! computed (1) by unnesting the nested documents and (2) by joining the
//! pre-flattened twin tables on the foreign key.
//!
//! Expected shape: unnesting wins (the nesting *is* the join index: no
//! matching work at all), and the gap widens with fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlpp_bench::engine_with_employees;

const UNNEST: &str =
    "SELECT e.id AS id, p.name AS pname FROM hr.emp_nest AS e, e.projects AS p";
const FLAT_JOIN: &str = "SELECT e.id AS id, a.pname AS pname \
     FROM hr.emp_base AS e JOIN hr.assignments AS a ON a.emp_id = e.id";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("unnest_vs_flat_join");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, fanout) in [(200usize, 2usize), (200, 8), (1000, 2), (1000, 8)] {
        let engine = engine_with_employees(n, fanout, 23);
        let a = engine.query(UNNEST).unwrap().canonical();
        let b = engine.query(FLAT_JOIN).unwrap().canonical();
        assert_eq!(a, b, "twins must agree at n={n} fanout={fanout}");
        let id = format!("{n}x{fanout}");
        let plan_unnest = engine.prepare(UNNEST).unwrap();
        let plan_join = engine.prepare(FLAT_JOIN).unwrap();
        group.bench_with_input(BenchmarkId::new("unnest", &id), &n, |bench, _| {
            bench.iter(|| plan_unnest.execute(&engine).unwrap());
        });
        // The join baseline is a (correlated) nested loop — n × assignments
        // probes; measured only at the smaller size to keep runs short.
        if n <= 200 {
            group.bench_with_input(BenchmarkId::new("flat_join", &id), &n, |bench, _| {
                bench.iter(|| plan_join.execute(&engine).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
