//! **B1** — §V-B: "This pattern [GROUP AS] is more efficient and more
//! intuitive than nested SELECT VALUE queries when the required nesting is
//! not based on the nesting of the input."
//!
//! Workload: invert the employee→project hierarchy (Listing 12's query)
//! two ways —
//!
//! 1. `group_as`: one GROUP BY … GROUP AS pass;
//! 2. `nested_subquery`: a correlated `SELECT VALUE` per distinct project
//!    (quadratic re-scan), the formulation SQL++ lets you avoid.
//!
//! Expected shape: `group_as` wins, super-linearly as `n` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlpp_bench::engine_with_employees;

const GROUP_AS: &str = "FROM hr.emp_nest AS e, e.projects AS p \
     GROUP BY p.name AS pname GROUP AS g \
     SELECT pname AS project, (FROM g AS v SELECT VALUE v.e.name) AS members";

const NESTED_SUBQUERY: &str = "SELECT DISTINCT VALUE {'project': p.name, 'members': \
       (SELECT VALUE e2.name FROM hr.emp_nest AS e2, e2.projects AS p2 \
        WHERE p2.name = p.name)} \
     FROM hr.emp_nest AS e, e.projects AS p";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_as_vs_subquery");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    // The correlated baseline is quadratic (~2 s/run at n=400 already),
    // so it is measured only at the smaller sizes; group_as continues up.
    for n in [50usize, 100, 200, 400, 1600] {
        let engine = engine_with_employees(n, 6, 11);
        if n <= 200 {
            // Sanity: both formulations agree before we time them.
            let a = engine.query(GROUP_AS).unwrap().canonical();
            let b = engine.query(NESTED_SUBQUERY).unwrap().canonical();
            assert_eq!(a, b, "formulations must agree at n={n}");
        }

        let plan_group = engine.prepare(GROUP_AS).unwrap();
        let plan_sub = engine.prepare(NESTED_SUBQUERY).unwrap();
        group.bench_with_input(BenchmarkId::new("group_as", n), &n, |bench, _| {
            bench.iter(|| plan_group.execute(&engine).unwrap());
        });
        if n <= 200 {
            group.bench_with_input(
                BenchmarkId::new("nested_subquery", n),
                &n,
                |bench, _| {
                    bench.iter(|| plan_sub.execute(&engine).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
