//! **B7** — §I tenet 5 (format independence): "A query should be written
//! identically across underlying data in any of today's many nested
//! and/or semistructured formats."
//!
//! Workload: the same logical collection serialized in all four formats;
//! measured are (a) decode into the logical model and (b) decode + the
//! *identical* query text. Also reports the encoded sizes once, since the
//! binary format's compactness is part of its reason to exist.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlpp::Engine;
use sqlpp_bench::gen_emp_flat;
use sqlpp_formats::{CsvFormat, DataFormat, IonLiteFormat, JsonFormat, PNotationFormat};

const QUERY: &str =
    "SELECT VALUE e.salary FROM data AS e WHERE e.title = 'Engineer'";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("format_parse");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let (emps, _) = gen_emp_flat(10_000, 0, 13);
    let formats: Vec<Box<dyn DataFormat>> = vec![
        Box::new(JsonFormat),
        Box::new(PNotationFormat),
        Box::new(CsvFormat::default()),
        Box::new(IonLiteFormat),
    ];
    for fmt in &formats {
        let bytes = fmt.write(&emps).expect("encodable");
        eprintln!("format {:>9}: {} bytes", fmt.name(), bytes.len());
        group.bench_with_input(
            BenchmarkId::new("decode", fmt.name()),
            &bytes,
            |b, bytes| {
                b.iter(|| fmt.read(bytes).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decode_and_query", fmt.name()),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let engine = Engine::new();
                    engine.register("data", fmt.read(bytes).unwrap());
                    engine.query(QUERY).unwrap()
                });
            },
        );
        // The tenet itself: the identical query text over every format
        // yields the same answer.
        let engine = Engine::new();
        engine.register("data", fmt.read(&bytes).unwrap());
        let result = engine.query(QUERY).unwrap();
        assert_eq!(result.len(), {
            let reference = Engine::new();
            reference.register("data", emps.clone());
            reference.query(QUERY).unwrap().len()
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
