//! **B9 (ablation)** — the plan-cleanup passes (constant folding, filter
//! fusion, WHERE TRUE elimination) from `sqlpp-plan::optimize`, measured
//! on vs. off. DESIGN.md calls the optimizer "deliberately conservative";
//! this bench keeps it honest about what the passes actually buy on
//! queries where they apply (generated predicates with foldable
//! arithmetic) and what the pass itself costs at plan time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlpp::SessionConfig;
use sqlpp_bench::configured_engine;

/// A query with foldable constants and a stacked (fusable) filter shape —
/// what an ORM or query generator typically emits.
const QUERY: &str = "SELECT VALUE e.id FROM hr.emp_base AS e \
     WHERE TRUE AND e.salary > 25000 + 25000 * 2 AND 1 = 1 AND \
           e.deptno = (2 + 3) * 2";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_ablation");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let base = configured_engine(20_000, 0, 3, SessionConfig::default());
    let optimized = base.with_config(SessionConfig::default());
    let raw = base.with_config(SessionConfig {
        optimize: false,
        ..SessionConfig::default()
    });
    assert_eq!(
        optimized.query(QUERY).unwrap().canonical(),
        raw.query(QUERY).unwrap().canonical(),
        "the optimizer must not change results"
    );
    for (label, engine) in [("on", &optimized), ("off", &raw)] {
        group.bench_with_input(BenchmarkId::new("plan", label), &(), |b, ()| {
            b.iter(|| engine.prepare(QUERY).unwrap());
        });
        let plan = engine.prepare(QUERY).unwrap();
        group.bench_with_input(BenchmarkId::new("execute", label), &(), |b, ()| {
            b.iter(|| plan.execute(engine).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
