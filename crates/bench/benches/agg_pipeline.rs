//! **B3** — §V-C: "It is important to point out that this materialization
//! is conceptual; under the hood a SQL++ engine is free to optimize, e.g.,
//! by using pipelineable aggregation operations."
//!
//! Workload: grouped AVG over scaled employees, with the engine's
//! pipelined-accumulator fast path on vs off (forced conceptual
//! materialization of each group's salary bag).
//!
//! Expected shape: the pipelined path wins and the gap grows with group
//! size (it skips one full intermediate bag per group).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlpp_bench::configured_engine;
use sqlpp::SessionConfig;

const QUERY: &str = "SELECT e.deptno, AVG(e.salary) AS avgsal \
                     FROM hr.emp_nest AS e GROUP BY e.deptno";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("agg_pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [1_000usize, 10_000, 50_000] {
        let pipelined = configured_engine(n, 0, 31, SessionConfig::default());
        let materialized = configured_engine(
            n,
            0,
            31,
            SessionConfig { pipeline_aggregates: false, ..SessionConfig::default() },
        );
        let a = pipelined.query(QUERY).unwrap().canonical();
        let b = materialized.query(QUERY).unwrap().canonical();
        assert_eq!(a, b, "both paths must agree at n={n}");
        let plan_p = pipelined.prepare(QUERY).unwrap();
        let plan_m = materialized.prepare(QUERY).unwrap();
        group.bench_with_input(BenchmarkId::new("pipelined", n), &n, |bench, _| {
            bench.iter(|| plan_p.execute(&pipelined).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("materialized", n), &n, |bench, _| {
            bench.iter(|| plan_m.execute(&materialized).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
