//! The optional structural type system.
//!
//! SQL++ makes schema *optional* (§I tenet 3, §IV): data may be entirely
//! self-describing, or a schema may be imposed — in which case static
//! checks become possible and "the result of a working query should not
//! change if a schema is imposed on existing data". Types are structural:
//! a value conforms to a type by shape, not by declaration.

use std::fmt;

use sqlpp_value::{Value, ValueKind};

/// A structural SQL++ type.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlppType {
    /// Top: every value conforms.
    Any,
    /// The NULL type (only NULL conforms).
    Null,
    /// The MISSING type (only MISSING conforms; useful in inference).
    Missing,
    /// Booleans.
    Bool,
    /// 64-bit integers.
    Int,
    /// Doubles.
    Float,
    /// Exact decimals.
    Decimal,
    /// Strings.
    Str,
    /// Byte strings.
    Bytes,
    /// Arrays with a uniform element type.
    Array(Box<SqlppType>),
    /// Bags with a uniform element type.
    Bag(Box<SqlppType>),
    /// Tuples with per-attribute types.
    Tuple(TupleType),
    /// A union of alternatives (Hive `UNIONTYPE`, or inferred
    /// heterogeneity). Invariant: at least one alternative; flattened (no
    /// nested unions).
    Union(Vec<SqlppType>),
}

/// A tuple type: attribute fields plus openness.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TupleType {
    /// Declared fields. A field may be optional: absent attributes are
    /// permitted for optional fields (this is how schema coexists with
    /// MISSING data).
    pub fields: Vec<Field>,
    /// Open tuples permit attributes beyond the declared fields. Closed
    /// tuples (SQL rows) do not.
    pub open: bool,
}

/// One declared attribute of a tuple type.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: SqlppType,
    /// Whether the attribute may be absent entirely.
    pub optional: bool,
}

impl TupleType {
    /// A closed tuple type from `(name, type)` pairs (all required).
    pub fn closed<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = (S, SqlppType)>,
        S: Into<String>,
    {
        TupleType {
            fields: fields
                .into_iter()
                .map(|(name, ty)| Field {
                    name: name.into(),
                    ty,
                    optional: false,
                })
                .collect(),
            open: false,
        }
    }

    /// An open variant of this tuple type.
    pub fn into_open(mut self) -> Self {
        self.open = true;
        self
    }

    /// Looks up a declared field.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

impl fmt::Display for SqlppType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlppType::Any => write!(f, "any"),
            SqlppType::Null => write!(f, "null"),
            SqlppType::Missing => write!(f, "missing"),
            SqlppType::Bool => write!(f, "boolean"),
            SqlppType::Int => write!(f, "integer"),
            SqlppType::Float => write!(f, "float"),
            SqlppType::Decimal => write!(f, "decimal"),
            SqlppType::Str => write!(f, "string"),
            SqlppType::Bytes => write!(f, "bytes"),
            SqlppType::Array(t) => write!(f, "array<{t}>"),
            SqlppType::Bag(t) => write!(f, "bag<{t}>"),
            SqlppType::Tuple(t) => {
                write!(f, "tuple{{")?;
                for (i, field) in t.fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(
                        f,
                        "{}{}: {}",
                        field.name,
                        if field.optional { "?" } else { "" },
                        field.ty
                    )?;
                }
                if t.open {
                    if !t.fields.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "...")?;
                }
                write!(f, "}}")
            }
            SqlppType::Union(alts) => {
                write!(f, "union<")?;
                for (i, alt) in alts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{alt}")?;
                }
                write!(f, ">")
            }
        }
    }
}

impl SqlppType {
    /// Does `value` conform to this type?
    pub fn admits(&self, value: &Value) -> bool {
        match self {
            SqlppType::Any => true,
            SqlppType::Null => value.is_null(),
            SqlppType::Missing => value.is_missing(),
            SqlppType::Bool => value.kind() == ValueKind::Bool,
            SqlppType::Int => value.kind() == ValueKind::Int,
            SqlppType::Float => value.kind() == ValueKind::Float,
            SqlppType::Decimal => value.kind() == ValueKind::Decimal,
            SqlppType::Str => value.kind() == ValueKind::Str,
            SqlppType::Bytes => value.kind() == ValueKind::Bytes,
            SqlppType::Array(elem) => match value {
                Value::Array(items) => items.iter().all(|v| elem.admits(v)),
                _ => false,
            },
            SqlppType::Bag(elem) => match value {
                Value::Bag(items) => items.iter().all(|v| elem.admits(v)),
                _ => false,
            },
            SqlppType::Tuple(tt) => match value {
                Value::Tuple(t) => {
                    // Every declared required field present & conforming;
                    // optional fields conform when present; extra
                    // attributes allowed only if open. Duplicate attribute
                    // names (legal in the data model, §II) must *all*
                    // conform, since navigation may surface any of them.
                    for field in &tt.fields {
                        let mut occurrences = t.get_all(&field.name).peekable();
                        if occurrences.peek().is_none() {
                            if !field.optional {
                                return false;
                            }
                            continue;
                        }
                        if !occurrences.all(|v| field.ty.admits(v)) {
                            return false;
                        }
                    }
                    if !tt.open {
                        t.names().all(|n| tt.field(n).is_some())
                    } else {
                        true
                    }
                }
                _ => false,
            },
            SqlppType::Union(alts) => alts.iter().any(|t| t.admits(value)),
        }
    }

    /// Is this type (syntactically) a subtype of `other`? Sound but
    /// deliberately incomplete — used by the static checker to rule out
    /// impossible navigations, never to reject dynamically valid data.
    pub fn subtype_of(&self, other: &SqlppType) -> bool {
        if matches!(other, SqlppType::Any) || self == other {
            return true;
        }
        match (self, other) {
            (SqlppType::Union(alts), _) => alts.iter().all(|a| a.subtype_of(other)),
            (_, SqlppType::Union(alts)) => alts.iter().any(|a| self.subtype_of(a)),
            (SqlppType::Array(a), SqlppType::Array(b)) | (SqlppType::Bag(a), SqlppType::Bag(b)) => {
                a.subtype_of(b)
            }
            (SqlppType::Tuple(a), SqlppType::Tuple(b)) => {
                // b's required fields must be required-and-subtyped in a;
                // if b is closed, a must be closed with no extra fields.
                for bf in &b.fields {
                    match a.field(&bf.name) {
                        Some(af) => {
                            if !af.ty.subtype_of(&bf.ty) || (af.optional && !bf.optional) {
                                return false;
                            }
                        }
                        None => {
                            if !bf.optional {
                                return false;
                            }
                        }
                    }
                }
                if !b.open {
                    !a.open && a.fields.iter().all(|af| b.field(&af.name).is_some())
                } else {
                    true
                }
            }
            _ => false,
        }
    }

    /// Least upper bound used by inference: merges two types into the
    /// smallest type (in this lattice) admitting both.
    pub fn unify(self, other: SqlppType) -> SqlppType {
        use SqlppType::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (Any, _) | (_, Any) => Any,
            (Missing, t) | (t, Missing) => union2(Missing, t),
            (Null, t) | (t, Null) => union2(Null, t),
            (Array(a), Array(b)) => Array(Box::new(a.unify(*b))),
            (Bag(a), Bag(b)) => Bag(Box::new(a.unify(*b))),
            (Tuple(a), Tuple(b)) => Tuple(unify_tuples(a, b)),
            (Union(mut alts), t) | (t, Union(mut alts)) => {
                merge_into(&mut alts, t);
                if alts.len() == 1 {
                    alts.pop().expect("len checked")
                } else {
                    Union(alts)
                }
            }
            (a, b) => Union(vec![a, b]),
        }
    }
}

fn union2(a: SqlppType, b: SqlppType) -> SqlppType {
    if a == b {
        a
    } else {
        SqlppType::Union(vec![a, b])
    }
}

fn merge_into(alts: &mut Vec<SqlppType>, t: SqlppType) {
    match t {
        SqlppType::Union(more) => {
            for m in more {
                merge_into(alts, m);
            }
        }
        t => {
            // Collapse same-constructor alternatives (e.g. two tuple types)
            // through unify; otherwise append if new.
            for existing in alts.iter_mut() {
                let mergeable = matches!(
                    (&existing, &t),
                    (SqlppType::Tuple(_), SqlppType::Tuple(_))
                        | (SqlppType::Array(_), SqlppType::Array(_))
                        | (SqlppType::Bag(_), SqlppType::Bag(_))
                ) || *existing == t;
                if mergeable {
                    let prev = std::mem::replace(existing, SqlppType::Any);
                    *existing = prev.unify(t);
                    return;
                }
            }
            alts.push(t);
        }
    }
}

fn unify_tuples(a: TupleType, b: TupleType) -> TupleType {
    let mut fields: Vec<Field> = Vec::new();
    for af in &a.fields {
        match b.field(&af.name) {
            Some(bf) => fields.push(Field {
                name: af.name.clone(),
                ty: af.ty.clone().unify(bf.ty.clone()),
                optional: af.optional || bf.optional,
            }),
            None => fields.push(Field {
                name: af.name.clone(),
                ty: af.ty.clone(),
                optional: true,
            }),
        }
    }
    for bf in &b.fields {
        if a.field(&bf.name).is_none() {
            fields.push(Field {
                name: bf.name.clone(),
                ty: bf.ty.clone(),
                optional: true,
            });
        }
    }
    TupleType {
        fields,
        open: a.open || b.open,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::{array, bag, tuple};

    #[test]
    fn scalar_admission() {
        assert!(SqlppType::Int.admits(&Value::Int(1)));
        assert!(!SqlppType::Int.admits(&Value::Float(1.0)));
        assert!(SqlppType::Any.admits(&Value::Missing));
        assert!(SqlppType::Null.admits(&Value::Null));
        assert!(!SqlppType::Null.admits(&Value::Int(0)));
    }

    #[test]
    fn collection_admission() {
        let t = SqlppType::Array(Box::new(SqlppType::Str));
        assert!(t.admits(&array!["a", "b"]));
        assert!(!t.admits(&array!["a", 1i64]));
        assert!(!t.admits(&bag!["a"]));
        let b = SqlppType::Bag(Box::new(SqlppType::Any));
        assert!(b.admits(&bag![1i64, "x"]));
    }

    #[test]
    fn tuple_admission_closed_open_optional() {
        let closed = SqlppType::Tuple(TupleType::closed([
            ("id", SqlppType::Int),
            ("name", SqlppType::Str),
        ]));
        let good = Value::Tuple(tuple! {"id" => 1i64, "name" => "Bob"});
        let extra = Value::Tuple(tuple! {"id" => 1i64, "name" => "Bob", "x" => 1i64});
        assert!(closed.admits(&good));
        assert!(!closed.admits(&extra));
        let open = SqlppType::Tuple(TupleType::closed([("id", SqlppType::Int)]).into_open());
        assert!(open.admits(&extra));

        let with_opt = SqlppType::Tuple(TupleType {
            fields: vec![
                Field {
                    name: "id".into(),
                    ty: SqlppType::Int,
                    optional: false,
                },
                Field {
                    name: "title".into(),
                    ty: SqlppType::Str,
                    optional: true,
                },
            ],
            open: false,
        });
        let no_title = Value::Tuple(tuple! {"id" => 1i64});
        assert!(with_opt.admits(&no_title));
    }

    #[test]
    fn union_admission_models_hive_uniontype() {
        // Listing 5: projects UNIONTYPE<STRING, ARRAY<STRING>>
        let t = SqlppType::Union(vec![
            SqlppType::Str,
            SqlppType::Array(Box::new(SqlppType::Str)),
        ]);
        assert!(t.admits(&Value::Str("OLTP Security".into())));
        assert!(t.admits(&array!["a", "b"]));
        assert!(!t.admits(&Value::Int(1)));
    }

    #[test]
    fn unify_builds_unions_and_merges_tuples() {
        let u = SqlppType::Int.unify(SqlppType::Str);
        assert_eq!(u, SqlppType::Union(vec![SqlppType::Int, SqlppType::Str]));
        // Unifying with an equal type is the identity.
        assert_eq!(SqlppType::Int.unify(SqlppType::Int), SqlppType::Int);
        // Tuples merge field-wise; fields present on one side only become
        // optional.
        let a = SqlppType::Tuple(TupleType::closed([("id", SqlppType::Int)]));
        let b = SqlppType::Tuple(TupleType::closed([
            ("id", SqlppType::Int),
            ("title", SqlppType::Str),
        ]));
        match a.unify(b) {
            SqlppType::Tuple(t) => {
                assert!(!t.field("id").unwrap().optional);
                assert!(t.field("title").unwrap().optional);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_flattening() {
        let u1 = SqlppType::Int.unify(SqlppType::Str);
        let u2 = u1.unify(SqlppType::Bool);
        match u2 {
            SqlppType::Union(alts) => assert_eq!(alts.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subtyping_basics() {
        assert!(SqlppType::Int.subtype_of(&SqlppType::Any));
        assert!(SqlppType::Int.subtype_of(&SqlppType::Union(vec![SqlppType::Int, SqlppType::Str])));
        assert!(!SqlppType::Union(vec![SqlppType::Int, SqlppType::Str]).subtype_of(&SqlppType::Int));
        let narrow = SqlppType::Tuple(TupleType::closed([
            ("id", SqlppType::Int),
            ("name", SqlppType::Str),
        ]));
        let wide = SqlppType::Tuple(TupleType::closed([("id", SqlppType::Int)]).into_open());
        assert!(narrow.subtype_of(&wide));
        assert!(!wide.subtype_of(&narrow));
    }

    #[test]
    fn display_is_readable() {
        let t = SqlppType::Bag(Box::new(SqlppType::Tuple(TupleType {
            fields: vec![Field {
                name: "title".into(),
                ty: SqlppType::Str,
                optional: true,
            }],
            open: true,
        })));
        assert_eq!(t.to_string(), "bag<tuple{title?: string, ...}>");
    }
}
