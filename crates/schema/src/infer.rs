//! Schema inference from self-describing data.
//!
//! Used by the *query stability* tests (§I tenet 3): infer a schema from a
//! dataset, impose it, and verify query results are unchanged. Inference
//! produces the least type (in this structural lattice) admitting every
//! observed value.

use sqlpp_value::Value;

use crate::types::{Field, SqlppType, TupleType};

/// Infers the type of one value.
pub fn infer_value(v: &Value) -> SqlppType {
    match v {
        Value::Missing => SqlppType::Missing,
        Value::Null => SqlppType::Null,
        Value::Bool(_) => SqlppType::Bool,
        Value::Int(_) => SqlppType::Int,
        Value::Float(_) => SqlppType::Float,
        Value::Decimal(_) => SqlppType::Decimal,
        Value::Str(_) => SqlppType::Str,
        Value::Bytes(_) => SqlppType::Bytes,
        Value::Array(items) => SqlppType::Array(Box::new(infer_elements(items))),
        Value::Bag(items) => SqlppType::Bag(Box::new(infer_elements(items))),
        Value::Tuple(t) => {
            // Duplicate attribute names (legal, §II) merge into one field
            // whose type unifies every occurrence.
            let mut fields: Vec<Field> = Vec::with_capacity(t.len());
            for (name, value) in t.iter() {
                let ty = infer_value(value);
                if let Some(existing) = fields.iter_mut().find(|f| f.name == name) {
                    let prev = std::mem::replace(&mut existing.ty, SqlppType::Any);
                    existing.ty = prev.unify(ty);
                } else {
                    fields.push(Field {
                        name: name.to_string(),
                        ty,
                        optional: false,
                    });
                }
            }
            SqlppType::Tuple(TupleType {
                fields,
                open: false,
            })
        }
    }
}

fn infer_elements(items: &[Value]) -> SqlppType {
    let mut iter = items.iter();
    let Some(first) = iter.next() else {
        // Empty collections: the element type is unconstrained.
        return SqlppType::Any;
    };
    let mut ty = infer_value(first);
    for item in iter {
        ty = ty.unify(infer_value(item));
    }
    ty
}

/// Infers a collection schema: the element type of a named collection.
/// Returns `None` when the value is not a collection.
pub fn infer_collection(v: &Value) -> Option<SqlppType> {
    match v {
        Value::Array(items) | Value::Bag(items) => Some(infer_elements(items)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::{array, bag, rows, tuple, Value};

    #[test]
    fn infers_scalars_and_collections() {
        assert_eq!(infer_value(&Value::Int(1)), SqlppType::Int);
        assert_eq!(
            infer_value(&array!["a", "b"]),
            SqlppType::Array(Box::new(SqlppType::Str))
        );
        assert_eq!(
            infer_value(&Value::empty_bag()),
            SqlppType::Bag(Box::new(SqlppType::Any))
        );
    }

    #[test]
    fn heterogeneous_collections_infer_unions() {
        let t = infer_value(&bag![1i64, "x"]);
        assert_eq!(
            t,
            SqlppType::Bag(Box::new(SqlppType::Union(vec![
                SqlppType::Int,
                SqlppType::Str
            ])))
        );
    }

    #[test]
    fn missing_attributes_become_optional_fields() {
        // emp_missing (Listing 7): Bob has no title.
        let data = rows![
            {"id" => 3i64, "name" => "Bob Smith"},
            {"id" => 4i64, "name" => "Susan Smith", "title" => "Manager"},
        ];
        let elem = infer_collection(&data).unwrap();
        match elem {
            SqlppType::Tuple(t) => {
                assert!(!t.field("id").unwrap().optional);
                assert!(t.field("title").unwrap().optional);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inferred_type_admits_every_source_value() {
        let data = bag![
            Value::Tuple(tuple! {"a" => 1i64, "b" => array![1i64, 2i64]}),
            Value::Tuple(tuple! {"a" => "x"}),
            Value::Null,
        ];
        let ty = infer_value(&data);
        assert!(ty.admits(&data), "{ty} should admit its own source");
    }

    #[test]
    fn nulls_union_with_scalars() {
        // hr.emp_null (Listing 6): title is sometimes null.
        let data = rows![
            {"title" => Value::Null},
            {"title" => "Manager"},
        ];
        let elem = infer_collection(&data).unwrap();
        match elem {
            SqlppType::Tuple(t) => {
                let f = t.field("title").unwrap();
                assert!(matches!(f.ty, SqlppType::Union(_)), "{}", f.ty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
