//! # sqlpp-schema — the optional schema layer
//!
//! SQL++ "does not require a predefined schema over a query's target
//! input" (§I tenet 3), but when one is present it enables validation and
//! static disambiguation while guaranteeing *query stability*: imposing a
//! schema on unchanged data never changes a working query's result. This
//! crate provides:
//!
//! * [`SqlppType`] — a structural type lattice with open/closed tuples,
//!   optional fields, and union types (Hive's `UNIONTYPE`, Listing 5);
//! * [`infer_value`]/[`infer_collection`] — schema inference from data;
//! * [`hive::table_row_type`] — mapping parsed DDL onto structural types;
//! * [`Validator`] — batch validation with per-path error reporting.

#![warn(missing_docs)]

pub mod hive;
mod infer;
mod types;

pub use infer::{infer_collection, infer_value};
pub use types::{Field, SqlppType, TupleType};

use sqlpp_value::Value;

/// A validation failure: which element, where, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index of the offending element within the validated collection.
    pub index: usize,
    /// Human-readable description.
    pub message: String,
}

/// Validates collections against an element type, collecting violations
/// rather than stopping at the first (mirroring the permissive spirit of
/// §IV: keep processing healthy data).
#[derive(Debug, Clone)]
pub struct Validator {
    element_type: SqlppType,
}

impl Validator {
    /// A validator for collections whose elements must conform to `ty`.
    pub fn new(element_type: SqlppType) -> Self {
        Validator { element_type }
    }

    /// The element type being enforced.
    pub fn element_type(&self) -> &SqlppType {
        &self.element_type
    }

    /// Checks every element of `collection`; scalars are treated as
    /// single-element collections.
    pub fn validate(&self, collection: &Value) -> Vec<Violation> {
        let items: &[Value] = match collection.as_elements() {
            Some(items) => items,
            None => std::slice::from_ref(collection),
        };
        items
            .iter()
            .enumerate()
            .filter(|(_, v)| !self.element_type.admits(v))
            .map(|(index, v)| Violation {
                index,
                message: format!(
                    "element {index} ({}) does not conform to {}",
                    v.kind().name(),
                    self.element_type
                ),
            })
            .collect()
    }

    /// True when the whole collection conforms.
    pub fn is_valid(&self, collection: &Value) -> bool {
        self.validate(collection).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::{bag, rows};

    #[test]
    fn validator_reports_offending_indices() {
        let v = Validator::new(SqlppType::Int);
        let errs = v.validate(&bag![1i64, "two", 3i64, "four"]);
        assert_eq!(errs.len(), 2);
        assert_eq!(errs[0].index, 1);
        assert_eq!(errs[1].index, 3);
        assert!(errs[0].message.contains("string"));
    }

    #[test]
    fn inferred_schema_always_validates_its_source() {
        let data = rows![
            {"id" => 1i64, "name" => "A"},
            {"id" => 2i64},
        ];
        let elem = infer_collection(&data).unwrap();
        assert!(Validator::new(elem).is_valid(&data));
    }

    #[test]
    fn scalar_values_validate_as_singletons() {
        let v = Validator::new(SqlppType::Str);
        assert!(v.is_valid(&sqlpp_value::Value::Str("x".into())));
        assert!(!v.is_valid(&sqlpp_value::Value::Int(1)));
    }
}
