//! Mapping Hive-style DDL type expressions (Listing 5) onto the structural
//! type system, including `UNIONTYPE`.

use sqlpp_syntax::ast::{CreateTable, TypeExpr};

use crate::types::{Field, SqlppType, TupleType};

/// Converts a parsed DDL type expression to a structural type.
pub fn type_from_ddl(ty: &TypeExpr) -> SqlppType {
    match ty {
        TypeExpr::Named(name) => match name.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => SqlppType::Int,
            "STRING" | "VARCHAR" | "CHAR" | "TEXT" => SqlppType::Str,
            "DOUBLE" | "FLOAT" | "REAL" => SqlppType::Float,
            "DECIMAL" | "NUMERIC" => SqlppType::Decimal,
            "BOOLEAN" | "BOOL" => SqlppType::Bool,
            "BINARY" | "BYTES" | "BLOB" => SqlppType::Bytes,
            _ => SqlppType::Any,
        },
        TypeExpr::Array(inner) => SqlppType::Array(Box::new(type_from_ddl(inner))),
        TypeExpr::Bag(inner) => SqlppType::Bag(Box::new(type_from_ddl(inner))),
        TypeExpr::Struct(fields) => SqlppType::Tuple(TupleType {
            fields: fields
                .iter()
                .map(|(name, fty)| Field {
                    name: name.clone(),
                    ty: type_from_ddl(fty),
                    optional: false,
                })
                .collect(),
            open: false,
        }),
        TypeExpr::Union(alts) => SqlppType::Union(alts.iter().map(type_from_ddl).collect()),
    }
}

/// Converts a whole `CREATE TABLE` into the row (element) type of the
/// declared collection. SQL columns are nullable by default, so every
/// column type unions with NULL.
pub fn table_row_type(ct: &CreateTable) -> SqlppType {
    SqlppType::Tuple(TupleType {
        fields: ct
            .columns
            .iter()
            .map(|(name, ty)| Field {
                name: name.clone(),
                ty: type_from_ddl(ty).unify(SqlppType::Null),
                optional: false,
            })
            .collect(),
        open: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_syntax::ast::Statement;
    use sqlpp_syntax::parse_statement;
    use sqlpp_value::{array, rows, Value};

    fn listing5_row_type() -> SqlppType {
        let stmt = parse_statement(
            "CREATE TABLE emp_mixed (id INT, name STRING, title STRING, \
             projects UNIONTYPE<STRING, ARRAY<STRING>>)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(ct) => table_row_type(&ct),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn listing_5_round_trip_to_structural_type() {
        let row = listing5_row_type();
        // A string-projects employee and an array-projects employee both
        // conform — exactly the heterogeneity the paper highlights.
        let scalar_projects = rows![
            {"id" => 1i64, "name" => "A", "title" => Value::Null, "projects" => "OLTP"}
        ];
        let array_projects = rows![
            {"id" => 2i64, "name" => "B", "title" => "Mgr",
             "projects" => array!["OLTP", "OLAP"]}
        ];
        for data in [scalar_projects, array_projects] {
            let emp = &data.as_elements().unwrap()[0];
            assert!(row.admits(emp), "{row} should admit {emp}");
        }
        // …but a numeric projects value does not.
        let bad = rows![{"id" => 3i64, "name" => "C", "title" => Value::Null,
                         "projects" => 7i64}];
        assert!(!row.admits(&bad.as_elements().unwrap()[0]));
    }

    #[test]
    fn named_types_map_to_scalars() {
        assert_eq!(
            type_from_ddl(&TypeExpr::Named("BIGINT".into())),
            SqlppType::Int
        );
        assert_eq!(
            type_from_ddl(&TypeExpr::Named("VARCHAR".into())),
            SqlppType::Str
        );
        assert_eq!(
            type_from_ddl(&TypeExpr::Named("WHATEVER".into())),
            SqlppType::Any
        );
    }

    #[test]
    fn struct_maps_to_closed_tuple() {
        let t = type_from_ddl(&TypeExpr::Struct(vec![(
            "x".into(),
            TypeExpr::Named("INT".into()),
        )]));
        match t {
            SqlppType::Tuple(tt) => {
                assert!(!tt.open);
                assert_eq!(tt.fields.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
