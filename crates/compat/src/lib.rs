//! # sqlpp-compat-kit — the Core SQL++ compatibility kit
//!
//! The paper's conclusion announces: "Future joint work is expected to
//! include developing a shared 'compatibility kit' for use in checking
//! for compliance with Core SQL++ in both its composability mode and its
//! SQL compatibility mode." This crate *is* that kit for this
//! implementation:
//!
//! * [`mod@corpus`] — every paper listing (data, query, expected output in
//!   the paper's own notation) plus systematically derived edge cases,
//!   each tagged with the mode(s) it applies to;
//! * [`runner`] — executes the corpus against an [`sqlpp::Engine`] in
//!   both modes and renders a pass/fail report;
//! * `compat_report` — a binary printing the report
//!   (`cargo run -p sqlpp-compat-kit --bin compat_report`).
//!
//! Any other engine exposing the same `Engine` facade could be checked by
//! the same corpus, which is exactly the multi-vendor intent.

#![warn(missing_docs)]

pub mod corpus;
pub mod runner;

pub use corpus::{corpus, standard_fixtures, Case, Check, ModeSpec};
pub use runner::{fixture_engine, run_all, run_case, CaseResult, Report};
