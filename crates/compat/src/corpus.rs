//! The conformance corpus: every listing of the paper plus derived edge
//! cases, expressed as data fixtures (in the paper's own object notation),
//! a query, and the expected result.
//!
//! Where the paper's printed output is *inconsistent with its own data or
//! query* (it happens — see the `note` fields), the expected value here is
//! the mechanical result of the printed query over the printed data, and
//! EXPERIMENTS.md records the discrepancy.

/// Which engine modes a case runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeSpec {
    /// Must pass in both SQL-compatibility and composability modes.
    Both,
    /// Only meaningful with the SQL-compatibility flag set.
    CompatOnly,
    /// Only meaningful in composability mode.
    ComposableOnly,
}

/// How the expectation is checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// Result must be bag-equal (order-insensitive) to the expected value.
    BagEqual,
    /// Result must be exactly equal including array order (used when the
    /// query has ORDER BY).
    OrderedEqual,
    /// The query must fail to plan or evaluate.
    Errors,
}

/// One conformance case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Stable identifier: `L<k>` for paper listings, `K-…` for derived
    /// kit cases.
    pub id: &'static str,
    /// Paper section.
    pub section: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Extra collections to load for this case, `(name, pnotation)`.
    pub setup: &'static [(&'static str, &'static str)],
    /// The query (or bare expression) to run.
    pub query: &'static str,
    /// Expected result in pnotation (ignored for `Check::Errors`).
    pub expected: &'static str,
    /// How to compare.
    pub check: Check,
    /// Mode applicability.
    pub modes: ModeSpec,
    /// Discrepancy / clarification notes.
    pub note: Option<&'static str>,
}

/// Listing 1: `hr.emp_nest_tuples`.
pub const EMP_NEST_TUPLES: &str = r#"{{
    {'id': 3, 'name': 'Bob Smith', 'title': null,
     'projects': [{'name': 'Serverless Query'},
                  {'name': 'OLAP Security'},
                  {'name': 'OLTP Security'}]},
    {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
    {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
     'projects': [{'name': 'OLTP Security'}]}
}}"#;

/// Listing 3: `hr.emp_nest_scalars` (projects are arrays of strings).
pub const EMP_NEST_SCALARS: &str = r#"{{
    {'id': 3, 'name': 'Bob Smith', 'title': null,
     'projects': ['Serverless Querying', 'OLAP Security', 'OLTP Security']},
    {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
    {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
     'projects': ['OLTP Security']}
}}"#;

/// Listing 6: `hr.emp_null` (Bob's lack of title as NULL).
pub const EMP_NULL: &str = r#"{{
    {'id': 3, 'name': 'Bob Smith', 'title': null},
    {'id': 4, 'name': 'Susan Smith', 'title': 'Manager'},
    {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer'}
}}"#;

/// Listing 7: `hr.emp_missing` (Bob's lack of title as absence).
pub const EMP_MISSING: &str = r#"{{
    {'id': 3, 'name': 'Bob Smith'},
    {'id': 4, 'name': 'Susan Smith', 'title': 'Manager'},
    {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer'}
}}"#;

/// Synthesized `hr.emp` for §V-C (the paper describes its columns —
/// name, deptno, title, salary — but prints no rows).
pub const EMP_FLAT: &str = r#"{{
    {'name': 'Alice', 'deptno': 1, 'title': 'Engineer', 'salary': 90000},
    {'name': 'Bob',   'deptno': 1, 'title': 'Engineer', 'salary': 80000},
    {'name': 'Carol', 'deptno': 2, 'title': 'Engineer', 'salary': 100000},
    {'name': 'Dave',  'deptno': 2, 'title': 'Manager',  'salary': 120000},
    {'name': 'Eve',   'deptno': 3, 'title': 'Manager',  'salary': 130000}
}}"#;

/// Listing 19: `closing_prices`.
pub const CLOSING_PRICES: &str = r#"{{
    {'date': '4/1/2019', 'amzn': 1900, 'goog': 1120, 'fb': 180},
    {'date': '4/2/2019', 'amzn': 1902, 'goog': 1119, 'fb': 183}
}}"#;

/// Listing 23: `today_stock_prices`.
pub const TODAY_STOCK_PRICES: &str = r#"{{
    {'symbol': 'amzn', 'price': 1900},
    {'symbol': 'goog', 'price': 1120},
    {'symbol': 'fb', 'price': 180}
}}"#;

/// Listing 27: `stock_prices`.
pub const STOCK_PRICES: &str = r#"{{
    {'date': '4/1/2019', 'symbol': 'amzn', 'price': 1900},
    {'date': '4/1/2019', 'symbol': 'goog', 'price': 1120},
    {'date': '4/1/2019', 'symbol': 'fb', 'price': 180},
    {'date': '4/2/2019', 'symbol': 'amzn', 'price': 1902},
    {'date': '4/2/2019', 'symbol': 'goog', 'price': 1119},
    {'date': '4/2/2019', 'symbol': 'fb', 'price': 183}
}}"#;

/// The standard fixtures loaded for every case.
pub fn standard_fixtures() -> Vec<(&'static str, &'static str)> {
    vec![
        ("hr.emp_nest_tuples", EMP_NEST_TUPLES),
        ("hr.emp_nest_scalars", EMP_NEST_SCALARS),
        ("hr.emp_null", EMP_NULL),
        ("hr.emp_missing", EMP_MISSING),
        ("hr.emp", EMP_FLAT),
        ("closing_prices", CLOSING_PRICES),
        ("today_stock_prices", TODAY_STOCK_PRICES),
        ("stock_prices", STOCK_PRICES),
    ]
}

/// The full corpus.
#[allow(clippy::vec_init_then_push)] // one push block per paper listing reads best
pub fn corpus() -> Vec<Case> {
    let mut cases = Vec::new();

    // ================= paper listings =================

    cases.push(Case {
        id: "L2",
        section: "III",
        title: "left-correlated unnest of nested tuples (Pseudocode 1)",
        setup: &[],
        query: "SELECT e.name AS emp_name, p.name AS proj_name \
                FROM hr.emp_nest_tuples AS e, e.projects AS p \
                WHERE p.name LIKE '%Security%'",
        expected: r#"{{
            {'emp_name': 'Bob Smith', 'proj_name': 'OLAP Security'},
            {'emp_name': 'Bob Smith', 'proj_name': 'OLTP Security'},
            {'emp_name': 'Jane Smith', 'proj_name': 'OLTP Security'}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "L4",
        section: "III-A",
        title: "variables bind to scalars (Pseudocode 2)",
        setup: &[],
        query: "SELECT e.name AS emp_name, p AS proj_name \
                FROM hr.emp_nest_scalars AS e, e.projects AS p \
                WHERE p LIKE '%Security%'",
        expected: r#"{{
            {'emp_name': 'Bob Smith', 'proj_name': 'OLAP Security'},
            {'emp_name': 'Bob Smith', 'proj_name': 'OLTP Security'},
            {'emp_name': 'Jane Smith', 'proj_name': 'OLTP Security'}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "L8",
        section: "IV-B",
        title: "query over a potentially missing attribute",
        setup: &[],
        query: "SELECT e.id, e.name AS emp_name, e.title AS title \
                FROM hr.emp_missing AS e WHERE e.title = 'Manager'",
        expected: r#"{{ {'id': 4, 'emp_name': 'Susan Smith', 'title': 'Manager'} }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some(
            "For Bob the predicate is MISSING = 'Manager' → MISSING, so the \
             tuple is excluded — data exclusion, not an error (§IV-B).",
        ),
    });

    cases.push(Case {
        id: "L8b",
        section: "IV-B",
        title: "projecting a missing attribute drops it from the output",
        setup: &[],
        query: "SELECT e.id, e.name AS emp_name, e.title AS title \
                FROM hr.emp_missing AS e",
        expected: r#"{{
            {'id': 3, 'emp_name': 'Bob Smith'},
            {'id': 4, 'emp_name': 'Susan Smith', 'title': 'Manager'},
            {'id': 6, 'emp_name': 'Jane Smith', 'title': 'Engineer'}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some("Bob's output tuple has no title attribute (§IV-B)."),
    });

    cases.push(Case {
        id: "L9",
        section: "IV-B",
        title: "CASE over MISSING propagates in composability mode",
        setup: &[],
        query: "SELECT e.id, e.name AS emp_name, \
                CASE WHEN e.title LIKE 'Chief %' THEN 'Executive' \
                ELSE 'Worker' END AS category \
                FROM hr.emp_missing AS e",
        expected: r#"{{
            {'id': 3, 'emp_name': 'Bob Smith'},
            {'id': 4, 'emp_name': 'Susan Smith', 'category': 'Worker'},
            {'id': 6, 'emp_name': 'Jane Smith', 'category': 'Worker'}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::ComposableOnly,
        note: Some(
            "\"CASE WHEN MISSING … END … will in turn evaluate to MISSING\" \
             (§IV-B); Bob gets no category attribute.",
        ),
    });

    cases.push(Case {
        id: "L9-compat",
        section: "IV-B",
        title: "the same CASE under SQL rules (compat mode)",
        setup: &[],
        query: "SELECT e.id, e.name AS emp_name, \
                CASE WHEN e.title LIKE 'Chief %' THEN 'Executive' \
                ELSE 'Worker' END AS category \
                FROM hr.emp_missing AS e",
        expected: r#"{{
            {'id': 3, 'emp_name': 'Bob Smith', 'category': 'Worker'},
            {'id': 4, 'emp_name': 'Susan Smith', 'category': 'Worker'},
            {'id': 6, 'emp_name': 'Jane Smith', 'category': 'Worker'}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::CompatOnly,
        note: Some(
            "SQL's CASE takes the ELSE on a non-true condition; the compat \
             flag preserves that for SQL queries.",
        ),
    });

    cases.push(Case {
        id: "L10",
        section: "V-A",
        title: "nested SELECT VALUE subquery in the projection",
        setup: &[],
        query: "SELECT e.id AS id, e.name AS emp_name, e.title AS emp_title, \
                (SELECT VALUE p FROM e.projects AS p \
                 WHERE p LIKE '%Security%') AS security_proj \
                FROM hr.emp_nest_scalars AS e",
        expected: r#"{{
            {'id': 3, 'emp_name': 'Bob Smith', 'emp_title': null,
             'security_proj': {{'OLAP Security', 'OLTP Security'}}},
            {'id': 4, 'emp_name': 'Susan Smith', 'emp_title': 'Manager',
             'security_proj': {{}}},
            {'id': 6, 'emp_name': 'Jane Smith', 'emp_title': 'Engineer',
             'security_proj': {{'OLTP Security'}}}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some(
            "Listing 11 prints the attributes as 'name'/'title' though the \
             query aliases them emp_name/emp_title; the mechanical result \
             uses the aliases. SELECT VALUE is never coerced (§V-A).",
        ),
    });

    cases.push(Case {
        id: "L12",
        section: "V-B",
        title: "GROUP BY … GROUP AS inverts the hierarchy",
        setup: &[],
        query: "FROM hr.emp_nest_scalars AS e, e.projects AS p \
                WHERE p LIKE '%Security%' \
                GROUP BY LOWER(p) AS p GROUP AS g \
                SELECT p AS proj_name, \
                  (FROM g AS v SELECT VALUE v.e.name) AS employees",
        expected: r#"{{
            {'proj_name': 'olap security', 'employees': {{'Bob Smith'}}},
            {'proj_name': 'oltp security',
             'employees': {{'Bob Smith', 'Jane Smith'}}}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some(
            "Listing 13 prints original-case project names although the key \
             is LOWER(p), and swaps which project Bob/Jane share relative to \
             Listings 1/3; the expected value here is the mechanical result \
             over the printed data.",
        ),
    });

    cases.push(Case {
        id: "L14",
        section: "V-B",
        title: "the GROUP AS variable holds the captured binding tuples",
        setup: &[],
        query: "FROM hr.emp_nest_scalars AS e, e.projects AS p \
                WHERE p LIKE '%Security%' \
                GROUP BY LOWER(p) AS lp GROUP AS g \
                SELECT VALUE {'key': lp, \
                  'names': (FROM g AS b SELECT VALUE b.e.name), \
                  'originals': (FROM g AS b SELECT VALUE b.p)}",
        expected: r#"{{
            {'key': 'olap security', 'names': {{'Bob Smith'}},
             'originals': {{'OLAP Security'}}},
            {'key': 'oltp security', 'names': {{'Bob Smith', 'Jane Smith'}},
             'originals': {{'OLTP Security', 'OLTP Security'}}}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some("Each group element is the {e: …, p: …} binding tuple."),
    });

    cases.push(Case {
        id: "L15",
        section: "V-C",
        title: "SQL aggregation (implicit group)",
        setup: &[],
        query: "SELECT AVG(e.salary) AS avgsal FROM hr.emp AS e \
                WHERE e.title = 'Engineer'",
        expected: r#"{{ {'avgsal': 90000} }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some("hr.emp rows are synthesized (the paper prints none)."),
    });

    cases.push(Case {
        id: "L16",
        section: "V-C",
        title: "the same aggregation written directly in SQL++ Core",
        setup: &[],
        query: "{{ {'avgsal': COLL_AVG(SELECT VALUE e.salary FROM hr.emp AS e \
                 WHERE e.title = 'Engineer')} }}",
        expected: r#"{{ {'avgsal': 90000} }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some("Runs as a bare expression: full composability."),
    });

    cases.push(Case {
        id: "L17",
        section: "V-C",
        title: "grouped SQL aggregation",
        setup: &[],
        query: "SELECT e.deptno, AVG(e.salary) AS avgsal FROM hr.emp AS e \
                WHERE e.title = 'Engineer' GROUP BY e.deptno",
        expected: r#"{{
            {'deptno': 1, 'avgsal': 85000},
            {'deptno': 2, 'avgsal': 100000}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "L18",
        section: "V-C",
        title: "the grouped aggregation written in Core with GROUP AS",
        setup: &[],
        query: "FROM hr.emp AS e WHERE e.title = 'Engineer' \
                GROUP BY e.deptno AS d GROUP AS g \
                SELECT VALUE {'deptno': d, \
                  'avgsal': COLL_AVG(FROM g AS gi SELECT VALUE gi.e.salary)}",
        expected: r#"{{
            {'deptno': 1, 'avgsal': 85000},
            {'deptno': 2, 'avgsal': 100000}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some(
            "Listing 18 prints `SELECT gi.e.salary` (no VALUE), which would \
             aggregate one-attribute tuples; the runnable Core form uses \
             SELECT VALUE, which is clearly the intent.",
        ),
    });

    cases.push(Case {
        id: "L20",
        section: "VI-A",
        title: "UNPIVOT turns attribute names into data",
        setup: &[],
        query: "SELECT c.\"date\" AS \"date\", sym AS symbol, price AS price \
                FROM closing_prices AS c, UNPIVOT c AS price AT sym \
                WHERE NOT sym = 'date'",
        expected: r#"{{
            {'date': '4/1/2019', 'symbol': 'amzn', 'price': 1900},
            {'date': '4/1/2019', 'symbol': 'goog', 'price': 1120},
            {'date': '4/1/2019', 'symbol': 'fb', 'price': 180},
            {'date': '4/2/2019', 'symbol': 'amzn', 'price': 1902},
            {'date': '4/2/2019', 'symbol': 'goog', 'price': 1119},
            {'date': '4/2/2019', 'symbol': 'fb', 'price': 183}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some("Matches Listing 21 exactly."),
    });

    cases.push(Case {
        id: "L22",
        section: "VI-A",
        title: "aggregating over unpivoted attribute names",
        setup: &[],
        query: "SELECT sym AS symbol, AVG(price) AS avg_price \
                FROM closing_prices c, UNPIVOT c AS price AT sym \
                WHERE NOT sym = 'date' GROUP BY sym",
        expected: r#"{{
            {'symbol': 'amzn', 'avg_price': 1901},
            {'symbol': 'goog', 'avg_price': 1119.5},
            {'symbol': 'fb', 'avg_price': 181.5}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "L24",
        section: "VI-B",
        title: "PIVOT turns a collection into one tuple",
        setup: &[],
        query: "PIVOT sp.price AT sp.symbol FROM today_stock_prices sp",
        expected: r#"{'amzn': 1900, 'goog': 1120, 'fb': 180}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some("Matches Listing 25: the result is a single tuple."),
    });

    cases.push(Case {
        id: "L26",
        section: "VI-B",
        title: "grouping combined with pivoting",
        setup: &[],
        query: "SELECT sp.\"date\" AS \"date\", \
                (PIVOT dp.sp.price AT dp.sp.symbol \
                 FROM dates_prices AS dp) AS prices \
                FROM stock_prices AS sp \
                GROUP BY sp.\"date\" GROUP AS dates_prices",
        expected: r#"{{
            {'date': '4/1/2019',
             'prices': {'amzn': 1900, 'goog': 1120, 'fb': 180}},
            {'date': '4/2/2019',
             'prices': {'amzn': 1902, 'goog': 1119, 'fb': 183}}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some("Matches Listing 28 exactly."),
    });

    // ================= derived kit cases =================

    cases.push(Case {
        id: "K-missing-1",
        section: "IV-B",
        title: "navigation into a missing attribute yields MISSING",
        setup: &[],
        query: "SELECT VALUE e.title IS MISSING FROM hr.emp_missing AS e",
        expected: "{{true, false, false}}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-missing-2",
        section: "IV-B",
        title: "IS NULL is true for both absent values (SQL view)",
        setup: &[],
        query: "SELECT VALUE e.title IS NULL FROM hr.emp_missing AS e",
        expected: "{{true, false, false}}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-missing-3",
        section: "IV-B",
        title: "NULL and MISSING remain distinguishable",
        setup: &[],
        query: "SELECT VALUE {'n': e.title IS NULL, 'm': e.title IS MISSING} \
                FROM hr.emp_null AS e WHERE e.id = 3",
        expected: "{{ {'n': true, 'm': false} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-missing-4",
        section: "IV-B",
        title: "wrongly-typed operands become MISSING (case 2)",
        setup: &[("k.mixed", "{{ {'x': 1}, {'x': 'two'}, {'x': 3} }}")],
        query: "SELECT VALUE (t.x * 2) IS MISSING FROM k.mixed AS t",
        expected: "{{false, true, false}}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some("2 * 'some string' prefers MISSING over an error (§IV-B)."),
    });

    cases.push(Case {
        id: "K-coalesce",
        section: "IV-B",
        title: "COALESCE(MISSING, 2) = 2 in compat mode",
        setup: &[],
        query: "SELECT VALUE COALESCE(e.title, 'none') FROM hr.emp_missing AS e \
                WHERE e.id = 3",
        expected: "{{'none'}}",
        check: Check::BagEqual,
        modes: ModeSpec::CompatOnly,
        note: Some("The §IV-B exception to MISSING propagation."),
    });

    cases.push(Case {
        id: "K-coalesce-composable",
        section: "IV-B",
        title: "COALESCE propagates MISSING in composability mode",
        setup: &[],
        query: "SELECT VALUE COALESCE(e.title, 'none') IS MISSING \
                FROM hr.emp_missing AS e WHERE e.id = 3",
        expected: "{{true}}",
        check: Check::BagEqual,
        modes: ModeSpec::ComposableOnly,
        note: None,
    });

    cases.push(Case {
        id: "K-hetero-1",
        section: "IV",
        title: "heterogeneous collections iterate without schema",
        setup: &[("k.hetero", "{{ 'a string', 42, [1, 2], {'x': 1} }}")],
        query: "SELECT VALUE TYPEOF(v) FROM k.hetero AS v",
        expected: "{{'string', 'integer', 'array', 'tuple'}}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-hetero-2",
        section: "IV",
        title: "Hive-union-style attribute: string or array of strings",
        setup: &[(
            "k.emp_mixed",
            "{{ {'id': 1, 'projects': 'OLTP Security'},
                {'id': 2, 'projects': ['OLAP Security', 'OLTP Security']} }}",
        )],
        query: "SELECT e.id AS id, \
                CASE WHEN e.projects IS ARRAY \
                     THEN CARDINALITY(e.projects) ELSE 1 END AS n \
                FROM k.emp_mixed AS e",
        expected: "{{ {'id': 1, 'n': 1}, {'id': 2, 'n': 2} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some("Listing 5's UNIONTYPE heterogeneity, queried dynamically."),
    });

    cases.push(Case {
        id: "K-compat-guarantee",
        section: "IV-B",
        title: "null-vs-missing compatibility guarantee on a SQL query",
        setup: &[],
        query: "SELECT e.id, e.title AS title FROM hr.emp_null AS e \
                WHERE e.title = 'Manager' OR e.id = 3",
        expected: r#"{{ {'id': 3, 'title': null}, {'id': 4, 'title': 'Manager'} }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some(
            "Companion case K-compat-guarantee-2 runs the same query over \
             emp_missing; §IV-B's guarantee says the results agree modulo \
             null attributes going missing.",
        ),
    });

    cases.push(Case {
        id: "K-compat-guarantee-2",
        section: "IV-B",
        title: "…and the same query over the missing-attribute variant",
        setup: &[],
        query: "SELECT e.id, e.title AS title FROM hr.emp_missing AS e \
                WHERE e.title = 'Manager' OR e.id = 3",
        expected: r#"{{ {'id': 3}, {'id': 4, 'title': 'Manager'} }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-select-value-scalar",
        section: "V-A",
        title: "SELECT VALUE builds collections of non-tuples",
        setup: &[],
        query: "SELECT VALUE e.salary FROM hr.emp AS e WHERE e.deptno = 1",
        expected: "{{90000, 80000}}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-coercion-scalar",
        section: "V-A",
        title: "SQL subquery coerces to a scalar in compat mode",
        setup: &[],
        query: "SELECT VALUE e.name FROM hr.emp AS e \
                WHERE e.salary = (SELECT MAX(e2.salary) AS m FROM hr.emp AS e2)",
        expected: "{{'Eve'}}",
        check: Check::BagEqual,
        modes: ModeSpec::CompatOnly,
        note: None,
    });

    cases.push(Case {
        id: "K-coercion-none",
        section: "V-A",
        title: "the same subquery is a bag in composability mode",
        setup: &[],
        query: "SELECT VALUE e.name FROM hr.emp AS e \
                WHERE e.salary = (SELECT MAX(e2.salary) AS m FROM hr.emp AS e2)",
        expected: "{{}}",
        check: Check::BagEqual,
        modes: ModeSpec::ComposableOnly,
        note: Some(
            "No coercion: a number never equals a bag of tuples, so no row \
             qualifies — exactly the composability-vs-compat trade-off.",
        ),
    });

    cases.push(Case {
        id: "K-in-subquery",
        section: "V-A",
        title: "IN subquery coerces to a collection of scalars",
        setup: &[],
        query: "SELECT VALUE e.name FROM hr.emp AS e \
                WHERE e.deptno IN (SELECT e2.deptno AS d FROM hr.emp AS e2 \
                                   WHERE e2.title = 'Manager')",
        expected: "{{'Carol', 'Dave', 'Eve'}}",
        check: Check::BagEqual,
        modes: ModeSpec::CompatOnly,
        note: None,
    });

    cases.push(Case {
        id: "K-order-limit",
        section: "V",
        title: "ORDER BY / LIMIT / OFFSET compose with the pipeline",
        setup: &[],
        query: "SELECT VALUE e.name FROM hr.emp AS e \
                ORDER BY e.salary DESC LIMIT 2 OFFSET 1",
        expected: "{{'Dave', 'Carol'}}",
        check: Check::OrderedEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-distinct",
        section: "V",
        title: "SELECT DISTINCT VALUE dedupes structurally",
        setup: &[],
        query: "SELECT DISTINCT VALUE e.title FROM hr.emp AS e",
        expected: "{{'Engineer', 'Manager'}}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-count-star",
        section: "V-C",
        title: "COUNT(*) counts group elements",
        setup: &[],
        query: "SELECT e.deptno, COUNT(*) AS n FROM hr.emp AS e GROUP BY e.deptno",
        expected: "{{ {'deptno': 1, 'n': 2}, {'deptno': 2, 'n': 2}, \
                     {'deptno': 3, 'n': 1} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-having",
        section: "V-C",
        title: "HAVING filters groups with rewritten aggregates",
        setup: &[],
        query: "SELECT e.deptno FROM hr.emp AS e GROUP BY e.deptno \
                HAVING COUNT(*) > 1",
        expected: "{{ {'deptno': 1}, {'deptno': 2} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-agg-null",
        section: "V-C",
        title: "aggregates ignore absent values; empty groups yield NULL",
        setup: &[("k.sparse", "{{ {'x': 1}, {'x': null}, {'y': 9} }}")],
        query: "{{ {'cnt': COLL_COUNT(SELECT VALUE t.x FROM k.sparse AS t), \
                   'sum': COLL_SUM(SELECT VALUE t.x FROM k.sparse AS t), \
                   'none': COLL_AVG(SELECT VALUE t.z FROM k.sparse AS t)} }}",
        expected: "{{ {'cnt': 1, 'sum': 1, 'none': null} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-empty-agg",
        section: "V-C",
        title: "SQL aggregation over an empty filter yields one row",
        setup: &[],
        query: "SELECT COUNT(*) AS n, AVG(e.salary) AS a FROM hr.emp AS e \
                WHERE e.title = 'Astronaut'",
        expected: "{{ {'n': 0, 'a': null} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-left-join",
        section: "III",
        title: "LEFT JOIN pads unmatched rows with NULL",
        setup: &[(
            "k.depts",
            "{{ {'dno': 1, 'dname': 'Eng'}, {'dno': 9, 'dname': 'Ghost'} }}",
        )],
        query: "SELECT d.dname AS dname, e.name AS name \
                FROM k.depts AS d LEFT JOIN hr.emp AS e ON e.deptno = d.dno",
        expected: r#"{{
            {'dname': 'Eng', 'name': 'Alice'},
            {'dname': 'Eng', 'name': 'Bob'},
            {'dname': 'Ghost', 'name': null}
        }}"#,
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-union",
        section: "V",
        title: "set operations over value streams",
        setup: &[],
        query: "SELECT VALUE e.deptno FROM hr.emp AS e \
                UNION SELECT VALUE 99 FROM hr.emp AS e2 WHERE e2.deptno = 1",
        expected: "{{1, 2, 3, 99}}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-ungrouped-ref",
        section: "V-C",
        title: "non-grouped column references are rejected (SQL rule)",
        setup: &[],
        query: "SELECT e.name, AVG(e.salary) AS a FROM hr.emp AS e",
        expected: "",
        check: Check::Errors,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-unpivot-scalar",
        section: "VI-A",
        title: "UNPIVOT of a non-tuple coerces permissively",
        setup: &[("k.one", "{{ {'v': 7} }}")],
        query: "SELECT a AS name, v AS val FROM k.one AS t, UNPIVOT t.v AS v AT a",
        expected: "{{ {'name': '_1', 'val': 7} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-pivot-skips-absent-names",
        section: "VI-B",
        title: "PIVOT skips pairs whose name is absent",
        setup: &[(
            "k.pv",
            "{{ {'s': 'a', 'p': 1}, {'p': 2}, {'s': 'c', 'p': 3} }}",
        )],
        query: "PIVOT r.p AT r.s FROM k.pv AS r",
        expected: "{'a': 1, 'c': 3}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-deep-nesting",
        section: "III",
        title: "three levels of left-correlation",
        setup: &[(
            "k.deep",
            "{{ {'id': 1, 'groups': [{'items': [1, 2]}, {'items': [3]}]} }}",
        )],
        query: "SELECT VALUE i FROM k.deep AS d, d.groups AS g, g.items AS i",
        expected: "{{1, 2, 3}}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-window-rank",
        section: "V-B",
        title: "window functions run over document data",
        setup: &[],
        query: "SELECT e.name AS name, \
                RANK() OVER (PARTITION BY e.deptno ORDER BY e.salary DESC) AS rk \
                FROM hr.emp AS e WHERE e.deptno = 1",
        expected: "{{ {'name': 'Alice', 'rk': 1}, {'name': 'Bob', 'rk': 2} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: Some("§V-B: OVER is 'wholly compatible' with SQL++."),
    });

    cases.push(Case {
        id: "K-window-nested",
        section: "V-B",
        title: "windows consume unnested and produce nested data",
        setup: &[],
        query: "SELECT p.name AS project, \
                [e.id, COUNT(*) OVER (PARTITION BY p.name)] AS id_and_teamsize \
                FROM hr.emp_nest_tuples AS e, e.projects AS p \
                WHERE p.name = 'OLTP Security'",
        expected: "{{ {'project': 'OLTP Security', 'id_and_teamsize': [3, 2]}, \
                     {'project': 'OLTP Security', 'id_and_teamsize': [6, 2]} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-rollup",
        section: "V-B",
        title: "ROLLUP subtotals with GROUPING()",
        setup: &[],
        query: "SELECT e.title, GROUPING(e.title) AS total_row, \
                SUM(e.salary) AS payroll \
                FROM hr.emp AS e GROUP BY ROLLUP (e.title)",
        expected: "{{ {'title': 'Engineer', 'total_row': 0, 'payroll': 270000}, \
                     {'title': 'Manager', 'total_row': 0, 'payroll': 250000}, \
                     {'title': null, 'total_row': 1, 'payroll': 520000} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-let",
        section: "V",
        title: "LET bindings compose with the clause pipeline",
        setup: &[],
        query: "FROM hr.emp AS e LET band = e.salary / 50000 \
                WHERE band >= 2 SELECT VALUE {'name': e.name, 'band': band}",
        expected: "{{ {'name': 'Carol', 'band': 2}, {'name': 'Dave', 'band': 2}, \
                     {'name': 'Eve', 'band': 2} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases.push(Case {
        id: "K-at-position",
        section: "III",
        title: "AT binds array positions",
        setup: &[("k.arr", "{{ {'xs': ['a', 'b', 'c']} }}")],
        query: "SELECT VALUE {'i': i, 'x': x} FROM k.arr AS t, t.xs AS x AT i",
        expected: "{{ {'i': 0, 'x': 'a'}, {'i': 1, 'x': 'b'}, {'i': 2, 'x': 'c'} }}",
        check: Check::BagEqual,
        modes: ModeSpec::Both,
        note: None,
    });

    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_ids_are_unique() {
        let cases = corpus();
        let mut ids: Vec<&str> = cases.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate case ids");
    }

    #[test]
    fn fixtures_parse_as_pnotation() {
        for (name, text) in standard_fixtures() {
            sqlpp_formats::pnotation::from_pnotation(text)
                .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
        }
        for case in corpus() {
            for (name, text) in case.setup {
                sqlpp_formats::pnotation::from_pnotation(text)
                    .unwrap_or_else(|e| panic!("case {} fixture {name}: {e}", case.id));
            }
            if case.check != Check::Errors {
                sqlpp_formats::pnotation::from_pnotation(case.expected)
                    .unwrap_or_else(|e| panic!("case {} expected: {e}", case.id));
            }
        }
    }
}
