//! The conformance runner: exercises an [`Engine`] against the corpus in
//! one or both modes and produces a report — the "shared 'compatibility
//! kit' for use in checking for compliance with Core SQL++ in both its
//! composability mode and its SQL compatibility mode" that the paper's
//! conclusion calls for.

use sqlpp::{CompatMode, Engine, SessionConfig, TypingMode};
use sqlpp_formats::pnotation::from_pnotation;
use sqlpp_value::cmp::deep_eq;
use sqlpp_value::Value;

use crate::corpus::{corpus, standard_fixtures, Case, Check, ModeSpec};

/// Outcome of one case in one mode.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case id.
    pub id: String,
    /// Which mode ran.
    pub mode: CompatMode,
    /// Pass/fail.
    pub passed: bool,
    /// Rendered actual result (or error text).
    pub actual: String,
    /// Rendered expectation.
    pub expected: String,
    /// Case title.
    pub title: String,
    /// Wall time of the query execution, in nanoseconds.
    pub elapsed_ns: u64,
}

/// A full conformance report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All case results.
    pub results: Vec<CaseResult>,
}

impl Report {
    /// Number of passing results.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.passed).count()
    }

    /// Number of failing results.
    pub fn failed(&self) -> usize {
        self.results.len() - self.passed()
    }

    /// Renders a plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("SQL++ compatibility kit report\n");
        out.push_str("==============================\n\n");
        for r in &self.results {
            let mode = match r.mode {
                CompatMode::SqlCompat => "sql-compat ",
                CompatMode::Composable => "composable ",
            };
            let timing = fmt_case_ns(r.elapsed_ns);
            if r.passed {
                out.push_str(&format!(
                    "PASS [{mode}] {:<24} {:>9}  {}\n",
                    r.id, timing, r.title
                ));
            } else {
                out.push_str(&format!(
                    "FAIL [{mode}] {:<24} {:>9}  {}\n",
                    r.id, timing, r.title
                ));
                out.push_str(&format!("      expected: {}\n", r.expected));
                out.push_str(&format!("      actual:   {}\n", r.actual));
            }
        }
        out.push_str(&format!(
            "\n{} passed, {} failed, {} total\n",
            self.passed(),
            self.failed(),
            self.results.len()
        ));
        out
    }
}

/// Builds an engine pre-loaded with the standard fixtures.
pub fn fixture_engine(compat: CompatMode, typing: TypingMode) -> Engine {
    let engine = Engine::new().with_config(SessionConfig {
        compat,
        typing,
        ..SessionConfig::default()
    });
    for (name, text) in standard_fixtures() {
        engine
            .load_pnotation(name, text)
            .expect("standard fixtures parse");
    }
    engine
}

/// Runs the complete corpus in both modes.
pub fn run_all(typing: TypingMode) -> Report {
    let mut report = Report::default();
    for mode in [CompatMode::SqlCompat, CompatMode::Composable] {
        let engine = fixture_engine(mode, typing);
        for case in corpus() {
            let applicable = match case.modes {
                ModeSpec::Both => true,
                ModeSpec::CompatOnly => mode == CompatMode::SqlCompat,
                ModeSpec::ComposableOnly => mode == CompatMode::Composable,
            };
            if !applicable {
                continue;
            }
            report.results.push(run_case(&engine, &case, mode));
        }
    }
    report
}

/// Runs one case against an engine.
pub fn run_case(engine: &Engine, case: &Case, mode: CompatMode) -> CaseResult {
    for (name, text) in case.setup {
        engine
            .load_pnotation(name, text)
            .unwrap_or_else(|e| panic!("case {} fixture {name}: {e}", case.id));
    }
    let started = std::time::Instant::now();
    let outcome = engine.run_str(case.query);
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    let (passed, actual) = match (&outcome, case.check) {
        (Err(e), Check::Errors) => (true, format!("error (expected): {e}")),
        // Unexpected failure: render the full caret-underlined report so
        // the FAIL block shows every diagnostic, not just the first.
        (Err(e), _) => (
            false,
            sqlpp::render_error_report(case.query, e)
                .trim_end()
                .replace('\n', "\n                "),
        ),
        (Ok(_), Check::Errors) => (false, "query unexpectedly succeeded".to_string()),
        (Ok(v), check) => {
            let expected: Value = from_pnotation(case.expected).expect("corpus expected parses");
            let ok = match check {
                Check::BagEqual => deep_eq(v, &expected),
                Check::OrderedEqual => ordered_eq(v, &expected),
                Check::Errors => unreachable!(),
            };
            (ok, v.to_string())
        }
    };
    CaseResult {
        id: case.id.to_string(),
        mode,
        passed,
        actual,
        expected: if case.check == Check::Errors {
            "<error>".to_string()
        } else {
            from_pnotation(case.expected)
                .map(|v| v.to_string())
                .unwrap_or_default()
        },
        title: case.title.to_string(),
        elapsed_ns,
    }
}

/// Compact per-case timing for the report column.
fn fmt_case_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

/// Order-sensitive comparison: bags compare element-by-element in order
/// (used for ORDER BY cases, where the bag's element order is the sorted
/// order).
fn ordered_eq(a: &Value, b: &Value) -> bool {
    match (a.as_elements(), b.as_elements()) {
        (Some(x), Some(y)) => x.len() == y.len() && x.iter().zip(y).all(|(p, q)| deep_eq(p, q)),
        _ => deep_eq(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_whole_corpus_passes_in_both_modes() {
        let report = run_all(TypingMode::Permissive);
        let failures: Vec<&CaseResult> = report.results.iter().filter(|r| !r.passed).collect();
        assert!(
            failures.is_empty(),
            "{} failures:\n{}",
            failures.len(),
            failures
                .iter()
                .map(|f| format!(
                    "{} [{:?}]\n  expected {}\n  actual   {}",
                    f.id, f.mode, f.expected, f.actual
                ))
                .collect::<Vec<_>>()
                .join("\n")
        );
        // Sanity: a meaningful number of checks actually ran.
        assert!(report.results.len() >= 40, "{}", report.results.len());
    }
}
