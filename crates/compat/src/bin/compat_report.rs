//! Prints the SQL++ compatibility-kit report for this engine.

use sqlpp::TypingMode;

fn main() {
    let report = sqlpp_compat_kit::run_all(TypingMode::Permissive);
    print!("{}", report.render());
    if report.failed() > 0 {
        std::process::exit(1);
    }
}
