//! Syntax errors with source positions.
//!
//! [`SyntaxError`] is the strict-mode (`Result`-shaped) face of the
//! structured [`Diagnostic`] model: every error wraps exactly one
//! diagnostic, so the single-error and multi-error paths report
//! identical spans, codes and messages.

use std::fmt;

use crate::diag::{codes, Diagnostic};
use crate::token::Span;

/// A lexing or parsing error, carrying the offending span.
///
/// The diagnostic is boxed so the error arm of every
/// `Result<_, SyntaxError>` in the recursive-descent parser stays
/// pointer-sized — deep descent is bounded by stack, and fat error
/// payloads multiply across every frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    diag: Box<Diagnostic>,
}

impl SyntaxError {
    /// Creates an error at the given span (generic `E_EXPECTED` code).
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SyntaxError {
            diag: Box::new(Diagnostic::new(codes::E_EXPECTED, message, span)),
        }
    }

    /// Wraps a structured diagnostic.
    pub fn from_diagnostic(diag: Diagnostic) -> Self {
        SyntaxError {
            diag: Box::new(diag),
        }
    }

    /// The human-readable message (without position).
    pub fn message(&self) -> &str {
        &self.diag.message
    }

    /// The stable diagnostic code (`E_EXPECTED`, `E_DEPTH`, …).
    pub fn code(&self) -> &'static str {
        self.diag.code
    }

    /// Where the error occurred.
    pub fn span(&self) -> Span {
        self.diag.span
    }

    /// The wrapped structured diagnostic.
    pub fn diagnostic(&self) -> &Diagnostic {
        &self.diag
    }

    /// Consumes the error, yielding the diagnostic.
    pub fn into_diagnostic(self) -> Diagnostic {
        *self.diag
    }

    /// Renders the error with a caret line pointing into `src`.
    pub fn render(&self, src: &str) -> String {
        self.diag.render(src)
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error: {} at {}",
            self.diag.message, self.diag.span
        )
    }
}

impl std::error::Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_column() {
        let err = SyntaxError::new(
            "unexpected character",
            Span {
                start: 7,
                end: 8,
                line: 1,
                column: 8,
            },
        );
        let rendered = err.render("SELECT #");
        assert!(rendered.contains("SELECT #"));
        assert!(rendered.lines().last().unwrap().trim_end().ends_with('^'));
        assert!(rendered.contains("line 1, column 8"));
        assert_eq!(err.code(), "E_EXPECTED");
    }
}
