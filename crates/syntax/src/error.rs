//! Syntax errors with source positions.

use std::fmt;

use crate::token::Span;

/// A lexing or parsing error, carrying the offending span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    message: String,
    span: Span,
}

impl SyntaxError {
    /// Creates an error at the given span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SyntaxError {
            message: message.into(),
            span,
        }
    }

    /// The human-readable message (without position).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders the error with a caret line pointing into `src`.
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("syntax error: {} at {}\n", self.message, self.span);
        if let Some(line_text) = src.lines().nth(self.span.line as usize - 1) {
            out.push_str("  | ");
            out.push_str(line_text);
            out.push('\n');
            out.push_str("  | ");
            for _ in 1..self.span.column {
                out.push(' ');
            }
            out.push('^');
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error: {} at {}", self.message, self.span)
    }
}

impl std::error::Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_column() {
        let err = SyntaxError::new(
            "unexpected character",
            Span {
                start: 7,
                end: 8,
                line: 1,
                column: 8,
            },
        );
        let rendered = err.render("SELECT #");
        assert!(rendered.contains("SELECT #"));
        assert!(rendered.lines().last().unwrap().trim_end().ends_with('^'));
        assert!(rendered.contains("line 1, column 8"));
    }
}
