//! Tokens and source positions for the SQL++ lexer.

use std::fmt;

/// A half-open byte range into the source text, with 1-based line/column of
/// its start for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub column: u32,
}

impl Span {
    /// Joins two spans into the smallest span covering both.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            column: self.column,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// Keywords recognized case-insensitively. The set covers SQL-92's query
/// subset plus the SQL++ extensions (VALUE, MISSING, GROUP AS, PIVOT,
/// UNPIVOT, AT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // Names are the keywords themselves.
pub enum Keyword {
    All,
    Analyze,
    And,
    Any,
    As,
    Asc,
    At,
    Between,
    By,
    Case,
    Cast,
    Create,
    Cross,
    Delete,
    Desc,
    Distinct,
    Else,
    End,
    Escape,
    Every,
    Except,
    Exists,
    Explain,
    False,
    First,
    From,
    Full,
    Group,
    Having,
    In,
    Inner,
    Insert,
    Intersect,
    Into,
    Is,
    Join,
    Last,
    Lateral,
    Left,
    Like,
    Limit,
    Missing,
    Not,
    Null,
    Nulls,
    Offset,
    On,
    Or,
    Order,
    Outer,
    Over,
    Partition,
    Pivot,
    Right,
    Select,
    Set,
    Some,
    Table,
    Then,
    True,
    Union,
    Unpivot,
    Update,
    Value,
    Values,
    When,
    Where,
    With,
}

impl Keyword {
    /// Looks up a keyword from an identifier-shaped word (ASCII
    /// case-insensitive).
    pub fn lookup(word: &str) -> Option<Keyword> {
        use Keyword::*;
        // Uppercase on the stack for the common short case.
        let mut buf = [0u8; 12];
        if word.len() > buf.len() {
            return None;
        }
        for (i, b) in word.bytes().enumerate() {
            buf[i] = b.to_ascii_uppercase();
        }
        // `Keyword::Some` shadows `Option::Some` under the glob import.
        Option::Some(match &buf[..word.len()] {
            b"ALL" => All,
            b"ANALYZE" => Analyze,
            b"AND" => And,
            b"ANY" => Any,
            b"AS" => As,
            b"ASC" => Asc,
            b"AT" => At,
            b"BETWEEN" => Between,
            b"BY" => By,
            b"CASE" => Case,
            b"CAST" => Cast,
            b"CREATE" => Create,
            b"DELETE" => Delete,
            b"CROSS" => Cross,
            b"DESC" => Desc,
            b"DISTINCT" => Distinct,
            b"ELSE" => Else,
            b"END" => End,
            b"ESCAPE" => Escape,
            b"EVERY" => Every,
            b"EXCEPT" => Except,
            b"EXISTS" => Exists,
            b"EXPLAIN" => Explain,
            b"FALSE" => False,
            b"FIRST" => First,
            b"FROM" => From,
            b"FULL" => Full,
            b"GROUP" => Group,
            b"HAVING" => Having,
            b"IN" => In,
            b"INNER" => Inner,
            b"INSERT" => Insert,
            b"INTERSECT" => Intersect,
            b"INTO" => Into,
            b"IS" => Is,
            b"JOIN" => Join,
            b"LAST" => Last,
            b"LATERAL" => Lateral,
            b"LEFT" => Left,
            b"LIKE" => Like,
            b"LIMIT" => Limit,
            b"MISSING" => Missing,
            b"NOT" => Not,
            b"NULL" => Null,
            b"NULLS" => Nulls,
            b"OFFSET" => Offset,
            b"ON" => On,
            b"OR" => Or,
            b"ORDER" => Order,
            b"OUTER" => Outer,
            b"OVER" => Over,
            b"PARTITION" => Partition,
            b"PIVOT" => Pivot,
            b"RIGHT" => Right,
            b"SELECT" => Select,
            b"SET" => Set,
            b"SOME" => Some,
            b"TABLE" => Table,
            b"THEN" => Then,
            b"TRUE" => True,
            b"UNION" => Union,
            b"UNPIVOT" => Unpivot,
            b"UPDATE" => Update,
            b"VALUE" => Value,
            b"VALUES" => Values,
            b"WHEN" => When,
            b"WHERE" => Where,
            b"WITH" => With,
            _ => return None,
        })
    }

    /// The canonical (upper-case) spelling.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            All => "ALL",
            Analyze => "ANALYZE",
            And => "AND",
            Any => "ANY",
            As => "AS",
            Asc => "ASC",
            At => "AT",
            Between => "BETWEEN",
            By => "BY",
            Case => "CASE",
            Cast => "CAST",
            Create => "CREATE",
            Delete => "DELETE",
            Cross => "CROSS",
            Desc => "DESC",
            Distinct => "DISTINCT",
            Else => "ELSE",
            End => "END",
            Escape => "ESCAPE",
            Every => "EVERY",
            Except => "EXCEPT",
            Exists => "EXISTS",
            Explain => "EXPLAIN",
            False => "FALSE",
            First => "FIRST",
            From => "FROM",
            Full => "FULL",
            Group => "GROUP",
            Having => "HAVING",
            In => "IN",
            Inner => "INNER",
            Insert => "INSERT",
            Intersect => "INTERSECT",
            Into => "INTO",
            Is => "IS",
            Join => "JOIN",
            Last => "LAST",
            Lateral => "LATERAL",
            Left => "LEFT",
            Like => "LIKE",
            Limit => "LIMIT",
            Missing => "MISSING",
            Not => "NOT",
            Null => "NULL",
            Nulls => "NULLS",
            Offset => "OFFSET",
            On => "ON",
            Or => "OR",
            Order => "ORDER",
            Outer => "OUTER",
            Over => "OVER",
            Partition => "PARTITION",
            Pivot => "PIVOT",
            Right => "RIGHT",
            Select => "SELECT",
            Set => "SET",
            Some => "SOME",
            Table => "TABLE",
            Then => "THEN",
            True => "TRUE",
            Union => "UNION",
            Unpivot => "UNPIVOT",
            Update => "UPDATE",
            Value => "VALUE",
            Values => "VALUES",
            When => "WHEN",
            Where => "WHERE",
            With => "WITH",
        }
    }
}

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A reserved word.
    Keyword(Keyword),
    /// A regular identifier (case preserved; matching is case-sensitive as
    /// in the paper's examples, which rely on exact attribute names).
    Ident(String),
    /// A delimited identifier: `"date"`.
    QuotedIdent(String),
    /// A string literal: `'Bob Smith'` (SQL quoting, `''` escapes a quote).
    Str(String),
    /// An integer literal that fits an `i64`.
    Int(i64),
    /// A non-integral or exponent-bearing numeric literal, kept as text so
    /// the semantic layer can choose decimal vs float.
    Number(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `||` (string concatenation)
    Concat,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `{{` (bag constructor open)
    LBagBrace,
    /// `}}` (bag constructor close)
    RBagBrace,
    /// `<<` (alternative bag open)
    LBagAngle,
    /// `>>` (alternative bag close)
    RBagAngle,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `?` (positional parameter)
    Question,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Keyword(k) => write!(f, "{}", k.as_str()),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::QuotedIdent(s) => write!(f, "\"{s}\""),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Eq => write!(f, "="),
            Tok::NotEq => write!(f, "<>"),
            Tok::Lt => write!(f, "<"),
            Tok::LtEq => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::GtEq => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Concat => write!(f, "||"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBagBrace => write!(f, "{{{{"),
            Tok::RBagBrace => write!(f, "}}}}"),
            Tok::LBagAngle => write!(f, "<<"),
            Tok::RBagAngle => write!(f, ">>"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Colon => write!(f, ":"),
            Tok::Semicolon => write!(f, ";"),
            Tok::Question => write!(f, "?"),
            Tok::Eof => write!(f, "<end of input>"),
        }
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::lookup("select"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("UNPIVOT"), Some(Keyword::Unpivot));
        assert_eq!(Keyword::lookup("emp"), None);
        assert_eq!(Keyword::lookup("a_very_long_identifier_name"), None);
    }

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Select,
            Keyword::Value,
            Keyword::Missing,
            Keyword::Pivot,
            Keyword::Lateral,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn span_join() {
        let a = Span {
            start: 2,
            end: 5,
            line: 1,
            column: 3,
        };
        let b = Span {
            start: 8,
            end: 12,
            line: 2,
            column: 1,
        };
        let j = a.to(b);
        assert_eq!((j.start, j.end), (2, 12));
        assert_eq!((j.line, j.column), (1, 3));
    }
}
