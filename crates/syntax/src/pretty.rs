//! AST → SQL++ text. The printer emits canonical SQL++ that re-parses to
//! the same AST (round-trip property, tested here and with proptest at the
//! workspace level). The original clause order ([`SelectPlacement`]) is
//! preserved.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a statement.
pub fn print_statement(stmt: &Statement) -> String {
    match stmt {
        Statement::Query(q) => print_query(q),
        Statement::CreateTable(ct) => print_create_table(ct),
        Statement::Insert(ins) => {
            let mut s = format!("INSERT INTO {} ", ins.target.join("."));
            match &ins.source {
                InsertSource::Value(e) => {
                    s.push_str("VALUE ");
                    s.push_str(&print_expr(e));
                }
                InsertSource::Query(q) => s.push_str(&print_query(q)),
            }
            s
        }
        Statement::Delete(del) => {
            let mut s = format!("DELETE FROM {}", del.target.join("."));
            if let Some(a) = &del.alias {
                let _ = write!(s, " AS {}", ident(a));
            }
            if let Some(w) = &del.where_clause {
                let _ = write!(s, " WHERE {}", print_expr(w));
            }
            s
        }
        Statement::Update(up) => {
            let mut s = format!("UPDATE {}", up.target.join("."));
            if let Some(a) = &up.alias {
                let _ = write!(s, " AS {}", ident(a));
            }
            s.push_str(" SET ");
            for (i, (path, value)) in up.assignments.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{} = {}", print_expr(path), print_expr(value));
            }
            if let Some(w) = &up.where_clause {
                let _ = write!(s, " WHERE {}", print_expr(w));
            }
            s
        }
        Statement::Explain { analyze, query } => {
            let mut s = String::from("EXPLAIN ");
            if *analyze {
                s.push_str("ANALYZE ");
            }
            s.push_str(&print_query(query));
            s
        }
    }
}

/// Renders a query.
pub fn print_query(q: &Query) -> String {
    let mut s = String::new();
    write_query(q, &mut s);
    s
}

/// Renders an expression.
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(e, 0, &mut s);
    s
}

fn print_create_table(ct: &CreateTable) -> String {
    let mut s = String::new();
    s.push_str("CREATE TABLE ");
    s.push_str(&ct.name.join("."));
    s.push_str(" (");
    for (i, (col, ty)) in ct.columns.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{col} ");
        write_type(ty, &mut s);
    }
    s.push(')');
    s
}

fn write_type(ty: &TypeExpr, out: &mut String) {
    match ty {
        TypeExpr::Named(n) => out.push_str(n),
        TypeExpr::Array(inner) => {
            out.push_str("ARRAY<");
            write_type(inner, out);
            out.push('>');
        }
        TypeExpr::Bag(inner) => {
            out.push_str("BAG<");
            write_type(inner, out);
            out.push('>');
        }
        TypeExpr::Struct(fields) => {
            out.push_str("STRUCT<");
            for (i, (name, fty)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{name}: ");
                write_type(fty, out);
            }
            out.push('>');
        }
        TypeExpr::Union(alts) => {
            out.push_str("UNIONTYPE<");
            for (i, alt) in alts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_type(alt, out);
            }
            out.push('>');
        }
    }
}

fn write_query(q: &Query, out: &mut String) {
    if !q.ctes.is_empty() {
        out.push_str("WITH ");
        for (i, cte) in q.ctes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{} AS (", ident(&cte.name));
            write_query(&cte.query, out);
            out.push(')');
        }
        out.push(' ');
    }
    write_set_expr(&q.body, out);
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, item) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(&item.expr, 0, out);
            if item.desc {
                out.push_str(" DESC");
            }
            match item.nulls_first {
                Some(true) => out.push_str(" NULLS FIRST"),
                Some(false) => out.push_str(" NULLS LAST"),
                None => {}
            }
        }
    }
    if let Some(limit) = &q.limit {
        out.push_str(" LIMIT ");
        write_expr(limit, 0, out);
    }
    if let Some(offset) = &q.offset {
        out.push_str(" OFFSET ");
        write_expr(offset, 0, out);
    }
}

fn write_set_expr(se: &SetExpr, out: &mut String) {
    match se {
        SetExpr::Block(b) => write_block(b, out),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            maybe_paren_set(left, out);
            out.push(' ');
            out.push_str(match op {
                SetOp::Union => "UNION",
                SetOp::Intersect => "INTERSECT",
                SetOp::Except => "EXCEPT",
            });
            if *all {
                out.push_str(" ALL");
            }
            out.push(' ');
            maybe_paren_set(right, out);
        }
    }
}

fn maybe_paren_set(se: &SetExpr, out: &mut String) {
    match se {
        SetExpr::Block(b) => write_block(b, out),
        SetExpr::SetOp { .. } => {
            out.push('(');
            write_set_expr(se, out);
            out.push(')');
        }
    }
}

fn write_block(b: &QueryBlock, out: &mut String) {
    let write_select = |out: &mut String| match &b.select {
        SelectClause::Select { quantifier, items } => {
            out.push_str("SELECT ");
            if *quantifier == SetQuantifier::Distinct {
                out.push_str("DISTINCT ");
            }
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match item {
                    SelectItem::Wildcard => out.push('*'),
                    SelectItem::QualifiedWildcard(v) => {
                        let _ = write!(out, "{}.*", ident(v));
                    }
                    SelectItem::Expr { expr, alias } => {
                        write_expr(expr, 0, out);
                        if let Some(a) = alias {
                            let _ = write!(out, " AS {}", ident(a));
                        }
                    }
                }
            }
        }
        SelectClause::SelectValue { quantifier, expr } => {
            out.push_str("SELECT ");
            if *quantifier == SetQuantifier::Distinct {
                out.push_str("DISTINCT ");
            }
            out.push_str("VALUE ");
            write_expr(expr, 0, out);
        }
        SelectClause::Pivot { value, name } => {
            out.push_str("PIVOT ");
            write_expr(value, 0, out);
            out.push_str(" AT ");
            write_expr(name, 0, out);
        }
    };
    let write_tail = |out: &mut String, leading_space: bool| {
        let mut first = !leading_space;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(' ');
            }
        };
        if !b.from.is_empty() {
            sep(out);
            out.push_str("FROM ");
            for (i, item) in b.from.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_from_item(item, out);
            }
        }
        if !b.lets.is_empty() {
            sep(out);
            out.push_str("LET ");
            for (i, l) in b.lets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} = ", ident(&l.name));
                write_expr(&l.expr, 0, out);
            }
        }
        if let Some(w) = &b.where_clause {
            sep(out);
            out.push_str("WHERE ");
            write_expr(w, 0, out);
        }
        if let Some(gb) = &b.group_by {
            sep(out);
            out.push_str("GROUP BY ");
            let write_keys = |out: &mut String, keys: &[GroupKeyExpr]| {
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(&k.expr, 0, out);
                    if let Some(a) = &k.alias {
                        let _ = write!(out, " AS {}", ident(a));
                    }
                }
            };
            match &gb.modifier {
                GroupModifier::Plain => write_keys(out, &gb.keys),
                GroupModifier::Rollup => {
                    out.push_str("ROLLUP (");
                    write_keys(out, &gb.keys);
                    out.push(')');
                }
                GroupModifier::Cube => {
                    out.push_str("CUBE (");
                    write_keys(out, &gb.keys);
                    out.push(')');
                }
                GroupModifier::GroupingSets(sets) => {
                    out.push_str("GROUPING SETS (");
                    for (i, set) in sets.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push('(');
                        for (j, idx) in set.iter().enumerate() {
                            if j > 0 {
                                out.push_str(", ");
                            }
                            let k = &gb.keys[*idx];
                            write_expr(&k.expr, 0, out);
                            if let Some(a) = &k.alias {
                                let _ = write!(out, " AS {}", ident(a));
                            }
                        }
                        out.push(')');
                    }
                    out.push(')');
                }
            }
            if let Some(g) = &gb.group_as {
                let _ = write!(out, " GROUP AS {}", ident(g));
            }
        }
        if let Some(h) = &b.having {
            sep(out);
            out.push_str("HAVING ");
            write_expr(h, 0, out);
        }
    };
    match b.placement {
        SelectPlacement::Leading => {
            write_select(out);
            write_tail(out, true);
        }
        SelectPlacement::Trailing => {
            write_tail(out, false);
            out.push(' ');
            write_select(out);
        }
    }
}

fn write_from_item(item: &FromItem, out: &mut String) {
    match item {
        FromItem::Collection {
            expr,
            as_var,
            at_var,
        } => {
            write_expr(expr, 0, out);
            if let Some(v) = as_var {
                let _ = write!(out, " AS {}", ident(v));
            }
            if let Some(v) = at_var {
                let _ = write!(out, " AT {}", ident(v));
            }
        }
        FromItem::Unpivot {
            expr,
            value_var,
            name_var,
        } => {
            out.push_str("UNPIVOT ");
            write_expr(expr, 0, out);
            let _ = write!(out, " AS {} AT {}", ident(value_var), ident(name_var));
        }
        FromItem::Join {
            kind,
            left,
            right,
            on,
        } => {
            write_from_item(left, out);
            out.push_str(match kind {
                JoinKind::Inner => " INNER JOIN ",
                JoinKind::Left => " LEFT OUTER JOIN ",
                JoinKind::Right => " RIGHT OUTER JOIN ",
                JoinKind::Full => " FULL OUTER JOIN ",
                JoinKind::Cross => " CROSS JOIN ",
            });
            write_from_item(right, out);
            if let Some(on) = on {
                out.push_str(" ON ");
                write_expr(on, 0, out);
            }
        }
    }
}

/// Identifier quoting: emit bare when it is a safe regular identifier that
/// is not a keyword; otherwise delimit with double quotes.
fn ident(name: &str) -> String {
    let safe = !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'$')
        && !name.as_bytes()[0].is_ascii_digit()
        && crate::token::Keyword::lookup(name).is_none();
    if safe {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        match c {
            '\'' => out.push_str("''"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('\'');
    out
}

/// Operator precedence for minimal parenthesization. Matches the parser's
/// levels: OR(1) < AND(2) < NOT(3) < cmp(4) < add(5) < mul(6) < unary(7).
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
        BinOp::Add | BinOp::Sub | BinOp::Concat => 5,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
    }
}

fn write_expr(e: &Expr, min_prec: u8, out: &mut String) {
    match e {
        Expr::Lit(lit) => match lit {
            Lit::Null => out.push_str("NULL"),
            Lit::Missing => out.push_str("MISSING"),
            Lit::Bool(true) => out.push_str("TRUE"),
            Lit::Bool(false) => out.push_str("FALSE"),
            Lit::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Lit::Decimal(d) => {
                let _ = write!(out, "{d}");
                if d.scale() == 0 {
                    // Keep decimal-ness on round-trip.
                    out.push_str(".0");
                }
            }
            Lit::Float(f) => {
                // Floats must re-parse as floats, so force exponent form
                // (plain fractions parse as exact decimals). NaN/inf use
                // the backtick escape hatch.
                if f.is_nan() {
                    out.push_str("`nan`");
                } else if f.is_infinite() {
                    out.push_str(if *f > 0.0 { "`+inf`" } else { "`-inf`" });
                } else {
                    let text = format!("{f}");
                    out.push_str(&text);
                    if !text.contains(['e', 'E']) {
                        out.push_str("e0");
                    }
                }
            }
            Lit::Str(s) => out.push_str(&escape_str(s)),
        },
        Expr::Path { head, steps } => {
            out.push_str(&ident(head));
            for step in steps {
                match step {
                    PathStep::Attr(a) => {
                        out.push('.');
                        out.push_str(&ident(a));
                    }
                    PathStep::Index(i) => {
                        out.push('[');
                        write_expr(i, 0, out);
                        out.push(']');
                    }
                }
            }
        }
        Expr::Param(_) => out.push('?'),
        Expr::Bin { op, left, right } => {
            let p = prec(*op);
            let need = p < min_prec;
            if need {
                out.push('(');
            }
            write_expr(left, p, out);
            let _ = write!(out, " {} ", op.as_str());
            // Right side binds one tighter (left-associative operators).
            write_expr(right, p + 1, out);
            if need {
                out.push(')');
            }
        }
        Expr::Un { op, expr } => {
            match op {
                UnOp::Not => {
                    let need = 3 < min_prec;
                    if need {
                        out.push('(');
                    }
                    out.push_str("NOT ");
                    write_expr(expr, 3, out);
                    if need {
                        out.push(')');
                    }
                    return;
                }
                UnOp::Neg => out.push('-'),
                UnOp::Pos => out.push('+'),
            }
            write_expr(expr, 7, out);
        }
        Expr::Like {
            expr,
            pattern,
            escape,
            negated,
        } => {
            write_expr(expr, 5, out);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" LIKE ");
            write_expr(pattern, 5, out);
            if let Some(esc) = escape {
                out.push_str(" ESCAPE ");
                write_expr(esc, 5, out);
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            write_expr(expr, 5, out);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" BETWEEN ");
            write_expr(low, 5, out);
            out.push_str(" AND ");
            write_expr(high, 5, out);
        }
        Expr::In { expr, rhs, negated } => {
            write_expr(expr, 5, out);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN ");
            match rhs.as_ref() {
                InRhs::List(items) => {
                    out.push('(');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        write_expr(item, 0, out);
                    }
                    out.push(')');
                }
                InRhs::Expr(e) => write_expr(e, 5, out),
            }
        }
        Expr::Is {
            expr,
            test,
            negated,
        } => {
            write_expr(expr, 5, out);
            out.push_str(" IS ");
            if *negated {
                out.push_str("NOT ");
            }
            match test {
                IsTest::Null => out.push_str("NULL"),
                IsTest::Missing => out.push_str("MISSING"),
                IsTest::Type(t) => out.push_str(t),
            }
        }
        Expr::Case {
            operand,
            arms,
            else_expr,
        } => {
            out.push_str("CASE");
            if let Some(op) = operand {
                out.push(' ');
                write_expr(op, 0, out);
            }
            for (when, then) in arms {
                out.push_str(" WHEN ");
                write_expr(when, 0, out);
                out.push_str(" THEN ");
                write_expr(then, 0, out);
            }
            if let Some(els) = else_expr {
                out.push_str(" ELSE ");
                write_expr(els, 0, out);
            }
            out.push_str(" END");
        }
        Expr::Call {
            name,
            args,
            distinct,
            star,
        } => {
            // Internal navigation pseudo-functions print as postfix syntax.
            if name == "$PATH" && args.len() == 2 {
                write_expr(&args[0], u8::MAX, out);
                if let Expr::Lit(Lit::Str(a)) = &args[1] {
                    out.push('.');
                    out.push_str(&ident(a));
                    return;
                }
            }
            if name == "$INDEX" && args.len() == 2 {
                write_expr(&args[0], u8::MAX, out);
                out.push('[');
                write_expr(&args[1], 0, out);
                out.push(']');
                return;
            }
            out.push_str(name);
            out.push('(');
            if *star {
                out.push('*');
            } else {
                if *distinct {
                    out.push_str("DISTINCT ");
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(a, 0, out);
                }
            }
            out.push(')');
        }
        Expr::Window {
            func,
            args,
            star,
            partition_by,
            order_by,
        } => {
            out.push_str(func);
            out.push('(');
            if *star {
                out.push('*');
            } else {
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(a, 0, out);
                }
            }
            out.push_str(") OVER (");
            if !partition_by.is_empty() {
                out.push_str("PARTITION BY ");
                for (i, p) in partition_by.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(p, 0, out);
                }
            }
            if !order_by.is_empty() {
                if !partition_by.is_empty() {
                    out.push(' ');
                }
                out.push_str("ORDER BY ");
                for (i, item) in order_by.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(&item.expr, 0, out);
                    if item.desc {
                        out.push_str(" DESC");
                    }
                    match item.nulls_first {
                        Some(true) => out.push_str(" NULLS FIRST"),
                        Some(false) => out.push_str(" NULLS LAST"),
                        None => {}
                    }
                }
            }
            out.push(')');
        }
        Expr::Cast { expr, ty } => {
            out.push_str("CAST(");
            write_expr(expr, 0, out);
            out.push_str(" AS ");
            write_type(ty, out);
            out.push(')');
        }
        Expr::Exists(q) => {
            out.push_str("EXISTS (");
            write_query(q, out);
            out.push(')');
        }
        Expr::Subquery(q) => {
            out.push('(');
            write_query(q, out);
            out.push(')');
        }
        Expr::TupleCtor(pairs) => {
            out.push('{');
            for (i, (name, value)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(name, 0, out);
                out.push_str(": ");
                write_expr(value, 0, out);
            }
            out.push('}');
        }
        Expr::ArrayCtor(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(item, 0, out);
            }
            out.push(']');
        }
        Expr::BagCtor(items) => {
            out.push_str("<<");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(item, 0, out);
            }
            out.push_str(">>");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_query, parse_statement};

    fn rt_query(src: &str) {
        let q1 = parse_query(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let printed = print_query(&q1);
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {}\nprinted: {printed}", e));
        assert_eq!(q1, q2, "round trip changed AST for: {printed}");
    }

    fn rt_expr(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = print_expr(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted: {printed}"));
        assert_eq!(e1, e2, "round trip changed AST for: {printed}");
    }

    #[test]
    fn round_trips_the_paper_queries() {
        rt_query(
            "SELECT e.name AS emp_name, p.name AS proj_name \
             FROM hr.emp_nest_tuples AS e, e.projects AS p \
             WHERE p.name LIKE '%Security%'",
        );
        rt_query(
            "FROM hr.emp_nest_scalars AS e, e.projects AS p \
             WHERE p LIKE '%Security%' GROUP BY LOWER(p) AS p GROUP AS g \
             SELECT p AS proj_name, (FROM g AS v SELECT VALUE v.e.name) AS employees",
        );
        rt_query(
            "SELECT c.\"date\" AS \"date\", sym AS symbol, price AS price \
             FROM closing_prices AS c, UNPIVOT c AS price AT sym \
             WHERE NOT sym = 'date'",
        );
        rt_query("PIVOT sp.price AT sp.symbol FROM today_stock_prices AS sp");
        rt_query(
            "SELECT sp.\"date\" AS \"date\", \
             (PIVOT dp.sp.price AT dp.sp.symbol FROM dates_prices AS dp) AS prices \
             FROM stock_prices AS sp GROUP BY sp.\"date\" GROUP AS dates_prices",
        );
        rt_query(
            "FROM hr.emp AS e WHERE e.title = 'Engineer' \
             GROUP BY e.deptno AS d GROUP AS g \
             SELECT VALUE {deptno: d, avgsal: COLL_AVG(FROM g AS gi SELECT VALUE gi.e.salary)}",
        );
    }

    #[test]
    fn round_trips_expressions() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "NOT a AND b",
            "NOT (a AND b)",
            "a OR b AND NOT c",
            "x BETWEEN 1 AND 2 + 3",
            "x NOT LIKE '%a%' ESCAPE '\\\\'",
            "CASE WHEN x = 1 THEN 'a' ELSE 'b' END",
            "CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END",
            "{'a': 1, 'b': [1, 2, {{3}}]}",
            "COALESCE(MISSING, 2)",
            "COUNT(*)",
            "COUNT(DISTINCT x)",
            "CAST(x AS INT)",
            "x.y[0].z",
            "-x.a + 3.5",
            "x IS NOT MISSING",
            "EXISTS (SELECT VALUE y FROM t AS y)",
            "1.5",
            "2.0",
            "x IN (1, 2, 3)",
            "x IN y.items",
            "ROW_NUMBER() OVER (PARTITION BY x.d ORDER BY x.s DESC)",
            "SUM(x.s) OVER ()",
            "COUNT(*) OVER (PARTITION BY x.d)",
            "LAG(x.v, 2, 0) OVER (ORDER BY x.t NULLS LAST)",
        ] {
            rt_expr(src);
        }
    }

    #[test]
    fn round_trips_statements() {
        let src = "CREATE TABLE emp_mixed (id INT, projects UNIONTYPE<STRING, ARRAY<STRING>>)";
        let s1 = parse_statement(src).unwrap();
        let printed = print_statement(&s1);
        let s2 = parse_statement(&printed).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn keyword_and_odd_identifiers_are_quoted() {
        assert_eq!(ident("date"), "date");
        assert_eq!(ident("select"), "\"select\"");
        assert_eq!(ident("odd name"), "\"odd name\"");
        assert_eq!(ident("2x"), "\"2x\"");
    }

    #[test]
    fn set_ops_round_trip() {
        rt_query("SELECT VALUE 1 FROM a AS a UNION ALL SELECT VALUE 2 FROM b AS b");
        rt_query(
            "SELECT VALUE 1 FROM a AS a UNION SELECT VALUE 2 FROM b AS b \
             INTERSECT SELECT VALUE 3 FROM c AS c",
        );
    }

    #[test]
    fn order_limit_round_trip() {
        rt_query("SELECT VALUE x FROM t AS x ORDER BY x.a DESC NULLS LAST, x.b LIMIT 10 OFFSET 2");
    }
}
