//! # sqlpp-syntax — lexer, parser, AST and printer for SQL++
//!
//! A hand-written front end for the SQL++ language of *SQL++: We Can
//! Finally Relax!* (ICDE 2024). It accepts
//!
//! * classic SQL clause order **and** the paper's pipeline clause-last
//!   order (`FROM … WHERE … GROUP BY … SELECT …`, §V-B),
//! * `SELECT VALUE` (§V-A), `GROUP BY … GROUP AS` (§V-B),
//! * `UNPIVOT … AS … AT …` and `PIVOT … AT …` (§VI),
//! * the `MISSING` literal, bag constructors `{{ … }}` / `<< … >>`, tuple
//!   and array constructors, left-correlated FROM items, subqueries
//!   anywhere, and Hive-style `CREATE TABLE` type declarations
//!   (Listing 5's `UNIONTYPE`).
//!
//! ```
//! use sqlpp_syntax::parse_query;
//!
//! // Listing 2 of the paper parses directly:
//! let q = parse_query(
//!     "SELECT e.name AS emp_name, p.name AS proj_name \
//!      FROM hr.emp_nest_tuples AS e, e.projects AS p \
//!      WHERE p.name LIKE '%Security%'",
//! ).unwrap();
//! // …and prints back to canonical SQL++:
//! let text = sqlpp_syntax::print_query(&q);
//! assert!(text.starts_with("SELECT e.name AS emp_name"));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
mod error;
mod lexer;
mod parser;
mod pretty;
pub mod token;

pub use diag::{render_report, Diagnostic, Diagnostics};
pub use error::SyntaxError;
pub use lexer::{lex, lex_recovering};
pub use parser::{
    parse_expr, parse_expr_recovering, parse_query, parse_query_recovering, parse_statement,
    parse_statement_recovering, Recovered,
};
pub use pretty::{print_expr, print_query, print_statement};
