//! The SQL++ abstract syntax tree.
//!
//! The AST mirrors the *surface* language: both classic SQL clause order
//! (`SELECT … FROM …`) and the paper's pipeline-friendly clause-last order
//! (`FROM … WHERE … SELECT …`, §V-B) parse to the same [`QueryBlock`]; the
//! original order is recorded so the pretty-printer can round-trip it.
//! Lowering to SQL++ Core (explicit variables, `SELECT VALUE` only,
//! `COLL_*` aggregates) happens in `sqlpp-plan`, not here.

use sqlpp_value::Decimal;

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // statements are built once per query
pub enum Statement {
    /// A query expression.
    Query(Query),
    /// A Hive-style `CREATE TABLE` schema declaration (Listing 5). Only
    /// the schema payload is modeled; SQL++ proper has no DDL in the paper.
    CreateTable(CreateTable),
    /// `INSERT INTO name (VALUE expr | query)` — PartiQL-style DML over
    /// named collections.
    Insert(Insert),
    /// `DELETE FROM name [AS alias] [WHERE cond]`.
    Delete(Delete),
    /// `UPDATE name [AS alias] SET path = expr, … [WHERE cond]`.
    Update(Update),
    /// `EXPLAIN [ANALYZE] <query>` — render the Core plan; with ANALYZE,
    /// execute it and annotate each operator with `ExecStats` counters.
    Explain {
        /// Execute the query and collect runtime statistics.
        analyze: bool,
        /// The query to explain.
        query: Box<Query>,
    },
}

/// An INSERT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Possibly dotted target collection name.
    pub target: Vec<String>,
    /// What to insert.
    pub source: InsertSource,
}

/// The payload of an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `INSERT INTO t VALUE expr` — one element.
    Value(Expr),
    /// `INSERT INTO t <query>` — every element of the query result.
    Query(Box<Query>),
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Possibly dotted target collection name.
    pub target: Vec<String>,
    /// Range variable for the predicate (defaults to the last name
    /// segment).
    pub alias: Option<String>,
    /// Elements matching the predicate are removed; no predicate removes
    /// everything.
    pub where_clause: Option<Expr>,
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Possibly dotted target collection name.
    pub target: Vec<String>,
    /// Range variable (defaults like DELETE's).
    pub alias: Option<String>,
    /// `SET path = expr` assignments, applied left to right. The path is
    /// rooted at the element (`alias.a.b` or bare `a.b`).
    pub assignments: Vec<(Expr, Expr)>,
    /// Which elements to update (all when absent).
    pub where_clause: Option<Expr>,
}

/// `CREATE TABLE name (col type, …)` with the Hive-flavored type grammar
/// that the paper uses to demonstrate schema-declared heterogeneity.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Possibly dotted table name.
    pub name: Vec<String>,
    /// Column declarations.
    pub columns: Vec<(String, TypeExpr)>,
}

/// Type expressions for schema declarations (`INT`, `STRING`,
/// `ARRAY<STRING>`, `UNIONTYPE<STRING, ARRAY<STRING>>`, …).
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// A named scalar type, e.g. `INT`, `STRING`, `DOUBLE`, `BOOLEAN`.
    Named(String),
    /// `ARRAY<T>`.
    Array(Box<TypeExpr>),
    /// `BAG<T>` (non-Hive extension for completeness).
    Bag(Box<TypeExpr>),
    /// `STRUCT<name: T, …>`.
    Struct(Vec<(String, TypeExpr)>),
    /// `UNIONTYPE<T1, T2, …>` (Hive's union type, Listing 5).
    Union(Vec<TypeExpr>),
}

/// A full query: an optional `WITH` prefix, a body of set-operation-joined
/// blocks, and trailing ORDER BY / LIMIT / OFFSET that apply to the whole
/// body.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `WITH name AS (query), …` common table expressions.
    pub ctes: Vec<Cte>,
    /// The query body.
    pub body: SetExpr,
    /// `ORDER BY` items applying to the whole body.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` expression.
    pub limit: Option<Expr>,
    /// `OFFSET` expression.
    pub offset: Option<Expr>,
}

/// One common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// The introduced name.
    pub name: String,
    /// Its defining query.
    pub query: Box<Query>,
}

/// Query body: a block or a set operation over bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A single SELECT/FROM/… block.
    Block(Box<QueryBlock>),
    /// `left (UNION|INTERSECT|EXCEPT) [ALL] right`.
    SetOp {
        /// Which set operation.
        op: SetOp,
        /// Keep duplicates (`ALL`) or eliminate them.
        all: bool,
        /// Left operand.
        left: Box<SetExpr>,
        /// Right operand.
        right: Box<SetExpr>,
    },
}

/// The SQL set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

/// Where the SELECT clause appeared in the source, for round-tripping the
/// paper's clause-last style (§V-B: "Either placement is fine in SQL++").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectPlacement {
    /// `SELECT … FROM …` — classic SQL.
    #[default]
    Leading,
    /// `FROM … SELECT …` — pipeline order.
    Trailing,
}

/// One SELECT-FROM-WHERE-GROUP-HAVING block.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBlock {
    /// The projection clause (all its forms).
    pub select: SelectClause,
    /// FROM items, in syntactic order; comma-separated items are
    /// left-correlated (§III).
    pub from: Vec<FromItem>,
    /// `LET` bindings (AsterixDB-style convenience extension; each binds a
    /// new variable usable by later clauses).
    pub lets: Vec<LetBinding>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY … [GROUP AS g]`.
    pub group_by: Option<GroupBy>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// Block-level ORDER BY (only when written inside a parenthesized
    /// block; the common case attaches to [`Query`] instead).
    pub order_by: Vec<OrderItem>,
    /// Block-level LIMIT.
    pub limit: Option<Expr>,
    /// Block-level OFFSET.
    pub offset: Option<Expr>,
    /// Source clause order.
    pub placement: SelectPlacement,
}

impl QueryBlock {
    /// An empty block with the given select clause (used by builders and
    /// tests).
    pub fn with_select(select: SelectClause) -> Self {
        QueryBlock {
            select,
            from: Vec::new(),
            lets: Vec::new(),
            where_clause: None,
            group_by: None,
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
            placement: SelectPlacement::Leading,
        }
    }
}

/// A `LET name = expr` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct LetBinding {
    /// The variable introduced.
    pub name: String,
    /// Its defining expression (may reference earlier FROM/LET variables).
    pub expr: Expr,
}

/// The projection clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectClause {
    /// `SELECT [DISTINCT] item, …` — SQL sugar for a tuple-constructing
    /// SELECT VALUE (§V-A).
    Select {
        /// DISTINCT / ALL.
        quantifier: SetQuantifier,
        /// The projection list.
        items: Vec<SelectItem>,
    },
    /// `SELECT [DISTINCT] VALUE expr` — the Core constructor.
    SelectValue {
        /// DISTINCT / ALL.
        quantifier: SetQuantifier,
        /// The projected expression.
        expr: Expr,
    },
    /// `PIVOT value_expr AT name_expr` — constructs a single tuple from
    /// the binding stream (§VI-B).
    Pivot {
        /// Expression producing each attribute's value.
        value: Expr,
        /// Expression producing each attribute's name.
        name: Expr,
    },
}

/// DISTINCT/ALL on SELECT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SetQuantifier {
    /// Keep duplicates (default).
    #[default]
    All,
    /// Eliminate duplicates.
    Distinct,
}

/// One item of a SQL SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `expr [AS alias]`. When the alias is omitted the planner derives
    /// one from the expression's last path step, as SQL does.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional explicit alias.
        alias: Option<String>,
    },
    /// `*` — merge every FROM variable's binding.
    Wildcard,
    /// `alias.*` — spread one variable's tuple.
    QualifiedWildcard(String),
}

/// A FROM-clause item. Comma-joined items nest left-correlatedly; explicit
/// joins carry their own condition.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// `expr [AS var] [AT posvar]` — iterate a collection; `AT` binds the
    /// array position (PartiQL).
    Collection {
        /// The source expression (collection-valued, possibly correlated).
        expr: Expr,
        /// The element variable. `None` only transiently before alias
        /// inference in the planner.
        as_var: Option<String>,
        /// Optional position variable.
        at_var: Option<String>,
    },
    /// `UNPIVOT expr AS valvar AT namevar` — iterate a tuple's
    /// attribute/value pairs (§VI-A).
    Unpivot {
        /// Tuple-valued expression.
        expr: Expr,
        /// Variable bound to each attribute value.
        value_var: String,
        /// Variable bound to each attribute name.
        name_var: String,
    },
    /// An explicit join.
    Join {
        /// Join flavor.
        kind: JoinKind,
        /// Left input.
        left: Box<FromItem>,
        /// Right input.
        right: Box<FromItem>,
        /// `ON` condition (absent for CROSS joins).
        on: Option<Expr>,
    },
}

/// Join flavors. RIGHT/FULL are normalized by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

/// `GROUP BY key [AS alias], … [GROUP AS groupvar]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBy {
    /// Grouping keys with optional aliases (the alias names the key in
    /// post-grouping scope; defaults are derived like SELECT aliases).
    pub keys: Vec<GroupKeyExpr>,
    /// ROLLUP/CUBE/GROUPING SETS structure over the keys (§V-B: these
    /// analytical features are "wholly compatible" with SQL++).
    pub modifier: GroupModifier,
    /// `GROUP AS g`: the paper's extension exposing the whole group (§V-B).
    pub group_as: Option<String>,
}

/// Multi-grouping-set structure of a GROUP BY.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum GroupModifier {
    /// Plain GROUP BY: one grouping set with every key.
    #[default]
    Plain,
    /// `ROLLUP(k1, …, kn)`: the n+1 prefixes, down to the grand total.
    Rollup,
    /// `CUBE(k1, …, kn)`: all 2^n subsets.
    Cube,
    /// `GROUPING SETS ((…), …)`: explicit subsets, as index lists into
    /// `keys`.
    GroupingSets(Vec<Vec<usize>>),
}

/// One grouping key.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupKeyExpr {
    /// The key expression evaluated per input binding.
    pub expr: Expr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

/// One ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The sort key.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
    /// NULLS FIRST/LAST override; `None` means the dialect default
    /// (NULLS FIRST ascending, NULLS LAST descending — i.e. absent values
    /// sort at the "small" end, matching the total order).
    pub nulls_first: Option<bool>,
}

/// Literal values in the syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// `NULL`.
    Null,
    /// `MISSING` (a literal in SQL++!).
    Missing,
    /// `TRUE`/`FALSE`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Exact decimal literal (e.g. `3.14`).
    Decimal(Decimal),
    /// Float literal (exponent form or special `` `nan` ``/`` `±inf` ``).
    Float(f64),
    /// String literal.
    Str(String),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
}

impl BinOp {
    /// Canonical SQL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
    Pos,
}

/// A path step after a primary expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStep {
    /// `.attr` or `."attr"`.
    Attr(String),
    /// `[index_expr]`.
    Index(Box<Expr>),
}

/// The expression grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Lit(Lit),
    /// A (possibly dotted) name: `e`, `hr.emp`, `e.projects`. Resolution
    /// into variable-vs-navigation-vs-catalog-name happens in the planner;
    /// syntactically this is a head identifier plus path steps.
    Path {
        /// The head identifier (a variable or the first segment of a
        /// catalog name). Quoted heads are marked to skip keyword checks.
        head: String,
        /// Navigation steps.
        steps: Vec<PathStep>,
    },
    /// A positional parameter `?` (0-based index in occurrence order).
    Param(usize),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr [NOT] LIKE pattern [ESCAPE esc]`.
    Like {
        /// The matched expression.
        expr: Box<Expr>,
        /// The pattern.
        pattern: Box<Expr>,
        /// Optional escape character expression.
        escape: Option<Box<Expr>>,
        /// NOT LIKE?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT BETWEEN?
        negated: bool,
    },
    /// `expr [NOT] IN (e1, …)` or `expr [NOT] IN collection_expr`.
    In {
        /// The tested expression.
        expr: Box<Expr>,
        /// The right-hand side.
        rhs: Box<InRhs>,
        /// NOT IN?
        negated: bool,
    },
    /// `expr IS [NOT] NULL | MISSING | <type>` — type/absence tests.
    Is {
        /// The tested expression.
        expr: Box<Expr>,
        /// What is tested.
        test: IsTest,
        /// IS NOT?
        negated: bool,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Simple-CASE operand, if present.
        operand: Option<Box<Expr>>,
        /// `(when, then)` arms.
        arms: Vec<(Expr, Expr)>,
        /// ELSE result.
        else_expr: Option<Box<Expr>>,
    },
    /// Function call, including aggregates: `AVG(x)`, `COLL_AVG(c)`,
    /// `COUNT(DISTINCT x)`, `COUNT(*)`.
    Call {
        /// Upper-cased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// DISTINCT inside an aggregate call.
        distinct: bool,
        /// `COUNT(*)` marker.
        star: bool,
    },
    /// `func(args) OVER ([PARTITION BY …] [ORDER BY …])` — SQL window
    /// functions, which the paper notes are "wholly compatible" with
    /// SQL++ and thereby gain nested/heterogeneous inputs (§V-B).
    Window {
        /// Upper-cased function name (ROW_NUMBER, RANK, SUM, LAG, …).
        func: String,
        /// Arguments (empty for ROW_NUMBER/RANK/DENSE_RANK).
        args: Vec<Expr>,
        /// `COUNT(*) OVER (…)` marker.
        star: bool,
        /// PARTITION BY expressions.
        partition_by: Vec<Expr>,
        /// ORDER BY items within the partition.
        order_by: Vec<OrderItem>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Source expression.
        expr: Box<Expr>,
        /// Target type.
        ty: TypeExpr,
    },
    /// `EXISTS (query)` / `NOT EXISTS` is wrapped in `Un(Not, …)`.
    Exists(Box<Query>),
    /// A parenthesized subquery in expression position.
    Subquery(Box<Query>),
    /// Tuple constructor `{'a': expr, …}` — names are expressions, almost
    /// always string literals.
    TupleCtor(Vec<(Expr, Expr)>),
    /// Array constructor `[e1, …]`.
    ArrayCtor(Vec<Expr>),
    /// Bag constructor `{{e1, …}}` / `<<e1, …>>`.
    BagCtor(Vec<Expr>),
}

/// Right-hand side of `IN`.
#[derive(Debug, Clone, PartialEq)]
pub enum InRhs {
    /// Parenthesized expression list.
    List(Vec<Expr>),
    /// Any collection-valued expression (subqueries included: they parse
    /// as `Expr::Subquery`).
    Expr(Expr),
}

/// The test of an `IS` expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsTest {
    /// `IS NULL` — true for NULL **and** MISSING in SQL compatibility
    /// terms; the evaluator follows SQL.
    Null,
    /// `IS MISSING` — true only for MISSING.
    Missing,
    /// `IS <typename>` dynamic type test (extension), e.g. `x IS ARRAY`.
    Type(String),
}

impl Expr {
    /// A bare variable/identifier reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Path {
            head: name.into(),
            steps: Vec::new(),
        }
    }

    /// `head.a.b…` convenience constructor.
    pub fn path(head: impl Into<String>, attrs: &[&str]) -> Expr {
        Expr::Path {
            head: head.into(),
            steps: attrs
                .iter()
                .map(|a| PathStep::Attr((*a).to_string()))
                .collect(),
        }
    }

    /// Integer literal shorthand.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Lit::Int(v))
    }

    /// String literal shorthand.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Lit(Lit::Str(v.into()))
    }

    /// Builds `left op right`.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Bin {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// The default output alias SQL would derive for this expression in a
    /// SELECT list: the last attribute step of a path, else `None`.
    pub fn derived_alias(&self) -> Option<&str> {
        match self {
            Expr::Path { head, steps } => match steps.last() {
                Some(PathStep::Attr(a)) => Some(a),
                Some(PathStep::Index(_)) => None,
                None => Some(head),
            },
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_alias_takes_last_attr_step() {
        assert_eq!(Expr::path("e", &["name"]).derived_alias(), Some("name"));
        assert_eq!(Expr::var("p").derived_alias(), Some("p"));
        assert_eq!(Expr::int(3).derived_alias(), None);
        let idx = Expr::Path {
            head: "e".into(),
            steps: vec![PathStep::Index(Box::new(Expr::int(0)))],
        };
        assert_eq!(idx.derived_alias(), None);
    }

    #[test]
    fn builders_compose() {
        let e = Expr::bin(BinOp::Eq, Expr::path("e", &["title"]), Expr::str("Manager"));
        match e {
            Expr::Bin { op: BinOp::Eq, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
