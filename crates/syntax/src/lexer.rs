//! The SQL++ lexer.
//!
//! Hand-written, zero-dependency, and permissive about whitespace. Supports
//! SQL line comments (`-- …`), bracketed comments (`/* … */`, nesting
//! allowed), SQL string literals with doubled-quote escaping, delimited
//! identifiers (`"date"`), and the paper's bag-constructor digraphs `{{`,
//! `}}`, `<<`, `>>`.
//!
//! One context dependence is unavoidable: `>>` also appears when two
//! comparison operators abut (`a > (SELECT …) >` can't, but `x >> y` could
//! in principle mean `x > > y` — it never does in SQL). We always lex `>>`
//! and `<<` as bag delimiters; the parser splits them back into comparisons
//! where a bag delimiter is impossible. In practice the digraphs only occur
//! as constructors, matching PartiQL's grammar.
//!
//! The lexer is *recovering*: every malformed construct produces a
//! [`Diagnostic`] and the scan continues, so one pass reports every
//! lexical mistake. An unterminated string/identifier/backtick reports
//! the span of its **opening** delimiter and resumes scanning at the
//! next line break (the delimiter was almost certainly meant to close
//! on the same line). The strict [`lex`] entry point keeps its old
//! `Result` shape by failing on the first diagnostic.

use crate::diag::{codes, Diagnostic, Diagnostics};
use crate::error::SyntaxError;
use crate::token::{Keyword, Span, Tok, Token};

/// Lexes a complete source string into tokens (ending with [`Tok::Eof`]),
/// failing on the first lexical error.
pub fn lex(src: &str) -> Result<Vec<Token>, SyntaxError> {
    let (tokens, diags) = lex_recovering(src);
    match diags.into_iter().next() {
        None => Ok(tokens),
        Some(d) => Err(SyntaxError::from_diagnostic(d)),
    }
}

/// Lexes with error recovery: always returns the full token stream
/// (ending with [`Tok::Eof`]) plus every lexical diagnostic found.
pub fn lex_recovering(src: &str) -> (Vec<Token>, Vec<Diagnostic>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    diags: Diagnostics,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            diags: Diagnostics::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span {
            start,
            end: self.pos,
            line,
            column: col,
        }
    }

    /// Span of the `len` bytes starting at `start` (for pointing at an
    /// opening delimiter rather than everything scanned past it).
    fn span_at(&self, start: usize, line: u32, col: u32, len: usize) -> Span {
        Span {
            start,
            end: (start + len).min(self.bytes.len()),
            line,
            column: col,
        }
    }

    fn report(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Error recovery for unterminated quoted forms: rewind to just
    /// after the opening delimiter and skip to the next line break, so
    /// the rest of the input still lexes.
    fn resume_at_newline(&mut self, after_open: (usize, u32, u32)) {
        (self.pos, self.line, self.col) = after_open;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
            self.col += 1;
        }
    }

    fn run(mut self) -> (Vec<Token>, Vec<Diagnostic>) {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (start, line, col) = (self.pos, self.line, self.col);
            let Some(b) = self.peek() else {
                out.push(Token {
                    tok: Tok::Eof,
                    span: self.span_from(start, line, col),
                });
                return (out, self.diags.into_vec());
            };
            let tok = match b {
                b'\'' => self.lex_string(),
                b'"' => self.lex_quoted_ident(),
                b'`' => self.lex_backtick_special(),
                b'0'..=b'9' => self.lex_number(),
                b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => self.lex_number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => Some(self.lex_word()),
                _ => self.lex_symbol(),
            };
            if let Some(tok) = tok {
                out.push(Token {
                    tok,
                    span: self.span_from(start, line, col),
                });
            }
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (start, line, col) = (self.pos, self.line, self.col);
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                            }
                            (Some(b'/'), Some(b'*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                let span = self.span_at(start, line, col, 2);
                                self.report(
                                    Diagnostic::new(
                                        codes::E_UNTERMINATED,
                                        "unterminated block comment",
                                        span,
                                    )
                                    .with_hint("comment opened here is never closed with `*/`"),
                                );
                                return;
                            }
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn lex_string(&mut self) -> Option<Tok> {
        let (start, line, col) = (self.pos, self.line, self.col);
        self.bump(); // opening quote
        let after_open = (self.pos, self.line, self.col);
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Some(Tok::Str(s));
                    }
                }
                Some(b'\\') => {
                    let (esc_start, esc_line, esc_col) = (self.pos - 1, self.line, self.col - 1);
                    // C-style escapes, matching our value printer.
                    match self.bump() {
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'\'') => s.push('\''),
                        Some(b'u') => match self.lex_unicode_escape() {
                            Ok(ch) => s.push(ch),
                            Err(msg) => {
                                let span = self.span_from(esc_start, esc_line, esc_col);
                                self.report(
                                    Diagnostic::new(codes::E_ESCAPE, msg, span).with_hint(
                                        "\\u takes exactly four hex digits, e.g. \\u00e9",
                                    ),
                                );
                                s.push('\u{FFFD}');
                            }
                        },
                        other => {
                            let span = self.span_from(esc_start, esc_line, esc_col);
                            self.report(
                                Diagnostic::new(
                                    codes::E_ESCAPE,
                                    "invalid escape in string literal",
                                    span,
                                )
                                .with_hint("known escapes: \\n \\r \\t \\\\ \\' \\uXXXX"),
                            );
                            // Keep the character literally and carry on.
                            if let Some(b) = other {
                                self.push_char_from(b, &mut s);
                            }
                        }
                    }
                }
                Some(b) => self.push_char_from(b, &mut s),
                None => {
                    let span = self.span_at(start, line, col, 1);
                    self.report(
                        Diagnostic::new(codes::E_UNTERMINATED, "unterminated string literal", span)
                            .with_hint("string opened here is never closed with `'`"),
                    );
                    self.resume_at_newline(after_open);
                    return None;
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape; the backslash and `u`
    /// are already consumed.
    fn lex_unicode_escape(&mut self) -> Result<char, &'static str> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.peek().ok_or("unterminated \\u escape")?;
            let digit = (d as char)
                .to_digit(16)
                .ok_or("invalid hex digit in \\u escape")?;
            self.bump();
            code = code * 16 + digit;
        }
        char::from_u32(code).ok_or("invalid \\u code point")
    }

    /// Pushes the full UTF-8 character whose first byte `b` was just
    /// consumed, bumping over any continuation bytes.
    fn push_char_from(&mut self, _b: u8, s: &mut String) {
        let ch_start = self.pos - 1;
        let ch = self.src[ch_start..].chars().next().expect("in-bounds char");
        for _ in 1..ch.len_utf8() {
            self.bump();
        }
        s.push(ch);
    }

    fn lex_quoted_ident(&mut self) -> Option<Tok> {
        let (start, line, col) = (self.pos, self.line, self.col);
        self.bump(); // opening quote
        let after_open = (self.pos, self.line, self.col);
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        self.bump();
                        s.push('"');
                    } else {
                        return Some(Tok::QuotedIdent(s));
                    }
                }
                Some(b) => self.push_char_from(b, &mut s),
                None => {
                    let span = self.span_at(start, line, col, 1);
                    self.report(
                        Diagnostic::new(
                            codes::E_UNTERMINATED,
                            "unterminated delimited identifier",
                            span,
                        )
                        .with_hint("identifier opened here is never closed with `\"`"),
                    );
                    self.resume_at_newline(after_open);
                    return None;
                }
            }
        }
    }

    /// Backtick forms carry special float values through the printer:
    /// `` `nan` ``, `` `+inf` ``, `` `-inf` ``.
    fn lex_backtick_special(&mut self) -> Option<Tok> {
        let (start, line, col) = (self.pos, self.line, self.col);
        self.bump();
        let after_open = (self.pos, self.line, self.col);
        let word_start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'`' || b == b'\n' {
                break;
            }
            self.bump();
        }
        let word = &self.src[word_start..self.pos];
        if self.peek() != Some(b'`') {
            let span = self.span_at(start, line, col, 1);
            self.report(
                Diagnostic::new(codes::E_UNTERMINATED, "unterminated backtick literal", span)
                    .with_hint("backtick opened here is never closed with `"),
            );
            self.resume_at_newline(after_open);
            return None;
        }
        self.bump(); // closing backtick
        match word {
            "nan" | "+inf" | "-inf" => Some(Tok::Number(word.to_string())),
            other => {
                let span = self.span_from(start, line, col);
                self.report(
                    Diagnostic::new(
                        codes::E_NUMBER,
                        format!("unknown backtick literal `{other}`"),
                        span,
                    )
                    .with_expected(vec![
                        "`nan`".into(),
                        "`+inf`".into(),
                        "`-inf`".into(),
                    ]),
                );
                None
            }
        }
    }

    fn lex_number(&mut self) -> Option<Tok> {
        let (start, line, col) = (self.pos, self.line, self.col);
        let text_start = self.pos;
        let mut is_int = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                    is_int = false;
                    self.bump();
                }
                b'e' | b'E' => {
                    is_int = false;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                    if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        let span = self.span_from(start, line, col);
                        self.report(
                            Diagnostic::new(
                                codes::E_NUMBER,
                                "exponent must be followed by digits",
                                span,
                            )
                            .with_hint("write e.g. 1e3 or 2.5E-2"),
                        );
                        return None;
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[text_start..self.pos];
        if is_int {
            match text.parse::<i64>() {
                Ok(v) => Some(Tok::Int(v)),
                // Magnitude beyond i64: defer to the decimal path.
                Err(_) => Some(Tok::Number(text.to_string())),
            }
        } else {
            Some(Tok::Number(text.to_string()))
        }
    }

    fn lex_word(&mut self) -> Tok {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                self.bump();
            } else {
                break;
            }
        }
        let word = &self.src[start..self.pos];
        match Keyword::lookup(word) {
            Some(kw) => Tok::Keyword(kw),
            None => Tok::Ident(word.to_string()),
        }
    }

    fn lex_symbol(&mut self) -> Option<Tok> {
        let (start, line, col) = (self.pos, self.line, self.col);
        let b = self.bump().expect("peeked");
        Some(match b {
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump(); // tolerate `==`
                }
                Tok::Eq
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Tok::LtEq
                }
                Some(b'>') => {
                    self.bump();
                    Tok::NotEq
                }
                Some(b'<') => {
                    self.bump();
                    Tok::LBagAngle
                }
                _ => Tok::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Tok::GtEq
                }
                Some(b'>') => {
                    self.bump();
                    Tok::RBagAngle
                }
                _ => Tok::Gt,
            },
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::NotEq
                } else {
                    let span = self.span_from(start, line, col);
                    self.report(
                        Diagnostic::new(codes::E_CHAR, "expected '=' after '!'", span)
                            .with_expected(vec!["!=".into()]),
                    );
                    return None;
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::Concat
                } else {
                    let span = self.span_from(start, line, col);
                    self.report(
                        Diagnostic::new(codes::E_CHAR, "expected '|' after '|'", span)
                            .with_expected(vec!["||".into()]),
                    );
                    return None;
                }
            }
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'{' => {
                if self.peek() == Some(b'{') {
                    self.bump();
                    Tok::LBagBrace
                } else {
                    Tok::LBrace
                }
            }
            b'}' => {
                if self.peek() == Some(b'}') {
                    self.bump();
                    Tok::RBagBrace
                } else {
                    Tok::RBrace
                }
            }
            b',' => Tok::Comma,
            b'.' => Tok::Dot,
            b':' => Tok::Colon,
            b';' => Tok::Semicolon,
            b'?' => Tok::Question,
            other => {
                let span = self.span_from(start, line, col);
                self.report(Diagnostic::new(
                    codes::E_CHAR,
                    format!("unexpected character {:?}", other as char),
                    span,
                ));
                return None;
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_a_paper_query() {
        // Listing 2's shape.
        let ts = toks(
            "SELECT e.name AS emp_name FROM hr.emp_nest_tuples AS e, \
             e.projects AS p WHERE p.name LIKE '%Security%'",
        );
        assert_eq!(ts[0], Tok::Keyword(Keyword::Select));
        assert!(ts.contains(&Tok::Str("%Security%".to_string())));
        assert!(ts.contains(&Tok::Ident("emp_nest_tuples".to_string())));
        assert_eq!(*ts.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn strings_with_doubled_quotes_and_escapes() {
        assert_eq!(toks("'it''s'")[0], Tok::Str("it's".into()));
        assert_eq!(toks(r"'a\nb'")[0], Tok::Str("a\nb".into()));
        assert_eq!(toks(r"'A'")[0], Tok::Str("A".into()));
        assert_eq!(toks("'héllo'")[0], Tok::Str("héllo".into()));
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(toks("\"date\"")[0], Tok::QuotedIdent("date".into()));
        assert_eq!(toks("\"a\"\"b\"")[0], Tok::QuotedIdent("a\"b".into()));
    }

    #[test]
    fn numbers_int_and_decimal() {
        assert_eq!(toks("42")[0], Tok::Int(42));
        assert_eq!(toks("3.14")[0], Tok::Number("3.14".into()));
        assert_eq!(toks("1e3")[0], Tok::Number("1e3".into()));
        assert_eq!(toks("2.5E-2")[0], Tok::Number("2.5E-2".into()));
        // Larger than i64 becomes a Number token.
        assert_eq!(
            toks("99999999999999999999")[0],
            Tok::Number("99999999999999999999".into())
        );
    }

    #[test]
    fn dot_disambiguation() {
        // `a.b` is ident dot ident; `.5` is a number.
        assert_eq!(
            toks("a.b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
        assert_eq!(toks(".5")[0], Tok::Number(".5".into()));
    }

    #[test]
    fn bag_digraphs() {
        assert_eq!(
            toks("{{1}}"),
            vec![Tok::LBagBrace, Tok::Int(1), Tok::RBagBrace, Tok::Eof]
        );
        assert_eq!(
            toks("<<1>>"),
            vec![Tok::LBagAngle, Tok::Int(1), Tok::RBagAngle, Tok::Eof]
        );
        assert_eq!(
            toks("{'a': 1}"),
            vec![
                Tok::LBrace,
                Tok::Str("a".into()),
                Tok::Colon,
                Tok::Int(1),
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 -- line comment\n + /* block /* nested */ */ 2"),
            vec![Tok::Int(1), Tok::Plus, Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<> != <= >= || = =="),
            vec![
                Tok::NotEq,
                Tok::NotEq,
                Tok::LtEq,
                Tok::GtEq,
                Tok::Concat,
                Tok::Eq,
                Tok::Eq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let err = lex("SELECT\n  #").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let err = lex("'unterminated").unwrap_err();
        assert!(err.to_string().contains("unterminated string"));
    }

    #[test]
    fn unterminated_string_points_at_the_opening_quote() {
        let src = "SELECT 'oops\nFROM t AS t";
        let err = lex(src).unwrap_err();
        assert_eq!(err.code(), codes::E_UNTERMINATED);
        assert_eq!(err.span().start, 7);
        assert_eq!(err.span().end, 8);
        assert_eq!(err.span().line, 1);
        assert_eq!(err.span().column, 8);
        // Recovery resumes at the newline: the second line still lexes.
        let (tokens, diags) = lex_recovering(src);
        assert_eq!(diags.len(), 1);
        let toks: Vec<_> = tokens.into_iter().map(|t| t.tok).collect();
        assert!(toks.contains(&Tok::Keyword(Keyword::From)));
        assert!(toks.contains(&Tok::Ident("t".into())));
    }

    #[test]
    fn unterminated_quoted_ident_points_at_the_opening_quote() {
        let (tokens, diags) = lex_recovering("SELECT \"oops\nFROM t AS t");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::E_UNTERMINATED);
        assert_eq!(diags[0].span.start, 7);
        assert_eq!(diags[0].span.end, 8);
        let toks: Vec<_> = tokens.into_iter().map(|t| t.tok).collect();
        assert!(toks.contains(&Tok::Keyword(Keyword::From)));
    }

    #[test]
    fn unterminated_backtick_points_at_the_opening_backtick() {
        let (tokens, diags) = lex_recovering("SELECT `nan\nFROM t AS t");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::E_UNTERMINATED);
        assert_eq!(diags[0].span.start, 7);
        let toks: Vec<_> = tokens.into_iter().map(|t| t.tok).collect();
        assert!(toks.contains(&Tok::Keyword(Keyword::From)));
    }

    #[test]
    fn recovery_reports_multiple_lexical_errors() {
        let (tokens, diags) = lex_recovering("SELECT # FROM ~ WHERE @");
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.code == codes::E_CHAR));
        let toks: Vec<_> = tokens.into_iter().map(|t| t.tok).collect();
        assert!(toks.contains(&Tok::Keyword(Keyword::Select)));
        assert!(toks.contains(&Tok::Keyword(Keyword::From)));
        assert!(toks.contains(&Tok::Keyword(Keyword::Where)));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(toks("value")[0], Tok::Keyword(Keyword::Value));
        assert_eq!(toks("valuex")[0], Tok::Ident("valuex".into()));
        assert_eq!(toks("$var")[0], Tok::Ident("$var".into()));
    }
}
