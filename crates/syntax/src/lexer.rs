//! The SQL++ lexer.
//!
//! Hand-written, zero-dependency, and permissive about whitespace. Supports
//! SQL line comments (`-- …`), bracketed comments (`/* … */`, nesting
//! allowed), SQL string literals with doubled-quote escaping, delimited
//! identifiers (`"date"`), and the paper's bag-constructor digraphs `{{`,
//! `}}`, `<<`, `>>`.
//!
//! One context dependence is unavoidable: `>>` also appears when two
//! comparison operators abut (`a > (SELECT …) >` can't, but `x >> y` could
//! in principle mean `x > > y` — it never does in SQL). We always lex `>>`
//! and `<<` as bag delimiters; the parser splits them back into comparisons
//! where a bag delimiter is impossible. In practice the digraphs only occur
//! as constructors, matching PartiQL's grammar.

use crate::error::SyntaxError;
use crate::token::{Keyword, Span, Tok, Token};

/// Lexes a complete source string into tokens (ending with [`Tok::Eof`]).
pub fn lex(src: &str) -> Result<Vec<Token>, SyntaxError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span {
            start,
            end: self.pos,
            line,
            column: col,
        }
    }

    fn error(&self, msg: impl Into<String>, start: usize, line: u32, col: u32) -> SyntaxError {
        SyntaxError::new(msg, self.span_from(start, line, col))
    }

    fn run(mut self) -> Result<Vec<Token>, SyntaxError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (start, line, col) = (self.pos, self.line, self.col);
            let Some(b) = self.peek() else {
                out.push(Token {
                    tok: Tok::Eof,
                    span: self.span_from(start, line, col),
                });
                return Ok(out);
            };
            let tok = match b {
                b'\'' => self.lex_string()?,
                b'"' => self.lex_quoted_ident()?,
                b'`' => self.lex_backtick_special()?,
                b'0'..=b'9' => self.lex_number()?,
                b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => self.lex_number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => self.lex_word(),
                _ => self.lex_symbol()?,
            };
            out.push(Token {
                tok,
                span: self.span_from(start, line, col),
            });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), SyntaxError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (start, line, col) = (self.pos, self.line, self.col);
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                            }
                            (Some(b'/'), Some(b'*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(self.error(
                                    "unterminated block comment",
                                    start,
                                    line,
                                    col,
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_string(&mut self) -> Result<Tok, SyntaxError> {
        let (start, line, col) = (self.pos, self.line, self.col);
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(Tok::Str(s));
                    }
                }
                Some(b'\\') => {
                    // C-style escapes, matching our value printer.
                    match self.bump() {
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'\'') => s.push('\''),
                        Some(b'u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = self.bump().ok_or_else(|| {
                                    self.error("unterminated \\u escape", start, line, col)
                                })?;
                                code = code * 16
                                    + (d as char).to_digit(16).ok_or_else(|| {
                                        self.error(
                                            "invalid hex digit in \\u escape",
                                            start,
                                            line,
                                            col,
                                        )
                                    })?;
                            }
                            s.push(char::from_u32(code).ok_or_else(|| {
                                self.error("invalid \\u code point", start, line, col)
                            })?);
                        }
                        _ => {
                            return Err(self.error(
                                "invalid escape in string literal",
                                start,
                                line,
                                col,
                            ));
                        }
                    }
                }
                Some(_) => {
                    // Collect raw UTF-8 bytes: re-slice from the source to
                    // keep multi-byte characters intact.
                    let ch_start = self.pos - 1;
                    let ch = self.src[ch_start..].chars().next().expect("in-bounds char");
                    // Bump over any continuation bytes.
                    for _ in 1..ch.len_utf8() {
                        self.bump();
                    }
                    s.push(ch);
                }
                None => {
                    return Err(self.error("unterminated string literal", start, line, col));
                }
            }
        }
    }

    fn lex_quoted_ident(&mut self) -> Result<Tok, SyntaxError> {
        let (start, line, col) = (self.pos, self.line, self.col);
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        self.bump();
                        s.push('"');
                    } else {
                        return Ok(Tok::QuotedIdent(s));
                    }
                }
                Some(_) => {
                    let ch_start = self.pos - 1;
                    let ch = self.src[ch_start..].chars().next().expect("in-bounds char");
                    for _ in 1..ch.len_utf8() {
                        self.bump();
                    }
                    s.push(ch);
                }
                None => {
                    return Err(self.error("unterminated delimited identifier", start, line, col));
                }
            }
        }
    }

    /// Backtick forms carry special float values through the printer:
    /// `` `nan` ``, `` `+inf` ``, `` `-inf` ``.
    fn lex_backtick_special(&mut self) -> Result<Tok, SyntaxError> {
        let (start, line, col) = (self.pos, self.line, self.col);
        self.bump();
        let word_start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'`' {
                break;
            }
            self.bump();
        }
        let word = &self.src[word_start..self.pos];
        if self.bump() != Some(b'`') {
            return Err(self.error("unterminated backtick literal", start, line, col));
        }
        match word {
            "nan" | "+inf" | "-inf" => Ok(Tok::Number(word.to_string())),
            other => Err(self.error(
                format!("unknown backtick literal `{other}`"),
                start,
                line,
                col,
            )),
        }
    }

    fn lex_number(&mut self) -> Result<Tok, SyntaxError> {
        let (start, line, col) = (self.pos, self.line, self.col);
        let text_start = self.pos;
        let mut is_int = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                    is_int = false;
                    self.bump();
                }
                b'e' | b'E' => {
                    is_int = false;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                    if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        return Err(self.error(
                            "exponent must be followed by digits",
                            start,
                            line,
                            col,
                        ));
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[text_start..self.pos];
        if is_int {
            match text.parse::<i64>() {
                Ok(v) => Ok(Tok::Int(v)),
                // Magnitude beyond i64: defer to the decimal path.
                Err(_) => Ok(Tok::Number(text.to_string())),
            }
        } else {
            Ok(Tok::Number(text.to_string()))
        }
    }

    fn lex_word(&mut self) -> Tok {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                self.bump();
            } else {
                break;
            }
        }
        let word = &self.src[start..self.pos];
        match Keyword::lookup(word) {
            Some(kw) => Tok::Keyword(kw),
            None => Tok::Ident(word.to_string()),
        }
    }

    fn lex_symbol(&mut self) -> Result<Tok, SyntaxError> {
        let (start, line, col) = (self.pos, self.line, self.col);
        let b = self.bump().expect("peeked");
        Ok(match b {
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump(); // tolerate `==`
                }
                Tok::Eq
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Tok::LtEq
                }
                Some(b'>') => {
                    self.bump();
                    Tok::NotEq
                }
                Some(b'<') => {
                    self.bump();
                    Tok::LBagAngle
                }
                _ => Tok::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Tok::GtEq
                }
                Some(b'>') => {
                    self.bump();
                    Tok::RBagAngle
                }
                _ => Tok::Gt,
            },
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::NotEq
                } else {
                    return Err(self.error("expected '=' after '!'", start, line, col));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::Concat
                } else {
                    return Err(self.error("expected '|' after '|'", start, line, col));
                }
            }
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'{' => {
                if self.peek() == Some(b'{') {
                    self.bump();
                    Tok::LBagBrace
                } else {
                    Tok::LBrace
                }
            }
            b'}' => {
                if self.peek() == Some(b'}') {
                    self.bump();
                    Tok::RBagBrace
                } else {
                    Tok::RBrace
                }
            }
            b',' => Tok::Comma,
            b'.' => Tok::Dot,
            b':' => Tok::Colon,
            b';' => Tok::Semicolon,
            b'?' => Tok::Question,
            other => {
                return Err(self.error(
                    format!("unexpected character {:?}", other as char),
                    start,
                    line,
                    col,
                ));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_a_paper_query() {
        // Listing 2's shape.
        let ts = toks(
            "SELECT e.name AS emp_name FROM hr.emp_nest_tuples AS e, \
             e.projects AS p WHERE p.name LIKE '%Security%'",
        );
        assert_eq!(ts[0], Tok::Keyword(Keyword::Select));
        assert!(ts.contains(&Tok::Str("%Security%".to_string())));
        assert!(ts.contains(&Tok::Ident("emp_nest_tuples".to_string())));
        assert_eq!(*ts.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn strings_with_doubled_quotes_and_escapes() {
        assert_eq!(toks("'it''s'")[0], Tok::Str("it's".into()));
        assert_eq!(toks(r"'a\nb'")[0], Tok::Str("a\nb".into()));
        assert_eq!(toks(r"'A'")[0], Tok::Str("A".into()));
        assert_eq!(toks("'héllo'")[0], Tok::Str("héllo".into()));
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(toks("\"date\"")[0], Tok::QuotedIdent("date".into()));
        assert_eq!(toks("\"a\"\"b\"")[0], Tok::QuotedIdent("a\"b".into()));
    }

    #[test]
    fn numbers_int_and_decimal() {
        assert_eq!(toks("42")[0], Tok::Int(42));
        assert_eq!(toks("3.14")[0], Tok::Number("3.14".into()));
        assert_eq!(toks("1e3")[0], Tok::Number("1e3".into()));
        assert_eq!(toks("2.5E-2")[0], Tok::Number("2.5E-2".into()));
        // Larger than i64 becomes a Number token.
        assert_eq!(
            toks("99999999999999999999")[0],
            Tok::Number("99999999999999999999".into())
        );
    }

    #[test]
    fn dot_disambiguation() {
        // `a.b` is ident dot ident; `.5` is a number.
        assert_eq!(
            toks("a.b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
        assert_eq!(toks(".5")[0], Tok::Number(".5".into()));
    }

    #[test]
    fn bag_digraphs() {
        assert_eq!(
            toks("{{1}}"),
            vec![Tok::LBagBrace, Tok::Int(1), Tok::RBagBrace, Tok::Eof]
        );
        assert_eq!(
            toks("<<1>>"),
            vec![Tok::LBagAngle, Tok::Int(1), Tok::RBagAngle, Tok::Eof]
        );
        assert_eq!(
            toks("{'a': 1}"),
            vec![
                Tok::LBrace,
                Tok::Str("a".into()),
                Tok::Colon,
                Tok::Int(1),
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 -- line comment\n + /* block /* nested */ */ 2"),
            vec![Tok::Int(1), Tok::Plus, Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<> != <= >= || = =="),
            vec![
                Tok::NotEq,
                Tok::NotEq,
                Tok::LtEq,
                Tok::GtEq,
                Tok::Concat,
                Tok::Eq,
                Tok::Eq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let err = lex("SELECT\n  #").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let err = lex("'unterminated").unwrap_err();
        assert!(err.to_string().contains("unterminated string"));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(toks("value")[0], Tok::Keyword(Keyword::Value));
        assert_eq!(toks("valuex")[0], Tok::Ident("valuex".into()));
        assert_eq!(toks("$var")[0], Tok::Ident("$var".into()));
    }
}
