//! Structured diagnostics for the front end.
//!
//! Every lex/parse error is a [`Diagnostic`]: a byte [`Span`], a stable
//! machine-readable code (`E_EXPECTED`, `E_DEPTH`, …), a human message,
//! the token classes that would have been accepted, and an optional
//! hint naming the clause being parsed when the error struck. The
//! recovering parser accumulates them in a [`Diagnostics`] sink instead
//! of bailing at the first failure, so one parse reports every broken
//! clause in a statement.

use std::fmt;

use crate::token::Span;

/// Stable diagnostic codes. Codes are part of the tool-facing API:
/// tests and downstream analyzers match on them, messages stay free to
/// improve.
pub mod codes {
    /// A character the lexer cannot start any token with.
    pub const E_CHAR: &str = "E_CHAR";
    /// Unterminated string, delimited identifier, backtick literal or
    /// block comment. The span points at the *opening* delimiter.
    pub const E_UNTERMINATED: &str = "E_UNTERMINATED";
    /// Invalid escape sequence inside a string literal.
    pub const E_ESCAPE: &str = "E_ESCAPE";
    /// Malformed numeric literal (e.g. exponent without digits).
    pub const E_NUMBER: &str = "E_NUMBER";
    /// The parser saw a token it did not expect.
    pub const E_EXPECTED: &str = "E_EXPECTED";
    /// Expression or query nesting exceeded the recursion guard.
    pub const E_DEPTH: &str = "E_DEPTH";
    /// Input continues after a complete statement.
    pub const E_TRAILING: &str = "E_TRAILING";
    /// Lowering (name resolution / clause legality) failure.
    pub const E_PLAN: &str = "E_PLAN";
    /// Runtime error surfaced by static analysis (unknown name/function).
    pub const E_NAME: &str = "E_NAME";
    /// Typechecker warning.
    pub const W_TYPE: &str = "W_TYPE";
}

/// One structured front-end error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Byte range of the offending token (half-open, `start == end` at EOF).
    pub span: Span,
    /// Stable machine-readable code from [`codes`].
    pub code: &'static str,
    /// Human-readable description (no position — the span carries it).
    pub message: String,
    /// Token classes that would have been accepted here, if known.
    pub expected: Vec<String>,
    /// Optional context hint, e.g. `while parsing the WHERE clause`.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no expectations and no hint.
    pub fn new(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            span,
            code,
            message: message.into(),
            expected: Vec::new(),
            hint: None,
        }
    }

    /// Attaches the list of acceptable token classes.
    #[must_use]
    pub fn with_expected(mut self, expected: Vec<String>) -> Self {
        self.expected = expected;
        self
    }

    /// Attaches a context hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// Renders this diagnostic with a caret-underlined source excerpt.
    ///
    /// ```text
    /// error[E_EXPECTED]: expected expression, found FROM at line 1, column 8
    ///   | SELECT FROM t AS t
    ///   |        ^^^^
    ///   = hint: while parsing the SELECT clause
    /// ```
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("error[{}]: {} at {}\n", self.code, self.message, self.span);
        let line_idx = (self.span.line as usize).saturating_sub(1);
        if let Some(line_text) = src.lines().nth(line_idx) {
            out.push_str("  | ");
            out.push_str(line_text);
            out.push('\n');
            out.push_str("  | ");
            for _ in 1..self.span.column {
                out.push(' ');
            }
            // Underline the full token where it fits on the line; always
            // at least one caret (EOF spans are empty).
            let width = self
                .span
                .end
                .saturating_sub(self.span.start)
                .min(
                    line_text
                        .len()
                        .saturating_sub(self.span.column as usize - 1),
                )
                .max(1);
            for _ in 0..width {
                out.push('^');
            }
            out.push('\n');
        }
        if !self.expected.is_empty() {
            out.push_str("  = expected: ");
            out.push_str(&self.expected.join(", "));
            out.push('\n');
        }
        if let Some(hint) = &self.hint {
            out.push_str("  = hint: ");
            out.push_str(hint);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} at {}", self.code, self.message, self.span)
    }
}

/// Hard cap on accumulated diagnostics: beyond this the parser stops
/// recovering and reports truncation instead of spamming one error per
/// token of garbage.
pub const MAX_DIAGNOSTICS: usize = 64;

/// An append-only diagnostic sink with two invariants the fuzz harness
/// relies on: at most [`MAX_DIAGNOSTICS`] entries, and no two entries
/// with overlapping spans (cascading errors at the same token collapse
/// into the first report).
#[derive(Debug, Default, Clone)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty sink.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Whether another diagnostic can still be recorded.
    pub fn has_room(&self) -> bool {
        self.items.len() < MAX_DIAGNOSTICS
    }

    /// Number of diagnostics recorded so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Records a diagnostic, dropping it silently if the sink is full or
    /// its span overlaps an already-reported one (a cascade of the same
    /// underlying mistake).
    pub fn push(&mut self, diag: Diagnostic) {
        if !self.has_room() {
            return;
        }
        let overlaps = self.items.iter().any(|d| spans_overlap(d.span, diag.span));
        if !overlaps {
            self.items.push(diag);
        }
    }

    /// The recorded diagnostics, in source order of discovery.
    pub fn as_slice(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Consumes the sink.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

/// Half-open byte-range overlap; empty spans (EOF) overlap nothing but
/// an identical empty span is treated as overlapping so repeated
/// at-end-of-input errors collapse into one.
fn spans_overlap(a: Span, b: Span) -> bool {
    if a.start == a.end && b.start == b.end {
        return a.start == b.start;
    }
    a.start < b.end && b.start < a.end
}

/// Renders a full multi-error report: each diagnostic caret-underlined,
/// followed by an error-count summary line.
pub fn render_report(src: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render(src));
    }
    if !diags.is_empty() {
        let n = diags.len();
        out.push_str(&format!(
            "{n} error{} found\n",
            if n == 1 { "" } else { "s" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(start: usize, end: usize, column: u32) -> Span {
        Span {
            start,
            end,
            line: 1,
            column,
        }
    }

    #[test]
    fn render_underlines_the_token() {
        let d = Diagnostic::new(
            codes::E_EXPECTED,
            "expected expression, found FROM",
            sp(7, 11, 8),
        )
        .with_expected(vec!["expression".into()])
        .with_hint("while parsing the SELECT clause");
        let r = d.render("SELECT FROM t AS t");
        assert!(r.contains("error[E_EXPECTED]"));
        assert!(r.contains("line 1, column 8"));
        assert!(r.contains("^^^^"));
        assert!(r.contains("= expected: expression"));
        assert!(r.contains("= hint: while parsing the SELECT clause"));
    }

    #[test]
    fn sink_drops_overlapping_spans() {
        let mut sink = Diagnostics::new();
        sink.push(Diagnostic::new(codes::E_EXPECTED, "a", sp(0, 4, 1)));
        sink.push(Diagnostic::new(codes::E_EXPECTED, "b", sp(2, 6, 3)));
        sink.push(Diagnostic::new(codes::E_EXPECTED, "c", sp(4, 8, 5)));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.as_slice()[1].message, "c");
    }

    #[test]
    fn sink_collapses_repeated_eof_errors() {
        let mut sink = Diagnostics::new();
        sink.push(Diagnostic::new(codes::E_EXPECTED, "a", sp(9, 9, 10)));
        sink.push(Diagnostic::new(codes::E_EXPECTED, "b", sp(9, 9, 10)));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn sink_respects_the_cap() {
        let mut sink = Diagnostics::new();
        for i in 0..(MAX_DIAGNOSTICS + 10) {
            sink.push(Diagnostic::new(
                codes::E_EXPECTED,
                "x",
                sp(i * 2, i * 2 + 1, 1),
            ));
        }
        assert_eq!(sink.len(), MAX_DIAGNOSTICS);
        assert!(!sink.has_room());
    }

    #[test]
    fn report_counts_errors() {
        let diags = vec![
            Diagnostic::new(codes::E_EXPECTED, "a", sp(0, 1, 1)),
            Diagnostic::new(codes::E_DEPTH, "b", sp(4, 5, 5)),
        ];
        let report = render_report("ab cd", &diags);
        assert!(report.contains("2 errors found"));
    }
}
