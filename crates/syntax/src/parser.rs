//! The SQL++ parser: recursive descent over clauses, Pratt precedence over
//! expressions.
//!
//! Both clause orders parse (§V-B): `SELECT … FROM …` and
//! `FROM … [WHERE …] [GROUP BY …] [HAVING …] SELECT …`. `PIVOT v AT n` is
//! accepted wherever a SELECT clause is (§VI-B). The grammar follows the
//! paper's examples and fills gaps with PartiQL's published grammar.

use crate::ast::*;
use crate::diag::{codes, Diagnostic, Diagnostics};
use crate::error::SyntaxError;
use crate::lexer::{lex, lex_recovering};
use crate::token::{Keyword as K, Span, Tok, Token};

/// Parses a single statement (query or Hive-style CREATE TABLE).
pub fn parse_statement(src: &str) -> Result<Statement, SyntaxError> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.eat(&Tok::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a query expression.
pub fn parse_query(src: &str) -> Result<Query, SyntaxError> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    p.eat(&Tok::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

/// Parses a standalone expression (useful for tests and the REPL).
pub fn parse_expr(src: &str) -> Result<Expr, SyntaxError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// The result of a recovering parse: a (possibly partial) AST when any
/// shape could be salvaged, plus *every* diagnostic found. `diags` is
/// empty exactly when the strict parse would have succeeded, and the
/// AST is then byte-identical to the strict parse's (the recovery
/// machinery only engages on error paths).
#[derive(Debug, Clone)]
pub struct Recovered<T> {
    /// The salvaged AST — `None` only when nothing parseable remained.
    pub ast: Option<T>,
    /// All diagnostics, in discovery order.
    pub diags: Vec<Diagnostic>,
}

impl<T> Recovered<T> {
    /// True when the parse was clean.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }
}

/// Parses a statement with error recovery: on failure the parser
/// synchronizes to the next clause/statement boundary (SELECT, FROM,
/// WHERE, GROUP, ORDER, LIMIT, `;`, …) and keeps going, accumulating
/// every diagnostic instead of bailing at the first.
pub fn parse_statement_recovering(src: &str) -> Recovered<Statement> {
    let mut p = Parser::new_recovering(src);
    let ast = match p.statement() {
        Ok(stmt) => Some(stmt),
        Err(e) => {
            p.report(e);
            None
        }
    };
    p.finish_recovering(ast)
}

/// Parses a query with error recovery (see [`parse_statement_recovering`]).
pub fn parse_query_recovering(src: &str) -> Recovered<Query> {
    let mut p = Parser::new_recovering(src);
    let ast = match p.query() {
        Ok(q) => Some(q),
        Err(e) => {
            p.report(e);
            None
        }
    };
    p.finish_recovering(ast)
}

/// Parses a standalone expression with error recovery.
pub fn parse_expr_recovering(src: &str) -> Recovered<Expr> {
    let mut p = Parser::new_recovering(src);
    let ast = match p.expr() {
        Ok(e) => Some(e),
        Err(e) => {
            p.report(e);
            None
        }
    };
    if *p.peek() != Tok::Eof {
        let e = p.err_trailing();
        p.report(e);
    }
    Recovered {
        ast,
        diags: p.diags.into_vec(),
    }
}

/// `(order_by, limit, offset)` trailing-modifier triple.
type TrailingMods = (Vec<OrderItem>, Option<Expr>, Option<Expr>);

/// Recursion guard: expressions and queries nest through recursive
/// descent, so adversarially deep inputs must be rejected before they
/// exhaust the stack. Each nesting level costs ~12 stack frames (one per
/// precedence tier), so 64 keeps even debug-profile test threads (2 MB
/// stacks) safe while comfortably exceeding any real query's nesting.
const MAX_DEPTH: usize = 48;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
    depth: usize,
    /// When set, clause-level failures synchronize and continue instead
    /// of propagating; `diags` collects everything found.
    recover: bool,
    diags: Diagnostics,
    /// Clause-context stack (`push_context` per clause): error messages
    /// and hints name the innermost clause being parsed when they fire.
    ctx: Vec<&'static str>,
}

impl Parser {
    fn new(src: &str) -> Result<Self, SyntaxError> {
        Ok(Parser {
            tokens: lex(src)?,
            pos: 0,
            params: 0,
            depth: 0,
            recover: false,
            diags: Diagnostics::new(),
            ctx: Vec::new(),
        })
    }

    /// A parser that accumulates diagnostics and recovers at clause
    /// boundaries. Lexer diagnostics are seeded into the sink; the token
    /// stream is whatever the recovering lexer salvaged.
    fn new_recovering(src: &str) -> Self {
        let (tokens, lex_diags) = lex_recovering(src);
        let mut diags = Diagnostics::new();
        for d in lex_diags {
            diags.push(d);
        }
        Parser {
            tokens,
            pos: 0,
            params: 0,
            depth: 0,
            recover: true,
            diags,
            ctx: Vec::new(),
        }
    }

    /// Shared tail of the recovering entry points: reports trailing
    /// input, guarantees at least one diagnostic whenever the strict
    /// parse would have failed, and yields the final [`Recovered`].
    fn finish_recovering<T>(mut self, ast: Option<T>) -> Recovered<T> {
        self.eat(&Tok::Semicolon);
        if *self.peek() != Tok::Eof {
            let e = self.err_trailing();
            self.report(e);
        }
        Recovered {
            ast,
            diags: self.diags.into_vec(),
        }
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: K) -> bool {
        self.eat(&Tok::Keyword(kw))
    }

    fn at_kw(&self, kw: K) -> bool {
        *self.peek() == Tok::Keyword(kw)
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), SyntaxError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err_expecting(
                format!("expected {tok}, found {}", self.peek()),
                vec![tok.to_string()],
            ))
        }
    }

    fn expect_kw(&mut self, kw: K) -> Result<(), SyntaxError> {
        self.expect(&Tok::Keyword(kw))
    }

    fn expect_eof(&mut self) -> Result<(), SyntaxError> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.err_trailing())
        }
    }

    fn err_trailing(&self) -> SyntaxError {
        let diag = Diagnostic::new(
            codes::E_TRAILING,
            format!("unexpected trailing input: {}", self.peek()),
            self.span(),
        )
        .with_hint("a complete statement was already parsed before this point");
        SyntaxError::from_diagnostic(diag)
    }

    fn err(&self, msg: impl Into<String>) -> SyntaxError {
        self.err_expecting(msg, Vec::new())
    }

    /// Builds an `E_EXPECTED` error at the current token, carrying the
    /// acceptable-token list and a hint naming the innermost clause.
    fn err_expecting(&self, msg: impl Into<String>, expected: Vec<String>) -> SyntaxError {
        let mut diag = Diagnostic::new(codes::E_EXPECTED, msg, self.span()).with_expected(expected);
        if let Some(ctx) = self.ctx.last() {
            diag = diag.with_hint(format!("while parsing the {ctx}"));
        }
        SyntaxError::from_diagnostic(diag)
    }

    /// Builds an `E_DEPTH` error for the recursion guards.
    fn err_depth(&self, msg: &str) -> SyntaxError {
        let diag = Diagnostic::new(codes::E_DEPTH, msg, self.span())
            .with_hint("the recursion guard caps nesting; flatten the query");
        SyntaxError::from_diagnostic(diag)
    }

    /// An identifier-shaped token: regular or quoted. Non-reserved keywords
    /// are not modeled; the keyword set is kept minimal instead.
    fn ident(&mut self) -> Result<String, SyntaxError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            Tok::QuotedIdent(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err_expecting(
                format!("expected identifier, found {other}"),
                vec!["identifier".into()],
            )),
        }
    }

    // ------------------------------------------------------------------
    // Error recovery
    // ------------------------------------------------------------------

    /// Records a diagnostic in the sink.
    fn report(&mut self, e: SyntaxError) {
        self.diags.push(e.into_diagnostic());
    }

    /// Runs `f` with `name` pushed on the clause-context stack, so any
    /// error raised inside names the clause it was parsing.
    fn with_ctx<T>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&mut Self) -> Result<T, SyntaxError>,
    ) -> Result<T, SyntaxError> {
        self.ctx.push(name);
        let r = f(self);
        self.ctx.pop();
        r
    }

    /// Is the current token a synchronization point — the start of the
    /// next clause, statement, or an enclosing delimiter?
    fn at_boundary(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Eof
                | Tok::Semicolon
                | Tok::RParen
                | Tok::Keyword(
                    K::Select
                        | K::Pivot
                        | K::From
                        | K::Where
                        | K::Group
                        | K::Having
                        | K::Order
                        | K::Limit
                        | K::Offset
                        | K::Union
                        | K::Except
                        | K::Intersect
                )
        )
    }

    /// Panic-mode synchronization: skip tokens until the next clause or
    /// statement boundary.
    fn sync_to_boundary(&mut self) {
        while !self.at_boundary() {
            self.bump();
        }
    }

    /// The recovery wrapper around one clause (or clause-sized region).
    /// In strict mode it is a no-op pass-through. In recovering mode, a
    /// failure inside `f` is recorded, the parser synchronizes to the
    /// next boundary, and `fallback` stands in for the clause so the
    /// parse continues with a partial AST. Forced progress: if `f`
    /// consumed nothing, one token is skipped before syncing, so a loop
    /// of failing clauses always advances.
    fn recovering<T>(
        &mut self,
        name: &'static str,
        fallback: impl FnOnce() -> T,
        f: impl FnOnce(&mut Self) -> Result<T, SyntaxError>,
    ) -> Result<T, SyntaxError> {
        if !self.recover {
            return self.with_ctx(name, f);
        }
        let start = self.pos;
        match self.with_ctx(name, f) {
            Ok(v) => Ok(v),
            Err(e) => {
                // Sink full: stop recovering, let the entry point bail.
                if !self.diags.has_room() {
                    return Err(e);
                }
                self.report(e);
                if self.pos == start && !self.at_boundary() {
                    self.bump();
                }
                self.sync_to_boundary();
                Ok(fallback())
            }
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, SyntaxError> {
        if self.at_kw(K::Create) {
            let ct = self.with_ctx("CREATE TABLE statement", Parser::create_table)?;
            Ok(Statement::CreateTable(ct))
        } else if self.at_kw(K::Insert) {
            let ins = self.with_ctx("INSERT statement", Parser::insert)?;
            Ok(Statement::Insert(ins))
        } else if self.at_kw(K::Delete) {
            let del = self.with_ctx("DELETE statement", Parser::delete)?;
            Ok(Statement::Delete(del))
        } else if self.at_kw(K::Update) {
            let upd = self.with_ctx("UPDATE statement", Parser::update)?;
            Ok(Statement::Update(upd))
        } else if self.eat_kw(K::Explain) {
            let analyze = self.eat_kw(K::Analyze);
            Ok(Statement::Explain {
                analyze,
                query: Box::new(self.query()?),
            })
        } else {
            Ok(Statement::Query(self.query()?))
        }
    }

    fn dotted_name(&mut self) -> Result<Vec<String>, SyntaxError> {
        let mut name = vec![self.ident()?];
        while self.eat(&Tok::Dot) {
            name.push(self.ident()?);
        }
        Ok(name)
    }

    fn insert(&mut self) -> Result<Insert, SyntaxError> {
        self.expect_kw(K::Insert)?;
        self.expect_kw(K::Into)?;
        let target = self.dotted_name()?;
        let source = if self.eat_kw(K::Value) {
            InsertSource::Value(self.expr()?)
        } else {
            InsertSource::Query(Box::new(self.query()?))
        };
        Ok(Insert { target, source })
    }

    fn delete(&mut self) -> Result<Delete, SyntaxError> {
        self.expect_kw(K::Delete)?;
        self.expect_kw(K::From)?;
        let target = self.dotted_name()?;
        let alias = if self.eat_kw(K::As) || matches!(self.peek(), Tok::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        let where_clause = if self.eat_kw(K::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Delete {
            target,
            alias,
            where_clause,
        })
    }

    fn update(&mut self) -> Result<Update, SyntaxError> {
        self.expect_kw(K::Update)?;
        let target = self.dotted_name()?;
        let alias = if self.eat_kw(K::As)
            || (matches!(self.peek(), Tok::Ident(_)) && *self.peek_at(1) == Tok::Keyword(K::Set))
        {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect_kw(K::Set)?;
        let mut assignments = Vec::new();
        loop {
            let path = self.postfix()?;
            self.expect(&Tok::Eq)?;
            let value = self.expr()?;
            assignments.push((path, value));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw(K::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Update {
            target,
            alias,
            assignments,
            where_clause,
        })
    }

    fn create_table(&mut self) -> Result<CreateTable, SyntaxError> {
        self.expect_kw(K::Create)?;
        self.expect_kw(K::Table)?;
        let mut name = vec![self.ident()?];
        while self.eat(&Tok::Dot) {
            name.push(self.ident()?);
        }
        self.expect(&Tok::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.type_expr()?;
            columns.push((col, ty));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(CreateTable { name, columns })
    }

    fn type_expr(&mut self) -> Result<TypeExpr, SyntaxError> {
        let name = self.ident()?.to_ascii_uppercase();
        match name.as_str() {
            "ARRAY" => {
                self.expect(&Tok::Lt)?;
                let inner = self.type_expr()?;
                self.close_type_angle()?;
                Ok(TypeExpr::Array(Box::new(inner)))
            }
            "BAG" => {
                self.expect(&Tok::Lt)?;
                let inner = self.type_expr()?;
                self.close_type_angle()?;
                Ok(TypeExpr::Bag(Box::new(inner)))
            }
            "UNIONTYPE" => {
                self.expect(&Tok::Lt)?;
                let mut alts = vec![self.type_expr()?];
                while self.eat(&Tok::Comma) {
                    alts.push(self.type_expr()?);
                }
                self.close_type_angle()?;
                Ok(TypeExpr::Union(alts))
            }
            "STRUCT" => {
                self.expect(&Tok::Lt)?;
                let mut fields = Vec::new();
                loop {
                    let fname = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    fields.push((fname, self.type_expr()?));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.close_type_angle()?;
                Ok(TypeExpr::Struct(fields))
            }
            _ => {
                // Multi-word scalar types: DOUBLE PRECISION etc. collapse
                // to their first word; optional (p[, s]) is parsed and
                // discarded (precision is not modeled).
                if self.eat(&Tok::LParen) {
                    while !self.eat(&Tok::RParen) {
                        self.bump();
                    }
                }
                Ok(TypeExpr::Named(name))
            }
        }
    }

    /// Closes a `<…>` type bracket, splitting a lexed `>>` digraph back
    /// into two closing angles when type nesting requires it.
    fn close_type_angle(&mut self) -> Result<(), SyntaxError> {
        match self.peek().clone() {
            Tok::Gt => {
                self.bump();
                Ok(())
            }
            Tok::RBagAngle => {
                // Replace `>>` by a single remaining `>`.
                self.tokens[self.pos].tok = Tok::Gt;
                Ok(())
            }
            other => Err(self.err(format!("expected '>' to close type, found {other}"))),
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Entry: guarded against pathological nesting depth — subqueries
    /// nest through `FROM (…)`, CTE bodies, and parenthesized set
    /// operands *without* passing through `expr`, so the query level
    /// shares the same depth budget.
    fn query(&mut self) -> Result<Query, SyntaxError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(self.err_depth("query nesting too deep"));
        }
        let r = self.query_inner();
        self.depth -= 1;
        r
    }

    fn query_inner(&mut self) -> Result<Query, SyntaxError> {
        let mut ctes = Vec::new();
        if self.eat_kw(K::With) {
            ctes = self.recovering("WITH clause", Vec::new, |p| {
                let mut ctes = Vec::new();
                loop {
                    let name = p.ident()?;
                    p.expect_kw(K::As)?;
                    p.expect(&Tok::LParen)?;
                    let q = p.query()?;
                    p.expect(&Tok::RParen)?;
                    ctes.push(Cte {
                        name,
                        query: Box::new(q),
                    });
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                Ok(ctes)
            })?;
        }
        let body = self.recovering(
            "query body",
            || SetExpr::Block(Box::new(QueryBlock::with_select(empty_select()))),
            Parser::set_expr,
        )?;
        let (order_by, limit, offset) = self.trailing_modifiers()?;
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn trailing_modifiers(&mut self) -> Result<TrailingMods, SyntaxError> {
        let mut order_by = Vec::new();
        if self.eat_kw(K::Order) {
            order_by = self.recovering("ORDER BY clause", Vec::new, |p| {
                p.expect_kw(K::By)?;
                let mut items = Vec::new();
                loop {
                    items.push(p.order_item()?);
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                Ok(items)
            })?;
        }
        let mut limit = None;
        let mut offset = None;
        loop {
            if limit.is_none() && self.eat_kw(K::Limit) {
                limit = self.recovering("LIMIT clause", || None, |p| p.expr().map(Some))?;
            } else if offset.is_none() && self.eat_kw(K::Offset) {
                offset = self.recovering("OFFSET clause", || None, |p| p.expr().map(Some))?;
            } else {
                break;
            }
        }
        Ok((order_by, limit, offset))
    }

    fn order_item(&mut self) -> Result<OrderItem, SyntaxError> {
        let expr = self.expr()?;
        let desc = if self.eat_kw(K::Desc) {
            true
        } else {
            self.eat_kw(K::Asc);
            false
        };
        let nulls_first = if self.eat_kw(K::Nulls) {
            if self.eat_kw(K::First) {
                Some(true)
            } else {
                self.expect_kw(K::Last)?;
                Some(false)
            }
        } else {
            None
        };
        Ok(OrderItem {
            expr,
            desc,
            nulls_first,
        })
    }

    /// Set expressions with standard precedence: INTERSECT binds tighter
    /// than UNION/EXCEPT; all left-associative.
    fn set_expr(&mut self) -> Result<SetExpr, SyntaxError> {
        let mut left = self.set_operand()?;
        loop {
            let op = if self.at_kw(K::Union) {
                SetOp::Union
            } else if self.at_kw(K::Except) {
                SetOp::Except
            } else {
                break;
            };
            self.bump();
            let all = self.eat_kw(K::All);
            if !all {
                self.eat_kw(K::Distinct);
            }
            let right = self.set_operand()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn set_operand(&mut self) -> Result<SetExpr, SyntaxError> {
        let mut left = self.set_primary()?;
        while self.at_kw(K::Intersect) {
            self.bump();
            let all = self.eat_kw(K::All);
            if !all {
                self.eat_kw(K::Distinct);
            }
            let right = self.set_primary()?;
            left = SetExpr::SetOp {
                op: SetOp::Intersect,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn set_primary(&mut self) -> Result<SetExpr, SyntaxError> {
        if *self.peek() == Tok::LParen && self.starts_query(1) {
            self.bump();
            let inner = self.set_expr()?;
            self.expect(&Tok::RParen)?;
            return Ok(inner);
        }
        Ok(SetExpr::Block(Box::new(self.query_block()?)))
    }

    /// Does a query start at lookahead offset `n`? (Used to distinguish a
    /// parenthesized subquery from a parenthesized expression.)
    fn starts_query(&self, n: usize) -> bool {
        matches!(
            self.peek_at(n),
            Tok::Keyword(K::Select)
                | Tok::Keyword(K::From)
                | Tok::Keyword(K::Pivot)
                | Tok::Keyword(K::With)
                | Tok::Keyword(K::Values)
        ) || (*self.peek_at(n) == Tok::LParen && {
            // Nested parens: scan inward (bounded).
            let mut i = n;
            while *self.peek_at(i) == Tok::LParen && i < n + 8 {
                i += 1;
            }
            matches!(
                self.peek_at(i),
                Tok::Keyword(K::Select)
                    | Tok::Keyword(K::From)
                    | Tok::Keyword(K::Pivot)
                    | Tok::Keyword(K::With)
                    | Tok::Keyword(K::Values)
            )
        })
    }

    /// One query block, in either clause order.
    fn query_block(&mut self) -> Result<QueryBlock, SyntaxError> {
        if self.at_kw(K::Select) || self.at_kw(K::Pivot) {
            let name = if self.at_kw(K::Pivot) {
                "PIVOT clause"
            } else {
                "SELECT clause"
            };
            let select = self.recovering(name, empty_select, Parser::select_clause)?;
            let mut block = self.clause_tail(SelectPlacement::Leading)?;
            block.select = select;
            Ok(block)
        } else if self.at_kw(K::From) {
            let mut block = self.clause_tail(SelectPlacement::Trailing)?;
            if self.at_kw(K::Select) || self.at_kw(K::Pivot) {
                let name = if self.at_kw(K::Pivot) {
                    "PIVOT clause"
                } else {
                    "SELECT clause"
                };
                block.select = self.recovering(name, empty_select, Parser::select_clause)?;
                // HAVING may legally follow a trailing SELECT? No — the
                // paper's pipeline is FROM..GROUP..HAVING..SELECT. But
                // block-level ORDER BY/LIMIT inside parens attach here.
            } else {
                let e = self.err_expecting(
                    "query block starting with FROM must end with SELECT or PIVOT",
                    vec!["SELECT".into(), "PIVOT".into()],
                );
                if self.recover && self.diags.has_room() {
                    // Partial AST: keep the clauses we already parsed.
                    self.report(e);
                } else {
                    return Err(e);
                }
            }
            Ok(block)
        } else if self.at_kw(K::Values) {
            // VALUES (e, …), … — SQL compatibility: a bag of tuples with
            // positional attribute names _1, _2, … is unconventional; we
            // model VALUES rows as arrays, matching PartiQL.
            self.bump();
            let rows = self.recovering("VALUES clause", Vec::new, |p| {
                let mut rows = Vec::new();
                loop {
                    p.expect(&Tok::LParen)?;
                    let mut row = vec![p.expr()?];
                    while p.eat(&Tok::Comma) {
                        row.push(p.expr()?);
                    }
                    p.expect(&Tok::RParen)?;
                    rows.push(Expr::ArrayCtor(row));
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                Ok(rows)
            })?;
            // Desugar to `FROM <<row, …>> AS $values SELECT VALUE $values`
            // so each row becomes one output element.
            let mut block = QueryBlock::with_select(SelectClause::SelectValue {
                quantifier: SetQuantifier::All,
                expr: Expr::var("$values"),
            });
            block.from.push(FromItem::Collection {
                expr: Expr::BagCtor(rows),
                as_var: Some("$values".to_string()),
                at_var: None,
            });
            block.placement = SelectPlacement::Leading;
            Ok(block)
        } else {
            Err(self.err(format!(
                "expected SELECT, FROM, PIVOT or VALUES, found {}",
                self.peek()
            )))
        }
    }

    /// Parses FROM/LET/WHERE/GROUP BY/HAVING in order.
    fn clause_tail(&mut self, placement: SelectPlacement) -> Result<QueryBlock, SyntaxError> {
        let mut block = QueryBlock::with_select(SelectClause::Select {
            quantifier: SetQuantifier::All,
            items: Vec::new(),
        });
        block.placement = placement;
        if self.eat_kw(K::From) {
            block.from = self.recovering("FROM clause", Vec::new, |p| {
                let mut items = Vec::new();
                loop {
                    items.push(p.from_item()?);
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                Ok(items)
            })?;
        }
        // LET (extension): `LET v = expr, …` — lexed as the identifier
        // `LET` since it is not reserved.
        while let Tok::Ident(word) = self.peek() {
            if !word.eq_ignore_ascii_case("let") {
                break;
            }
            // Only treat as LET when followed by `ident =`.
            if !matches!(self.peek_at(1), Tok::Ident(_) | Tok::QuotedIdent(_))
                || *self.peek_at(2) != Tok::Eq
            {
                break;
            }
            self.bump();
            let lets = self.recovering("LET clause", Vec::new, |p| {
                let mut lets = Vec::new();
                loop {
                    let name = p.ident()?;
                    p.expect(&Tok::Eq)?;
                    let expr = p.expr()?;
                    lets.push(LetBinding { name, expr });
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                Ok(lets)
            })?;
            block.lets.extend(lets);
        }
        if self.eat_kw(K::Where) {
            block.where_clause =
                self.recovering("WHERE clause", || None, |p| p.expr().map(Some))?;
        }
        if self.at_kw(K::Group) && *self.peek_at(1) == Tok::Keyword(K::By) {
            self.bump();
            self.bump();
            block.group_by = self.recovering(
                "GROUP BY clause",
                || None,
                |p| {
                    let (keys, modifier) = p.group_keys()?;
                    let group_as = if p.at_kw(K::Group) && *p.peek_at(1) == Tok::Keyword(K::As) {
                        p.bump();
                        p.bump();
                        Some(p.ident()?)
                    } else {
                        None
                    };
                    Ok(Some(GroupBy {
                        keys,
                        modifier,
                        group_as,
                    }))
                },
            )?;
        }
        if self.eat_kw(K::Having) {
            block.having = self.recovering("HAVING clause", || None, |p| p.expr().map(Some))?;
        }
        Ok(block)
    }

    /// Parses the key list of a GROUP BY, including the analytical
    /// modifiers ROLLUP/CUBE/GROUPING SETS (contextual words, not reserved
    /// keywords).
    fn group_keys(&mut self) -> Result<(Vec<GroupKeyExpr>, GroupModifier), SyntaxError> {
        let ctx_word =
            |tok: &Tok, word: &str| matches!(tok, Tok::Ident(w) if w.eq_ignore_ascii_case(word));
        if ctx_word(self.peek(), "rollup") && *self.peek_at(1) == Tok::LParen {
            self.bump();
            let keys = self.paren_key_list()?;
            return Ok((keys, GroupModifier::Rollup));
        }
        if ctx_word(self.peek(), "cube") && *self.peek_at(1) == Tok::LParen {
            self.bump();
            let keys = self.paren_key_list()?;
            return Ok((keys, GroupModifier::Cube));
        }
        if ctx_word(self.peek(), "grouping")
            && ctx_word(self.peek_at(1), "sets")
            && *self.peek_at(2) == Tok::LParen
        {
            self.bump();
            self.bump();
            self.expect(&Tok::LParen)?;
            // Each set: (key, …) or a bare key; keys are pooled by AST
            // equality across sets.
            let mut keys: Vec<GroupKeyExpr> = Vec::new();
            let mut sets: Vec<Vec<usize>> = Vec::new();
            loop {
                let mut set = Vec::new();
                if self.eat(&Tok::LParen) {
                    if *self.peek() != Tok::RParen {
                        loop {
                            set.push(self.pool_group_key(&mut keys)?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                } else {
                    set.push(self.pool_group_key(&mut keys)?);
                }
                sets.push(set);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            return Ok((keys, GroupModifier::GroupingSets(sets)));
        }
        let mut keys = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw(K::As) {
                Some(self.ident()?)
            } else {
                None
            };
            keys.push(GroupKeyExpr { expr, alias });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok((keys, GroupModifier::Plain))
    }

    fn paren_key_list(&mut self) -> Result<Vec<GroupKeyExpr>, SyntaxError> {
        self.expect(&Tok::LParen)?;
        let mut keys = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw(K::As) {
                Some(self.ident()?)
            } else {
                None
            };
            keys.push(GroupKeyExpr { expr, alias });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(keys)
    }

    /// Parses one grouping-set member and returns its index in the pooled
    /// key list (inserting if new).
    fn pool_group_key(&mut self, keys: &mut Vec<GroupKeyExpr>) -> Result<usize, SyntaxError> {
        let expr = self.expr()?;
        let alias = if self.eat_kw(K::As) {
            Some(self.ident()?)
        } else {
            None
        };
        if let Some(i) = keys.iter().position(|k| k.expr == expr) {
            return Ok(i);
        }
        keys.push(GroupKeyExpr { expr, alias });
        Ok(keys.len() - 1)
    }

    fn select_clause(&mut self) -> Result<SelectClause, SyntaxError> {
        if self.eat_kw(K::Pivot) {
            let value = self.expr()?;
            self.expect_kw(K::At)?;
            let name = self.expr()?;
            return Ok(SelectClause::Pivot { value, name });
        }
        self.expect_kw(K::Select)?;
        let quantifier = if self.eat_kw(K::Distinct) {
            SetQuantifier::Distinct
        } else {
            self.eat_kw(K::All);
            SetQuantifier::All
        };
        if self.eat_kw(K::Value) {
            let expr = self.expr()?;
            return Ok(SelectClause::SelectValue { quantifier, expr });
        }
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(SelectClause::Select { quantifier, items })
    }

    fn select_item(&mut self) -> Result<SelectItem, SyntaxError> {
        if self.eat(&Tok::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let Tok::Ident(name) = self.peek().clone() {
            if *self.peek_at(1) == Tok::Dot && *self.peek_at(2) == Tok::Star {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(K::As) {
            Some(self.ident()?)
        } else if matches!(self.peek(), Tok::Ident(_) | Tok::QuotedIdent(_)) {
            // Bare alias (SQL permits omitting AS).
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ------------------------------------------------------------------
    // FROM items
    // ------------------------------------------------------------------

    #[allow(clippy::wrong_self_convention)] // "from" is the SQL clause, not a conversion
    fn from_item(&mut self) -> Result<FromItem, SyntaxError> {
        let mut left = self.join_operand()?;
        loop {
            let kind = if self.at_kw(K::Cross) && *self.peek_at(1) == Tok::Keyword(K::Join) {
                self.bump();
                self.bump();
                JoinKind::Cross
            } else if self.at_kw(K::Inner) && *self.peek_at(1) == Tok::Keyword(K::Join) {
                self.bump();
                self.bump();
                JoinKind::Inner
            } else if self.at_kw(K::Left) {
                self.bump();
                self.eat_kw(K::Outer);
                self.expect_kw(K::Join)?;
                JoinKind::Left
            } else if self.at_kw(K::Right) {
                self.bump();
                self.eat_kw(K::Outer);
                self.expect_kw(K::Join)?;
                JoinKind::Right
            } else if self.at_kw(K::Full) {
                self.bump();
                self.eat_kw(K::Outer);
                self.expect_kw(K::Join)?;
                JoinKind::Full
            } else if self.at_kw(K::Join) {
                self.bump();
                JoinKind::Inner
            } else {
                break;
            };
            let right = self.join_operand()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.with_ctx("join ON condition", |p| {
                    p.expect_kw(K::On)?;
                    p.expr().map(Some)
                })?
            };
            left = FromItem::Join {
                kind,
                left: Box::new(left),
                right: Box::new(right),
                on,
            };
        }
        Ok(left)
    }

    fn join_operand(&mut self) -> Result<FromItem, SyntaxError> {
        if self.eat_kw(K::Unpivot) {
            let expr = self.expr()?;
            self.expect_kw(K::As)?;
            let value_var = self.ident()?;
            self.expect_kw(K::At)?;
            let name_var = self.ident()?;
            return Ok(FromItem::Unpivot {
                expr,
                value_var,
                name_var,
            });
        }
        self.eat_kw(K::Lateral); // left-correlation is the default; accept the keyword
        let expr = self.expr()?;
        let as_var = if self.eat_kw(K::As) || matches!(self.peek(), Tok::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        let at_var = if self.eat_kw(K::At) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(FromItem::Collection {
            expr,
            as_var,
            at_var,
        })
    }

    // ------------------------------------------------------------------
    // Expressions (Pratt)
    // ------------------------------------------------------------------

    /// Entry: OR level, guarded against pathological nesting depth.
    pub(crate) fn expr(&mut self) -> Result<Expr, SyntaxError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(self.err_depth("expression nesting too deep"));
        }
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut left = self.and_expr()?;
        while self.eat_kw(K::Or) {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut left = self.not_expr()?;
        while self.eat_kw(K::And) {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SyntaxError> {
        if self.eat_kw(K::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::Un {
                op: UnOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, SyntaxError> {
        let left = self.additive()?;
        // Comparison and the SQL predicates live at the same level and do
        // not chain (a = b = c is rejected by virtue of returning early).
        let op = match self.peek() {
            Tok::Eq => Some(BinOp::Eq),
            Tok::NotEq => Some(BinOp::NotEq),
            Tok::Lt => Some(BinOp::Lt),
            Tok::LtEq => Some(BinOp::LtEq),
            Tok::Gt => Some(BinOp::Gt),
            Tok::GtEq => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.additive()?;
            return Ok(Expr::bin(op, left, right));
        }
        // Postfix predicates, possibly prefixed by NOT.
        let negated = if self.at_kw(K::Not)
            && matches!(
                self.peek_at(1),
                Tok::Keyword(K::Like) | Tok::Keyword(K::Between) | Tok::Keyword(K::In)
            ) {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw(K::Like) {
            let pattern = self.additive()?;
            let escape = if self.eat_kw(K::Escape) {
                Some(Box::new(self.additive()?))
            } else {
                None
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                escape,
                negated,
            });
        }
        if self.eat_kw(K::Between) {
            let low = self.additive()?;
            self.expect_kw(K::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(K::In) {
            let rhs = if *self.peek() == Tok::LParen && !self.starts_query(1) {
                self.bump();
                let mut list = vec![self.expr()?];
                while self.eat(&Tok::Comma) {
                    list.push(self.expr()?);
                }
                self.expect(&Tok::RParen)?;
                InRhs::List(list)
            } else {
                InRhs::Expr(self.additive()?)
            };
            return Ok(Expr::In {
                expr: Box::new(left),
                rhs: Box::new(rhs),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected LIKE, BETWEEN or IN after NOT"));
        }
        if self.eat_kw(K::Is) {
            let negated = self.eat_kw(K::Not);
            let test = if self.eat_kw(K::Null) {
                IsTest::Null
            } else if self.eat_kw(K::Missing) {
                IsTest::Missing
            } else {
                IsTest::Type(self.ident()?.to_ascii_uppercase())
            };
            return Ok(Expr::Is {
                expr: Box::new(left),
                test,
                negated,
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, SyntaxError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                Tok::Concat => BinOp::Concat,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, SyntaxError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, SyntaxError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                // Fold literal negation for nicer ASTs.
                if let Expr::Lit(Lit::Int(v)) = e {
                    return Ok(Expr::Lit(Lit::Int(-v)));
                }
                if let Expr::Lit(Lit::Decimal(d)) = e {
                    return Ok(Expr::Lit(Lit::Decimal(-d)));
                }
                if let Expr::Lit(Lit::Float(f)) = e {
                    return Ok(Expr::Lit(Lit::Float(-f)));
                }
                Ok(Expr::Un {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                })
            }
            Tok::Plus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Un {
                    op: UnOp::Pos,
                    expr: Box::new(e),
                })
            }
            _ => self.postfix(),
        }
    }

    /// A primary followed by path steps.
    fn postfix(&mut self) -> Result<Expr, SyntaxError> {
        let mut e = self.primary()?;
        loop {
            if self.eat(&Tok::Dot) {
                let attr = match self.peek().clone() {
                    Tok::Ident(s) => {
                        self.bump();
                        s
                    }
                    Tok::QuotedIdent(s) => {
                        self.bump();
                        s
                    }
                    // Permit keyword-looking attribute names after a dot,
                    // e.g. `c.value`.
                    Tok::Keyword(k) => {
                        self.bump();
                        k.as_str().to_ascii_lowercase()
                    }
                    other => {
                        return Err(
                            self.err(format!("expected attribute name after '.', found {other}"))
                        );
                    }
                };
                match &mut e {
                    Expr::Path { steps, .. } => steps.push(PathStep::Attr(attr)),
                    _ => {
                        e = wrap_path(e, PathStep::Attr(attr));
                    }
                }
            } else if *self.peek() == Tok::LBracket {
                self.bump();
                let idx = self.expr()?;
                self.expect(&Tok::RBracket)?;
                match &mut e {
                    Expr::Path { steps, .. } => {
                        steps.push(PathStep::Index(Box::new(idx)));
                    }
                    _ => {
                        e = wrap_path(e, PathStep::Index(Box::new(idx)));
                    }
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, SyntaxError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Lit(Lit::Int(v)))
            }
            Tok::Number(text) => {
                self.bump();
                match text.as_str() {
                    "nan" => return Ok(Expr::Lit(Lit::Float(f64::NAN))),
                    "+inf" => return Ok(Expr::Lit(Lit::Float(f64::INFINITY))),
                    "-inf" => return Ok(Expr::Lit(Lit::Float(f64::NEG_INFINITY))),
                    _ => {}
                }
                // Exponent form → float; plain fraction → exact decimal.
                if text.contains(['e', 'E']) {
                    text.parse::<f64>()
                        .map(|f| Expr::Lit(Lit::Float(f)))
                        .map_err(|_| self.err(format!("invalid number {text}")))
                } else {
                    text.parse()
                        .map(|d| Expr::Lit(Lit::Decimal(d)))
                        .map_err(|e| self.err(format!("invalid number {text}: {e}")))
                }
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Lit::Str(s)))
            }
            Tok::Keyword(K::Null) => {
                self.bump();
                Ok(Expr::Lit(Lit::Null))
            }
            Tok::Keyword(K::Missing) => {
                self.bump();
                Ok(Expr::Lit(Lit::Missing))
            }
            Tok::Keyword(K::True) => {
                self.bump();
                Ok(Expr::Lit(Lit::Bool(true)))
            }
            Tok::Keyword(K::False) => {
                self.bump();
                Ok(Expr::Lit(Lit::Bool(false)))
            }
            Tok::Question => {
                self.bump();
                let i = self.params;
                self.params += 1;
                Ok(Expr::Param(i))
            }
            Tok::Keyword(K::Case) => self.case_expr(),
            Tok::Keyword(K::Cast) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let e = self.expr()?;
                self.expect_kw(K::As)?;
                let ty = self.type_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(e),
                    ty,
                })
            }
            Tok::Keyword(K::Exists) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let q = self.query()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Exists(Box::new(q)))
            }
            Tok::LParen => {
                if self.starts_query(1) {
                    self.bump();
                    let q = self.query()?;
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Subquery(Box::new(q)))
                } else {
                    self.bump();
                    let e = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    Ok(e)
                }
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if *self.peek() != Tok::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket)?;
                Ok(Expr::ArrayCtor(items))
            }
            Tok::LBagBrace | Tok::LBagAngle => {
                let close = if *self.peek() == Tok::LBagBrace {
                    Tok::RBagBrace
                } else {
                    Tok::RBagAngle
                };
                self.bump();
                let mut items = Vec::new();
                if *self.peek() != close {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&close)?;
                Ok(Expr::BagCtor(items))
            }
            Tok::LBrace => {
                self.bump();
                let mut pairs = Vec::new();
                if *self.peek() != Tok::RBrace {
                    loop {
                        let name = self.expr()?;
                        self.expect(&Tok::Colon)?;
                        let value = self.expr()?;
                        pairs.push((name, value));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(Expr::TupleCtor(pairs))
            }
            // Aggregate-shaped keywords usable as function names.
            Tok::Keyword(k @ (K::Any | K::Some | K::Every | K::Left | K::Right))
                if *self.peek_at(1) == Tok::LParen =>
            {
                self.bump();
                let call = self.call_args(k.as_str().to_string())?;
                self.maybe_over(call)
            }
            Tok::Ident(name) => {
                if *self.peek_at(1) == Tok::LParen {
                    self.bump();
                    let call = self.call_args(name.to_ascii_uppercase())?;
                    self.maybe_over(call)
                } else {
                    self.bump();
                    Ok(Expr::Path {
                        head: name,
                        steps: Vec::new(),
                    })
                }
            }
            Tok::QuotedIdent(name) => {
                self.bump();
                Ok(Expr::Path {
                    head: name,
                    steps: Vec::new(),
                })
            }
            other => Err(self.err(format!("unexpected token {other} in expression"))),
        }
    }

    fn call_args(&mut self, name: String) -> Result<Expr, SyntaxError> {
        self.expect(&Tok::LParen)?;
        if self.eat(&Tok::Star) {
            self.expect(&Tok::RParen)?;
            return Ok(Expr::Call {
                name,
                args: Vec::new(),
                distinct: false,
                star: true,
            });
        }
        let distinct = self.eat_kw(K::Distinct);
        if !distinct {
            self.eat_kw(K::All);
        }
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                // A subquery argument without parens of its own:
                // COLL_AVG(SELECT VALUE …) per Listing 16.
                if self.starts_query(0) {
                    args.push(Expr::Subquery(Box::new(self.query()?)));
                } else {
                    args.push(self.expr()?);
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(Expr::Call {
            name,
            args,
            distinct,
            star: false,
        })
    }

    /// Attaches an `OVER (…)` window specification to a call, when
    /// present.
    fn maybe_over(&mut self, call: Expr) -> Result<Expr, SyntaxError> {
        if !self.eat_kw(K::Over) {
            return Ok(call);
        }
        let Expr::Call {
            name,
            args,
            distinct,
            star,
        } = call
        else {
            return Err(self.err("OVER must follow a function call"));
        };
        if distinct {
            return Err(self.err("DISTINCT is not supported in window functions"));
        }
        self.expect(&Tok::LParen)?;
        let mut partition_by = Vec::new();
        if self.at_kw(K::Partition) {
            self.bump();
            self.expect_kw(K::By)?;
            loop {
                partition_by.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw(K::Order) {
            self.expect_kw(K::By)?;
            loop {
                order_by.push(self.order_item()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(Expr::Window {
            func: name,
            args,
            star,
            partition_by,
            order_by,
        })
    }

    fn case_expr(&mut self) -> Result<Expr, SyntaxError> {
        self.expect_kw(K::Case)?;
        let operand = if !self.at_kw(K::When) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut arms = Vec::new();
        while self.eat_kw(K::When) {
            let when = self.expr()?;
            self.expect_kw(K::Then)?;
            let then = self.expr()?;
            arms.push((when, then));
        }
        if arms.is_empty() {
            return Err(self.err("CASE requires at least one WHEN arm"));
        }
        let else_expr = if self.eat_kw(K::Else) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(K::End)?;
        Ok(Expr::Case {
            operand,
            arms,
            else_expr,
        })
    }
}

/// The neutral SELECT clause used as a recovery fallback when a clause
/// is too broken to salvage.
fn empty_select() -> SelectClause {
    SelectClause::Select {
        quantifier: SetQuantifier::All,
        items: Vec::new(),
    }
}

/// Wraps a non-path expression in a fresh path so steps can attach, e.g.
/// `(SELECT …)[0]` or `{'a':1}.a`. Represented by re-rooting: we keep the
/// base expression in a one-step chain.
fn wrap_path(base: Expr, step: PathStep) -> Expr {
    // A non-identifier base with navigation: encode as a Call to the
    // internal navigation functions so the AST stays small.
    match step {
        PathStep::Attr(a) => Expr::Call {
            name: "$PATH".to_string(),
            args: vec![base, Expr::Lit(Lit::Str(a))],
            distinct: false,
            star: false,
        },
        PathStep::Index(i) => Expr::Call {
            name: "$INDEX".to_string(),
            args: vec![base, *i],
            distinct: false,
            star: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Query {
        parse_query(src).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    fn block(src: &str) -> QueryBlock {
        match q(src).body {
            SetExpr::Block(b) => *b,
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn parses_listing_2() {
        let b = block(
            "SELECT e.name AS emp_name, p.name AS proj_name \
             FROM hr.emp_nest_tuples AS e, e.projects AS p \
             WHERE p.name LIKE '%Security%'",
        );
        assert_eq!(b.from.len(), 2);
        assert!(matches!(b.select, SelectClause::Select { ref items, .. } if items.len() == 2));
        assert!(matches!(b.where_clause, Some(Expr::Like { .. })));
        match &b.from[1] {
            FromItem::Collection { expr, as_var, .. } => {
                assert_eq!(*expr, Expr::path("e", &["projects"]));
                assert_eq!(as_var.as_deref(), Some("p"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_clause_last_form_listing_12() {
        let b = block(
            "FROM hr.emp_nest_scalars AS e, e.projects AS p \
             WHERE p LIKE '%Security%' \
             GROUP BY LOWER(p) AS p GROUP AS g \
             SELECT p AS proj_name, \
               (FROM g AS v SELECT VALUE v.e.name) AS employees",
        );
        assert_eq!(b.placement, SelectPlacement::Trailing);
        let gb = b.group_by.expect("group by");
        assert_eq!(gb.keys.len(), 1);
        assert_eq!(gb.keys[0].alias.as_deref(), Some("p"));
        assert_eq!(gb.group_as.as_deref(), Some("g"));
        match &b.select {
            SelectClause::Select { items, .. } => {
                assert_eq!(items.len(), 2);
                match &items[1] {
                    SelectItem::Expr {
                        expr: Expr::Subquery(sub),
                        alias,
                    } => {
                        assert_eq!(alias.as_deref(), Some("employees"));
                        match &sub.body {
                            SetExpr::Block(b) => {
                                assert_eq!(b.placement, SelectPlacement::Trailing);
                                assert!(matches!(b.select, SelectClause::SelectValue { .. }));
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_select_value_subquery_listing_10() {
        let b = block(
            "SELECT e.id AS id, (SELECT VALUE p FROM e.projects AS p \
             WHERE p LIKE '%Security%') AS security_proj \
             FROM hr.emp_nest_scalars AS e",
        );
        match &b.select {
            SelectClause::Select { items, .. } => {
                assert!(matches!(
                    items[1],
                    SelectItem::Expr {
                        expr: Expr::Subquery(_),
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_unpivot_listing_20() {
        let b = block(
            "SELECT c.\"date\" AS \"date\", sym AS symbol, price AS price \
             FROM closing_prices AS c, UNPIVOT c AS price AT sym \
             WHERE NOT sym = 'date'",
        );
        match &b.from[1] {
            FromItem::Unpivot {
                value_var,
                name_var,
                ..
            } => {
                assert_eq!(value_var, "price");
                assert_eq!(name_var, "sym");
            }
            other => panic!("unexpected {other:?}"),
        }
        // `NOT sym = 'date'` parses as NOT (sym = 'date').
        match b.where_clause.unwrap() {
            Expr::Un {
                op: UnOp::Not,
                expr,
            } => {
                assert!(matches!(*expr, Expr::Bin { op: BinOp::Eq, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_pivot_listing_24() {
        let b = block("PIVOT sp.price AT sp.symbol FROM today_stock_prices sp");
        assert!(matches!(b.select, SelectClause::Pivot { .. }));
        match &b.from[0] {
            FromItem::Collection { as_var, .. } => {
                assert_eq!(as_var.as_deref(), Some("sp"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_pivot_subquery_with_group_listing_26() {
        let b = block(
            "SELECT sp.\"date\" AS \"date\", \
               (PIVOT dp.sp.price AT dp.sp.symbol FROM dates_prices AS dp) AS prices \
             FROM stock_prices AS sp \
             GROUP BY sp.\"date\" GROUP AS dates_prices",
        );
        let gb = b.group_by.unwrap();
        assert_eq!(gb.group_as.as_deref(), Some("dates_prices"));
        assert_eq!(gb.keys[0].alias, None);
    }

    #[test]
    fn parses_aggregates_and_group_by_listing_17() {
        let b = block(
            "SELECT e.deptno, AVG(e.salary) AS avgsal FROM hr.emp AS e \
             WHERE e.title = 'Engineer' GROUP BY e.deptno",
        );
        match &b.select {
            SelectClause::Select { items, .. } => match &items[1] {
                SelectItem::Expr {
                    expr: Expr::Call { name, args, .. },
                    ..
                } => {
                    assert_eq!(name, "AVG");
                    assert_eq!(args.len(), 1);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_coll_avg_with_bare_subquery_arg_listing_16() {
        let e = parse_expr(
            "COLL_AVG(SELECT VALUE e.salary FROM hr.emp AS e WHERE e.title = 'Engineer')",
        )
        .unwrap();
        match e {
            Expr::Call { name, args, .. } => {
                assert_eq!(name, "COLL_AVG");
                assert!(matches!(args[0], Expr::Subquery(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_case_when_listing_9() {
        let e = parse_expr("CASE WHEN e.title LIKE 'Chief %' THEN 'Executive' ELSE 'Worker' END")
            .unwrap();
        match e {
            Expr::Case {
                operand: None,
                arms,
                else_expr: Some(_),
            } => {
                assert_eq!(arms.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_constructors() {
        assert!(matches!(
            parse_expr("{'a': 1, 'b': [1,2]}").unwrap(),
            Expr::TupleCtor(_)
        ));
        assert!(matches!(parse_expr("{{1, 2}}").unwrap(), Expr::BagCtor(_)));
        assert!(matches!(parse_expr("<<1, 2>>").unwrap(), Expr::BagCtor(_)));
        assert!(matches!(parse_expr("[]").unwrap(), Expr::ArrayCtor(_)));
        assert!(matches!(parse_expr("{}").unwrap(), Expr::TupleCtor(p) if p.is_empty()));
    }

    #[test]
    fn parses_operators_with_precedence() {
        // 1 + 2 * 3 = (1 + (2*3))
        match parse_expr("1 + 2 * 3 = 7").unwrap() {
            Expr::Bin {
                op: BinOp::Eq,
                left,
                ..
            } => match *left {
                Expr::Bin {
                    op: BinOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(*right, Expr::Bin { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // a OR b AND c = a OR (b AND c)
        match parse_expr("a OR b AND c").unwrap() {
            Expr::Bin {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Bin { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_predicates() {
        assert!(matches!(
            parse_expr("x BETWEEN 1 AND 10").unwrap(),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x NOT IN (1, 2, 3)").unwrap(),
            Expr::In { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("x IN (SELECT VALUE y FROM t AS y)").unwrap(),
            Expr::In { .. }
        ));
        assert!(matches!(
            parse_expr("x IS NOT MISSING").unwrap(),
            Expr::Is {
                test: IsTest::Missing,
                negated: true,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("x IS NULL").unwrap(),
            Expr::Is {
                test: IsTest::Null,
                negated: false,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("EXISTS (SELECT * FROM t AS t2)").unwrap(),
            Expr::Exists(_)
        ));
    }

    #[test]
    fn parses_path_steps_and_index() {
        let e = parse_expr("e.projects[0].name").unwrap();
        match e {
            Expr::Path { head, steps } => {
                assert_eq!(head, "e");
                assert_eq!(steps.len(), 3);
                assert!(matches!(steps[1], PathStep::Index(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_set_ops_with_precedence() {
        let query = q(
            "SELECT VALUE 1 FROM a AS a UNION SELECT VALUE 2 FROM b AS b \
                       INTERSECT SELECT VALUE 3 FROM c AS c",
        );
        match query.body {
            SetExpr::SetOp {
                op: SetOp::Union,
                right,
                ..
            } => {
                assert!(matches!(
                    *right,
                    SetExpr::SetOp {
                        op: SetOp::Intersect,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_order_limit_offset() {
        let query =
            q("SELECT VALUE x FROM t AS x ORDER BY x.a DESC NULLS LAST, x.b LIMIT 10 OFFSET 5");
        assert_eq!(query.order_by.len(), 2);
        assert!(query.order_by[0].desc);
        assert_eq!(query.order_by[0].nulls_first, Some(false));
        assert_eq!(query.limit, Some(Expr::int(10)));
        assert_eq!(query.offset, Some(Expr::int(5)));
    }

    #[test]
    fn parses_joins() {
        let b = block(
            "SELECT * FROM a AS a LEFT OUTER JOIN b AS b ON a.id = b.id \
             CROSS JOIN c AS c",
        );
        match &b.from[0] {
            FromItem::Join {
                kind: JoinKind::Cross,
                left,
                ..
            } => {
                assert!(matches!(
                    **left,
                    FromItem::Join {
                        kind: JoinKind::Left,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_with_ctes() {
        let query = q("WITH eng AS (SELECT VALUE e FROM hr.emp AS e) SELECT VALUE x FROM eng AS x");
        assert_eq!(query.ctes.len(), 1);
        assert_eq!(query.ctes[0].name, "eng");
    }

    #[test]
    fn parses_let_bindings() {
        let b = block("FROM t AS x LET y = x.a + 1 WHERE y > 2 SELECT VALUE y");
        assert_eq!(b.lets.len(), 1);
        assert_eq!(b.lets[0].name, "y");
    }

    #[test]
    fn parses_params_in_order() {
        let b = block("SELECT VALUE x FROM t AS x WHERE x.a = ? AND x.b = ?");
        let w = b.where_clause.unwrap();
        match w {
            Expr::Bin { left, right, .. } => {
                assert!(matches!(
                    *left,
                    Expr::Bin { right: box_r, .. } if matches!(*box_r, Expr::Param(0))
                ));
                assert!(matches!(
                    *right,
                    Expr::Bin { right: box_r, .. } if matches!(*box_r, Expr::Param(1))
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_create_table_listing_5() {
        let stmt = parse_statement(
            "CREATE TABLE emp_mixed (\
               id INT, name STRING, title STRING, \
               projects UNIONTYPE<STRING, ARRAY<STRING>>)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name, vec!["emp_mixed"]);
                assert_eq!(ct.columns.len(), 4);
                match &ct.columns[3].1 {
                    TypeExpr::Union(alts) => {
                        assert_eq!(alts.len(), 2);
                        assert!(matches!(alts[1], TypeExpr::Array(_)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_distinct_and_count_star() {
        let e = parse_expr("COUNT(*)").unwrap();
        assert!(matches!(e, Expr::Call { star: true, .. }));
        let e = parse_expr("COUNT(DISTINCT e.x)").unwrap();
        assert!(matches!(e, Expr::Call { distinct: true, .. }));
        let b = block("SELECT DISTINCT VALUE x FROM t AS x");
        assert!(matches!(
            b.select,
            SelectClause::SelectValue {
                quantifier: SetQuantifier::Distinct,
                ..
            }
        ));
    }

    #[test]
    fn parses_wildcards() {
        let b = block("SELECT *, e.* FROM t AS e");
        match b.select {
            SelectClause::Select { items, .. } => {
                assert!(matches!(items[0], SelectItem::Wildcard));
                assert!(matches!(items[1], SelectItem::QualifiedWildcard(ref v) if v == "e"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_messages_have_positions() {
        let err = parse_query("SELECT FROM").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse_query("SELECT VALUE x FROM").unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn recovery_reports_every_broken_clause_in_one_parse() {
        // Three independent mistakes: SELECT item, WHERE condition,
        // ORDER BY key. One recovering parse reports all three.
        let src = "SELECT 1 + FROM t AS t WHERE ORDER BY";
        let r = parse_query_recovering(src);
        assert!(r.ast.is_some(), "partial AST expected");
        assert_eq!(r.diags.len(), 3, "{:#?}", r.diags);
        let hints: Vec<_> = r.diags.iter().filter_map(|d| d.hint.as_deref()).collect();
        assert!(
            hints.iter().any(|h| h.contains("SELECT clause")),
            "{hints:?}"
        );
        assert!(
            hints.iter().any(|h| h.contains("WHERE clause")),
            "{hints:?}"
        );
        assert!(
            hints.iter().any(|h| h.contains("ORDER BY clause")),
            "{hints:?}"
        );
        // The salvaged block still carries the FROM clause.
        match r.ast.unwrap().body {
            SetExpr::Block(b) => assert_eq!(b.from.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn recovery_is_inert_on_valid_input() {
        let src = "SELECT e.name AS n FROM hr.emp AS e WHERE e.salary > 10 \
                   GROUP BY e.deptno HAVING COUNT(*) > 1 ORDER BY n LIMIT 3";
        let strict = parse_query(src).unwrap();
        let rec = parse_query_recovering(src);
        assert!(rec.is_clean());
        assert_eq!(rec.ast.unwrap(), strict);
    }

    #[test]
    fn recovery_spans_are_in_bounds_and_disjoint() {
        let src = "SELECT , FROM ) WHERE + GROUP BY ( HAVING *";
        let r = parse_query_recovering(src);
        assert!(!r.diags.is_empty());
        for d in &r.diags {
            assert!(d.span.start <= d.span.end, "{d:?}");
            assert!(d.span.end <= src.len(), "{d:?}");
        }
        for (i, a) in r.diags.iter().enumerate() {
            for b in &r.diags[i + 1..] {
                let disjoint = a.span.end <= b.span.start || b.span.end <= a.span.start;
                assert!(disjoint, "overlapping spans: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn recovery_survives_a_lexer_error_and_keeps_parsing() {
        let r = parse_query_recovering("SELECT 'oops\nFROM t AS t");
        assert!(r
            .diags
            .iter()
            .any(|d| d.code == crate::diag::codes::E_UNTERMINATED));
        // The second line still contributed a FROM clause.
        if let Some(q) = r.ast {
            if let SetExpr::Block(b) = q.body {
                assert_eq!(b.from.len(), 1);
            }
        }
    }

    #[test]
    fn recovery_depth_guard_reports_e_depth() {
        let src = format!("{}1{}", "(".repeat(500), ")".repeat(500));
        let r = parse_expr_recovering(&src);
        assert!(r
            .diags
            .iter()
            .any(|d| d.code == crate::diag::codes::E_DEPTH));
    }

    #[test]
    fn values_rows_parse() {
        let b = block("VALUES (1, 'a'), (2, 'b')");
        assert!(matches!(b.select, SelectClause::SelectValue { .. }));
    }

    #[test]
    fn explain_statements_parse_and_round_trip() {
        let stmt = parse_statement("EXPLAIN SELECT VALUE x FROM t AS x").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: false, .. }));

        let stmt = parse_statement("explain analyze SELECT VALUE x FROM t AS x").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: true, .. }));

        let printed = crate::print_statement(&stmt);
        assert_eq!(printed, "EXPLAIN ANALYZE SELECT VALUE x FROM t AS x");
        assert_eq!(parse_statement(&printed).unwrap(), stmt);
    }
}
