//! The WAL record model and its ion_lite payload encoding.
//!
//! One record is one committed catalog mutation, stamped with the
//! monotonic log sequence number (LSN) assigned at append time. The
//! payload is an ordinary SQL++ tuple value run through the first-party
//! `ion_lite` binary codec — the catalog's own data model carries its
//! own log, no second serialization layer needed (the format-
//! independence tenet applied to the engine's internals):
//!
//! ```text
//! { 'lsn': <int>, 'op': <string>, 'name': <string>
//! , 'value': <any>            -- present for commit / commit-schema
//! , 'schema': <type value>    -- present for schema / commit-schema
//! }
//! ```
//!
//! Ops: `commit` (full replacement value for a collection — DML is
//! snapshot-and-replace, so physical full-value logging is exact),
//! `commit-schema` (CREATE TABLE / schema-validated registration: value
//! and schema land in *one* record so a statement is one atomic log
//! entry), `schema` (attach/replace a schema only), and `remove`
//! (unbind a name). Schemas ride as values through
//! [`type_to_value`]/[`type_from_value`].

use sqlpp_schema::{Field, SqlppType, TupleType};
use sqlpp_value::{Tuple, Value};

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The log sequence number (monotonic, starts at 1).
    pub lsn: u64,
    /// The operation.
    pub op: WalOp,
}

/// The catalog mutation a WAL record carries.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Replace (or create) `name`'s binding with `value`.
    Commit {
        /// The bound name.
        name: String,
        /// The full replacement value.
        value: Value,
    },
    /// Replace `name`'s binding *and* attach `schema` — one record, so
    /// a CREATE TABLE is a single atomic log entry.
    CommitWithSchema {
        /// The bound name.
        name: String,
        /// The full replacement value.
        value: Value,
        /// The attached element schema.
        schema: SqlppType,
    },
    /// Attach (or replace) `name`'s element schema.
    SetSchema {
        /// The bound name.
        name: String,
        /// The attached element schema.
        schema: SqlppType,
    },
    /// Unbind `name` (and any attached schema).
    Remove {
        /// The unbound name.
        name: String,
    },
}

impl WalOp {
    /// The name this mutation targets.
    pub fn name(&self) -> &str {
        match self {
            WalOp::Commit { name, .. }
            | WalOp::CommitWithSchema { name, .. }
            | WalOp::SetSchema { name, .. }
            | WalOp::Remove { name } => name,
        }
    }

    /// Whether replaying this record moves the catalog's schema epoch.
    pub fn touches_schema(&self) -> bool {
        matches!(
            self,
            WalOp::CommitWithSchema { .. } | WalOp::SetSchema { .. } | WalOp::Remove { .. }
        )
    }
}

/// Encodes a record to its ion_lite payload bytes.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut t = Tuple::with_capacity(5);
    t.insert("lsn", Value::Int(record.lsn as i64));
    match &record.op {
        WalOp::Commit { name, value } => {
            t.insert("op", Value::Str("commit".into()));
            t.insert("name", Value::Str(name.clone()));
            t.insert("value", value.clone());
        }
        WalOp::CommitWithSchema {
            name,
            value,
            schema,
        } => {
            t.insert("op", Value::Str("commit-schema".into()));
            t.insert("name", Value::Str(name.clone()));
            t.insert("value", value.clone());
            t.insert("schema", type_to_value(schema));
        }
        WalOp::SetSchema { name, schema } => {
            t.insert("op", Value::Str("schema".into()));
            t.insert("name", Value::Str(name.clone()));
            t.insert("schema", type_to_value(schema));
        }
        WalOp::Remove { name } => {
            t.insert("op", Value::Str("remove".into()));
            t.insert("name", Value::Str(name.clone()));
        }
    }
    sqlpp_formats::ion_lite::to_ion_lite(&Value::Tuple(t))
}

/// Decodes a checksum-valid payload back into a record. Any shape
/// mismatch here is *corruption*, not a torn write — the checksum
/// already vouched for the bytes.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    let value = sqlpp_formats::ion_lite::from_ion_lite(payload)
        .map_err(|e| format!("undecodable record payload: {e}"))?;
    let t = value
        .as_tuple()
        .ok_or_else(|| "record payload is not a tuple".to_string())?;
    let lsn = field_int(t, "lsn")?;
    let op = field_str(t, "op")?;
    let name = field_str(t, "name")?.to_string();
    let op = match op {
        "commit" => WalOp::Commit {
            name,
            value: field_value(t, "value")?,
        },
        "commit-schema" => WalOp::CommitWithSchema {
            name,
            value: field_value(t, "value")?,
            schema: field_schema(t)?,
        },
        "schema" => WalOp::SetSchema {
            name,
            schema: field_schema(t)?,
        },
        "remove" => WalOp::Remove { name },
        other => return Err(format!("unknown record op {other:?}")),
    };
    Ok(WalRecord { lsn, op })
}

fn field_int(t: &Tuple, name: &str) -> Result<u64, String> {
    match t.get(name) {
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(other) => Err(format!("field {name:?} is {}", other.kind().name())),
        None => Err(format!("missing field {name:?}")),
    }
}

fn field_str<'a>(t: &'a Tuple, name: &str) -> Result<&'a str, String> {
    match t.get(name) {
        Some(Value::Str(s)) => Ok(s),
        Some(other) => Err(format!("field {name:?} is {}", other.kind().name())),
        None => Err(format!("missing field {name:?}")),
    }
}

fn field_value(t: &Tuple, name: &str) -> Result<Value, String> {
    t.get(name)
        .cloned()
        .ok_or_else(|| format!("missing field {name:?}"))
}

fn field_schema(t: &Tuple) -> Result<SqlppType, String> {
    type_from_value(&field_value(t, "schema")?)
}

// ---------------- SqlppType ⇄ Value ----------------
//
// Schemas must survive the WAL and snapshots; the structural type enum
// has no serialization of its own, so it rides as a SQL++ value:
// `{'k': 'int'}`, `{'k': 'array', 'elem': …}`,
// `{'k': 'tuple', 'open': bool, 'fields': [{'name','ty','optional'}…]}`,
// `{'k': 'union', 'alts': […]}`.

/// Encodes a structural type as a SQL++ value.
pub fn type_to_value(ty: &SqlppType) -> Value {
    let mut t = Tuple::with_capacity(2);
    let kind = |k: &str| Value::Str(k.to_string());
    match ty {
        SqlppType::Any => t.insert("k", kind("any")),
        SqlppType::Null => t.insert("k", kind("null")),
        SqlppType::Missing => t.insert("k", kind("missing")),
        SqlppType::Bool => t.insert("k", kind("bool")),
        SqlppType::Int => t.insert("k", kind("int")),
        SqlppType::Float => t.insert("k", kind("float")),
        SqlppType::Decimal => t.insert("k", kind("decimal")),
        SqlppType::Str => t.insert("k", kind("str")),
        SqlppType::Bytes => t.insert("k", kind("bytes")),
        SqlppType::Array(elem) => {
            t.insert("k", kind("array"));
            t.insert("elem", type_to_value(elem));
        }
        SqlppType::Bag(elem) => {
            t.insert("k", kind("bag"));
            t.insert("elem", type_to_value(elem));
        }
        SqlppType::Tuple(tt) => {
            t.insert("k", kind("tuple"));
            t.insert("open", Value::Bool(tt.open));
            let fields = tt
                .fields
                .iter()
                .map(|f| {
                    let mut ft = Tuple::with_capacity(3);
                    ft.insert("name", Value::Str(f.name.clone()));
                    ft.insert("ty", type_to_value(&f.ty));
                    ft.insert("optional", Value::Bool(f.optional));
                    Value::Tuple(ft)
                })
                .collect();
            t.insert("fields", Value::Array(fields));
        }
        SqlppType::Union(alts) => {
            t.insert("k", kind("union"));
            t.insert(
                "alts",
                Value::Array(alts.iter().map(type_to_value).collect()),
            );
        }
    }
    Value::Tuple(t)
}

/// Decodes a structural type from its value encoding.
pub fn type_from_value(v: &Value) -> Result<SqlppType, String> {
    let t = v
        .as_tuple()
        .ok_or_else(|| "type encoding is not a tuple".to_string())?;
    let kind = field_str(t, "k")?;
    Ok(match kind {
        "any" => SqlppType::Any,
        "null" => SqlppType::Null,
        "missing" => SqlppType::Missing,
        "bool" => SqlppType::Bool,
        "int" => SqlppType::Int,
        "float" => SqlppType::Float,
        "decimal" => SqlppType::Decimal,
        "str" => SqlppType::Str,
        "bytes" => SqlppType::Bytes,
        "array" => SqlppType::Array(Box::new(type_from_value(&field_value(t, "elem")?)?)),
        "bag" => SqlppType::Bag(Box::new(type_from_value(&field_value(t, "elem")?)?)),
        "tuple" => {
            let open = match t.get("open") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("tuple type missing 'open'".to_string()),
            };
            let fields = match t.get("fields") {
                Some(Value::Array(items)) => items
                    .iter()
                    .map(|item| {
                        let ft = item
                            .as_tuple()
                            .ok_or_else(|| "tuple field is not a tuple".to_string())?;
                        Ok(Field {
                            name: field_str(ft, "name")?.to_string(),
                            ty: type_from_value(&field_value(ft, "ty")?)?,
                            optional: match ft.get("optional") {
                                Some(Value::Bool(b)) => *b,
                                _ => return Err("field missing 'optional'".to_string()),
                            },
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => return Err("tuple type missing 'fields'".to_string()),
            };
            SqlppType::Tuple(TupleType { fields, open })
        }
        "union" => {
            let alts = match t.get("alts") {
                Some(Value::Array(items)) => items.iter().map(type_from_value).collect::<Result<
                    Vec<_>,
                    String,
                >>(
                )?,
                _ => return Err("union type missing 'alts'".to_string()),
            };
            if alts.is_empty() {
                return Err("union type with no alternatives".to_string());
            }
            SqlppType::Union(alts)
        }
        other => return Err(format!("unknown type kind {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::bag;

    fn rt(op: WalOp) {
        let rec = WalRecord { lsn: 42, op };
        let payload = encode_record(&rec);
        assert_eq!(decode_record(&payload).unwrap(), rec);
    }

    #[test]
    fn records_round_trip() {
        rt(WalOp::Commit {
            name: "hr.emp".into(),
            value: bag![1i64, 2i64],
        });
        rt(WalOp::CommitWithSchema {
            name: "t".into(),
            value: Value::empty_bag(),
            schema: SqlppType::Tuple(TupleType::closed([
                ("id", SqlppType::Int),
                ("name", SqlppType::Str),
            ])),
        });
        rt(WalOp::SetSchema {
            name: "t".into(),
            schema: SqlppType::Bag(Box::new(SqlppType::Any)),
        });
        rt(WalOp::Remove {
            name: "gone".into(),
        });
    }

    #[test]
    fn every_type_shape_round_trips() {
        let shapes = [
            SqlppType::Any,
            SqlppType::Null,
            SqlppType::Missing,
            SqlppType::Bool,
            SqlppType::Int,
            SqlppType::Float,
            SqlppType::Decimal,
            SqlppType::Str,
            SqlppType::Bytes,
            SqlppType::Array(Box::new(SqlppType::Union(vec![
                SqlppType::Int,
                SqlppType::Str,
            ]))),
            SqlppType::Bag(Box::new(SqlppType::Tuple(
                TupleType::closed([("x", SqlppType::Float)]).into_open(),
            ))),
        ];
        for ty in shapes {
            let back = type_from_value(&type_to_value(&ty)).unwrap();
            assert_eq!(back, ty);
        }
    }

    #[test]
    fn optional_fields_survive() {
        let ty = SqlppType::Tuple(TupleType {
            fields: vec![Field {
                name: "title".into(),
                ty: SqlppType::Str,
                optional: true,
            }],
            open: true,
        });
        assert_eq!(type_from_value(&type_to_value(&ty)).unwrap(), ty);
    }

    #[test]
    fn garbage_payloads_are_structured_errors() {
        assert!(decode_record(b"not ion").is_err());
        // A valid value of the wrong shape.
        let wrong = sqlpp_formats::ion_lite::to_ion_lite(&Value::Int(7));
        assert!(decode_record(&wrong).is_err());
        // A tuple missing required fields.
        let mut t = Tuple::new();
        t.insert("lsn", Value::Int(1));
        let partial = sqlpp_formats::ion_lite::to_ion_lite(&Value::Tuple(t));
        assert!(decode_record(&partial).is_err());
    }
}
