//! First-party CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — the
//! per-frame checksum of the WAL and snapshot formats. The hermetic
//! build policy (zero crates.io dependencies) means we carry our own;
//! the table is computed at compile time.

const fn table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[i] = c;
        i += 1;
    }
    t
}

static CRC_TABLE: [u32; 256] = table();

/// CRC-32 of `data` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF` — the
/// zlib/PNG convention, so the values are checkable with standard tools).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"write-ahead log frame");
        let mut flipped = b"write-ahead log frame".to_vec();
        for byte in 0..flipped.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
    }
}
