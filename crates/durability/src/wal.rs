//! WAL frame layout and the tail-tolerant scanner.
//!
//! Every frame is `[len: u32 LE][crc: u32 LE][payload: len bytes]` where
//! `crc` is the CRC-32 of the payload alone. The scanner embodies the
//! recovery contract:
//!
//! * a **torn tail** — fewer than 8 header bytes left, a declared length
//!   running past end-of-file, or a checksum mismatch on a frame that
//!   ends exactly at end-of-file — is the expected residue of a crash
//!   mid-append and is *tolerated*: the scan stops at the last
//!   checksum-valid frame and reports where;
//! * anything else — a checksum mismatch with more log after it, a
//!   checksum-valid frame whose payload doesn't decode, or a
//!   non-monotonic LSN — cannot be produced by a torn append and is
//!   reported as structured **corruption**, never a panic.

use std::path::Path;

use crate::crc32::crc32;
use crate::record::{decode_record, WalRecord};
use crate::DurabilityError;

/// Bytes of frame header: u32 payload length + u32 CRC-32.
pub const FRAME_HEADER: usize = 8;

/// Builds one frame around a payload.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// The result of scanning a WAL file.
#[derive(Debug)]
pub(crate) struct WalScan {
    /// Every checksum-valid, decoded record in log order, with the byte
    /// offset just past its frame.
    pub records: Vec<(WalRecord, u64)>,
    /// Length of the valid prefix; anything past it is a torn tail.
    pub valid_len: u64,
    /// Why the scan stopped early, if it did (torn-tail description).
    pub torn: Option<String>,
}

/// Scans raw WAL bytes. `min_lsn` is the exclusive lower bound records
/// must stay above (the last LSN covered by the snapshot being recovered
/// from); records at or below it are skipped as pre-checkpoint residue
/// but still checksum/monotonicity-checked.
pub(crate) fn scan(data: &[u8], path: &Path, min_lsn: u64) -> Result<WalScan, DurabilityError> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut prev_lsn = 0u64;
    let mut torn = None;
    while offset < data.len() {
        let remaining = data.len() - offset;
        if remaining < FRAME_HEADER {
            torn = Some(format!(
                "torn tail: {remaining} byte(s) of frame header at offset {offset}"
            ));
            break;
        }
        let len =
            u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let end = offset + FRAME_HEADER + len;
        if end > data.len() {
            torn = Some(format!(
                "torn tail: frame at offset {offset} declares {len} payload bytes, \
                 {} available",
                remaining - FRAME_HEADER
            ));
            break;
        }
        let payload = &data[offset + FRAME_HEADER..end];
        if crc32(payload) != crc {
            if end == data.len() {
                // A torn write of the *final* frame: the header landed,
                // part of the payload did not (or landed scrambled).
                torn = Some(format!(
                    "torn tail: checksum mismatch on final frame at offset {offset}"
                ));
                break;
            }
            // Checksum failure with more log after it: a later append
            // succeeded *through* this frame, so the bytes rotted in
            // place — that is corruption, not a crash artifact.
            return Err(DurabilityError::Corrupt {
                path: path.to_path_buf(),
                offset: offset as u64,
                message: "checksum mismatch mid-log".to_string(),
            });
        }
        let record = decode_record(payload).map_err(|message| DurabilityError::Corrupt {
            path: path.to_path_buf(),
            offset: offset as u64,
            message,
        })?;
        if record.lsn <= prev_lsn {
            return Err(DurabilityError::Corrupt {
                path: path.to_path_buf(),
                offset: offset as u64,
                message: format!(
                    "non-monotonic LSN {} after {} — log records out of order",
                    record.lsn, prev_lsn
                ),
            });
        }
        prev_lsn = record.lsn;
        if record.lsn > min_lsn {
            records.push((record, end as u64));
        }
        offset = end;
    }
    Ok(WalScan {
        records,
        valid_len: offset as u64,
        torn,
    })
}

/// Public inspection helper: the end offset of every valid record frame
/// in a WAL file, in order. The prefix-differential recovery tests use
/// these as truncation points — each offset is a crash-consistent log
/// prefix ending exactly at a record boundary.
pub fn wal_record_ends(path: &Path) -> Result<Vec<u64>, DurabilityError> {
    let data = std::fs::read(path).map_err(|e| DurabilityError::io("read", path, &e))?;
    let scan = scan(&data, path, 0)?;
    Ok(scan.records.iter().map(|(_, end)| *end).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_record, WalOp};
    use sqlpp_value::Value;
    use std::path::PathBuf;

    fn rec(lsn: u64) -> Vec<u8> {
        frame(&encode_record(&WalRecord {
            lsn,
            op: WalOp::Commit {
                name: "t".into(),
                value: Value::Int(lsn as i64),
            },
        }))
    }

    fn p() -> PathBuf {
        PathBuf::from("test.wal")
    }

    #[test]
    fn clean_log_scans_fully() {
        let mut data = Vec::new();
        for lsn in 1..=3 {
            data.extend(rec(lsn));
        }
        let scan = scan(&data, &p(), 0).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, data.len() as u64);
        assert!(scan.torn.is_none());
    }

    #[test]
    fn min_lsn_filters_but_still_validates() {
        let mut data = Vec::new();
        for lsn in 1..=4 {
            data.extend(rec(lsn));
        }
        let scan = scan(&data, &p(), 2).unwrap();
        let lsns: Vec<u64> = scan.records.iter().map(|(r, _)| r.lsn).collect();
        assert_eq!(lsns, [3, 4]);
        assert_eq!(scan.valid_len, data.len() as u64);
    }

    #[test]
    fn every_truncation_of_the_final_frame_is_tolerated() {
        let mut data = Vec::new();
        data.extend(rec(1));
        let keep = data.len() as u64;
        data.extend(rec(2));
        // Start one past the boundary: a cut exactly at the record end
        // is a clean log, not a torn one.
        for cut in keep as usize + 1..data.len() {
            let scan = scan(&data[..cut], &p(), 0).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, keep, "cut at {cut}");
            assert!(scan.torn.is_some(), "cut at {cut}");
        }
    }

    #[test]
    fn final_frame_bit_flip_is_a_torn_tail() {
        let mut data = rec(1);
        let last = data.len() - 1;
        data[last] ^= 0x40;
        let scan = scan(&data, &p(), 0).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.torn.is_some());
    }

    #[test]
    fn mid_log_bit_flip_is_corruption() {
        let mut data = rec(1);
        let flip = data.len() - 1;
        data[flip] ^= 0x40;
        data.extend(rec(2));
        match scan(&data, &p(), 0) {
            Err(DurabilityError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn non_monotonic_lsn_is_corruption() {
        let mut data = Vec::new();
        data.extend(rec(2));
        data.extend(rec(2));
        assert!(matches!(
            scan(&data, &p(), 0),
            Err(DurabilityError::Corrupt { .. })
        ));
    }

    #[test]
    fn checksum_valid_garbage_payload_is_corruption() {
        // A frame whose checksum is right but whose payload is not a
        // record: torn writes can't make this, so it must hard-error
        // even at end-of-file.
        let data = frame(b"not a record");
        assert!(matches!(
            scan(&data, &p(), 0),
            Err(DurabilityError::Corrupt { .. })
        ));
    }
}
