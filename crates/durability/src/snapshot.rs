//! Checkpoint snapshots: the full catalog image in one checksummed
//! frame.
//!
//! A snapshot file is a single frame (same `[len][crc][payload]` layout
//! as a WAL record) whose payload is one ion_lite tuple:
//!
//! ```text
//! { 'format': 'sqlpp-snapshot', 'version': 1, 'lsn': <int>,
//!   'epoch': <int>,
//!   'values':  [ {'name': <str>, 'value': <any>} … ],
//!   'schemas': [ {'name': <str>, 'ty': <type value>} … ] }
//! ```
//!
//! `lsn` is the last log sequence number the image covers: recovery
//! loads the image and replays only WAL records with a larger LSN.
//! Snapshots are written to a `.tmp` sibling, fsynced, and atomically
//! renamed into place — a crash mid-write leaves only a `.tmp` orphan
//! (deleted on the next open), never a half-valid snapshot under the
//! real name.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use sqlpp_schema::SqlppType;
use sqlpp_value::{Tuple, Value};

use crate::crc32::crc32;
use crate::record::{type_from_value, type_to_value};
use crate::wal::FRAME_HEADER;
use crate::DurabilityError;

/// The catalog contents a snapshot carries (and recovery restores):
/// every named value, every schema attachment, and the schema epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatalogImage {
    /// `(dotted name, value)` bindings, in name order.
    pub values: Vec<(String, Value)>,
    /// `(dotted name, element type)` schema attachments, in name order.
    pub schemas: Vec<(String, SqlppType)>,
    /// The schema epoch at capture time; restored monotonically so
    /// epochs never move backwards across a restart.
    pub schema_epoch: u64,
}

/// A catalog image stamped with the LSN it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Last LSN whose effects are inside the image (0 = empty log).
    pub lsn: u64,
    /// The catalog contents.
    pub image: CatalogImage,
}

/// Encodes a snapshot into its single-frame file contents.
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut t = Tuple::with_capacity(6);
    t.insert("format", Value::Str("sqlpp-snapshot".into()));
    t.insert("version", Value::Int(1));
    t.insert("lsn", Value::Int(snap.lsn as i64));
    t.insert("epoch", Value::Int(snap.image.schema_epoch as i64));
    t.insert(
        "values",
        Value::Array(
            snap.image
                .values
                .iter()
                .map(|(name, value)| {
                    let mut e = Tuple::with_capacity(2);
                    e.insert("name", Value::Str(name.clone()));
                    e.insert("value", value.clone());
                    Value::Tuple(e)
                })
                .collect(),
        ),
    );
    t.insert(
        "schemas",
        Value::Array(
            snap.image
                .schemas
                .iter()
                .map(|(name, ty)| {
                    let mut e = Tuple::with_capacity(2);
                    e.insert("name", Value::Str(name.clone()));
                    e.insert("ty", type_to_value(ty));
                    Value::Tuple(e)
                })
                .collect(),
        ),
    );
    let payload = sqlpp_formats::ion_lite::to_ion_lite(&Value::Tuple(t));
    crate::wal::frame(&payload)
}

/// Decodes snapshot file contents. Any defect — bad frame, bad
/// checksum, wrong format marker, undecodable image — is a `String`
/// reason the caller wraps into a structured error (or uses to fall
/// back to an older snapshot).
pub fn decode_snapshot(data: &[u8]) -> Result<Snapshot, String> {
    if data.len() < FRAME_HEADER {
        return Err("snapshot shorter than a frame header".to_string());
    }
    let len = u32::from_le_bytes(data[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if FRAME_HEADER + len != data.len() {
        return Err(format!(
            "snapshot frame declares {len} payload bytes, file holds {}",
            data.len() - FRAME_HEADER
        ));
    }
    let payload = &data[FRAME_HEADER..];
    if crc32(payload) != crc {
        return Err("snapshot checksum mismatch".to_string());
    }
    let value = sqlpp_formats::ion_lite::from_ion_lite(payload)
        .map_err(|e| format!("undecodable snapshot payload: {e}"))?;
    let t = value
        .as_tuple()
        .ok_or_else(|| "snapshot payload is not a tuple".to_string())?;
    match t.get("format") {
        Some(Value::Str(s)) if s == "sqlpp-snapshot" => {}
        _ => return Err("missing sqlpp-snapshot format marker".to_string()),
    }
    match t.get("version") {
        Some(Value::Int(1)) => {}
        Some(Value::Int(v)) => return Err(format!("unsupported snapshot version {v}")),
        _ => return Err("missing snapshot version".to_string()),
    }
    let lsn = get_u64(t, "lsn")?;
    let schema_epoch = get_u64(t, "epoch")?;
    let mut values = Vec::new();
    match t.get("values") {
        Some(Value::Array(items)) => {
            for item in items {
                let e = item
                    .as_tuple()
                    .ok_or_else(|| "snapshot value entry is not a tuple".to_string())?;
                values.push((get_str(e, "name")?, get_val(e, "value")?));
            }
        }
        _ => return Err("snapshot missing 'values'".to_string()),
    }
    let mut schemas = Vec::new();
    match t.get("schemas") {
        Some(Value::Array(items)) => {
            for item in items {
                let e = item
                    .as_tuple()
                    .ok_or_else(|| "snapshot schema entry is not a tuple".to_string())?;
                schemas.push((get_str(e, "name")?, type_from_value(&get_val(e, "ty")?)?));
            }
        }
        _ => return Err("snapshot missing 'schemas'".to_string()),
    }
    Ok(Snapshot {
        lsn,
        image: CatalogImage {
            values,
            schemas,
            schema_epoch,
        },
    })
}

fn get_u64(t: &Tuple, name: &str) -> Result<u64, String> {
    match t.get(name) {
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        _ => Err(format!("snapshot field {name:?} missing or malformed")),
    }
}

fn get_str(t: &Tuple, name: &str) -> Result<String, String> {
    match t.get(name) {
        Some(Value::Str(s)) => Ok(s.clone()),
        _ => Err(format!("snapshot field {name:?} missing or malformed")),
    }
}

fn get_val(t: &Tuple, name: &str) -> Result<Value, String> {
    t.get(name)
        .cloned()
        .ok_or_else(|| format!("snapshot field {name:?} missing"))
}

/// Writes a snapshot to `path` directly (no tmp/rename dance — the
/// checkpoint path layers that on top; the REPL's `.save` uses this
/// for one-shot exports). `sync` forces the bytes to disk before
/// returning.
pub fn write_snapshot(path: &Path, snap: &Snapshot, sync: bool) -> Result<(), DurabilityError> {
    let bytes = encode_snapshot(snap);
    let mut f = File::create(path).map_err(|e| DurabilityError::io("create", path, &e))?;
    f.write_all(&bytes)
        .map_err(|e| DurabilityError::io("write", path, &e))?;
    if sync {
        f.sync_all()
            .map_err(|e| DurabilityError::io("fsync", path, &e))?;
    }
    Ok(())
}

/// Reads and validates a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, DurabilityError> {
    let data = std::fs::read(path).map_err(|e| DurabilityError::io("read", path, &e))?;
    decode_snapshot(&data).map_err(|message| DurabilityError::Corrupt {
        path: path.to_path_buf(),
        offset: 0,
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlpp_value::bag;

    fn sample() -> Snapshot {
        Snapshot {
            lsn: 17,
            image: CatalogImage {
                values: vec![
                    ("hr.emp".into(), bag![1i64, 2i64]),
                    ("t".into(), Value::empty_bag()),
                ],
                schemas: vec![("t".into(), SqlppType::Bag(Box::new(SqlppType::Int)))],
                schema_epoch: 3,
            },
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample();
        assert_eq!(decode_snapshot(&encode_snapshot(&snap)).unwrap(), snap);
    }

    #[test]
    fn truncation_and_flips_are_rejected() {
        let bytes = encode_snapshot(&sample());
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut flipped = bytes.clone();
        flipped[bytes.len() / 2] ^= 1;
        assert!(decode_snapshot(&flipped).is_err());
        // Trailing garbage after the frame is rejected too.
        let mut extended = bytes;
        extended.push(0);
        assert!(decode_snapshot(&extended).is_err());
    }
}
